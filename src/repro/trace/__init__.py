"""Memory trace infrastructure: containers, recording, I/O, synthesis."""

from repro.trace.events import CompressedTrace, Trace, compress_to_pages
from repro.trace.recorder import TraceRecorder
from repro.trace.io import load_trace, save_trace
from repro.trace import synthesis

__all__ = [
    "Trace",
    "CompressedTrace",
    "compress_to_pages",
    "TraceRecorder",
    "save_trace",
    "load_trace",
    "synthesis",
]
