"""Trace containers.

A :class:`Trace` is the raw virtual-address stream a workload emits.
Before TLB simulation it is compressed at 4KB-page granularity into a
:class:`CompressedTrace`: runs of consecutive accesses to the same page
collapse to one ``(vpn, count)`` record. Within a run, every access
after the first hits the L1 TLB by construction (the entry was either
present or just filled), so the compression changes no miss behaviour
while shrinking the pure-Python simulation loop several-fold for
workloads with spatial locality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.vm.address import BASE_PAGE_SHIFT


@dataclass
class Trace:
    """Raw address stream plus workload metadata."""

    name: str
    addresses: np.ndarray
    #: total bytes of data structures the workload allocated
    footprint_bytes: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.addresses = np.ascontiguousarray(self.addresses, dtype=np.uint64)

    def __len__(self) -> int:
        return int(self.addresses.size)

    def compress(self) -> "CompressedTrace":
        """Page-granular run-length compression of this trace."""
        vpns, counts = compress_to_pages(self.addresses)
        return CompressedTrace(
            name=self.name,
            vpns=vpns,
            counts=counts,
            total_accesses=len(self),
            footprint_bytes=self.footprint_bytes,
            metadata=dict(self.metadata),
        )

    def unique_pages(self) -> int:
        """Distinct 4KB pages touched."""
        if self.addresses.size == 0:
            return 0
        return int(np.unique(self.addresses >> np.uint64(BASE_PAGE_SHIFT)).size)


@dataclass
class CompressedTrace:
    """Run-length, page-granular view of a trace.

    ``vpns[i]`` was accessed ``counts[i]`` consecutive times. The TLB
    simulator performs one lookup per record and accounts the remaining
    ``counts[i] - 1`` accesses as L1 hits.
    """

    name: str
    vpns: np.ndarray
    counts: np.ndarray
    total_accesses: int
    footprint_bytes: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.vpns = np.ascontiguousarray(self.vpns, dtype=np.uint64)
        self.counts = np.ascontiguousarray(self.counts, dtype=np.int64)
        if self.vpns.shape != self.counts.shape:
            raise ValueError(
                f"vpns/counts shape mismatch: {self.vpns.shape} vs {self.counts.shape}"
            )
        if int(self.counts.sum()) != self.total_accesses:
            raise ValueError(
                f"counts sum to {int(self.counts.sum())}, "
                f"expected {self.total_accesses} total accesses"
            )

    def __len__(self) -> int:
        """Number of run-length records (TLB lookups to simulate)."""
        return int(self.vpns.size)

    @property
    def compression_ratio(self) -> float:
        """Raw accesses per TLB lookup after compression."""
        return self.total_accesses / max(1, len(self))

    def unique_pages(self) -> int:
        """Distinct 4KB pages touched."""
        if self.vpns.size == 0:
            return 0
        return int(np.unique(self.vpns).size)


def compress_to_pages(addresses: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run-length encode an address array at 4KB-page granularity.

    Returns ``(vpns, counts)`` where each record is a maximal run of
    consecutive accesses landing on the same page.
    """
    addresses = np.asarray(addresses, dtype=np.uint64)
    if addresses.size == 0:
        return (
            np.empty(0, dtype=np.uint64),
            np.empty(0, dtype=np.int64),
        )
    vpns = addresses >> np.uint64(BASE_PAGE_SHIFT)
    boundaries = np.empty(vpns.size, dtype=bool)
    boundaries[0] = True
    np.not_equal(vpns[1:], vpns[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    run_vpns = vpns[starts]
    ends = np.append(starts[1:], vpns.size)
    counts = (ends - starts).astype(np.int64)
    return run_vpns, counts


def interleave(traces: list[np.ndarray], chunk: int) -> np.ndarray:
    """Round-robin interleave several address streams in ``chunk``-sized
    slices, emulating concurrent threads sharing wall-clock time."""
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    pieces: list[np.ndarray] = []
    offsets = [0] * len(traces)
    remaining = sum(t.size for t in traces)
    while remaining > 0:
        for i, trace in enumerate(traces):
            start = offsets[i]
            if start >= trace.size:
                continue
            stop = min(start + chunk, trace.size)
            pieces.append(trace[start:stop])
            offsets[i] = stop
            remaining -= stop - start
    if not pieces:
        return np.empty(0, dtype=np.uint64)
    return np.concatenate(pieces)
