"""Content-addressed on-disk trace cache.

Workload trace generation is deterministic, so traces can be cached on
disk keyed by their generation parameters. The experiment drivers, the
parallel ``--jobs`` runner, and the benchmark harness use this to avoid
regenerating multi-hundred-thousand-access traces: a trace is written
once and every subsequent run — including concurrent worker processes —
memory-maps the stored arrays instead of rebuilding or re-pickling
them.

Two entry formats live side by side in one cache directory:

* **Array entries** (the primary format): one ``<key>.meta.json``
  commit record plus one ``<key>.<array>.npy`` file per named array.
  Plain ``.npy`` payloads are memory-mappable (``np.load(mmap_mode=
  "r")``), which is what lets a pool of worker processes share one
  on-disk trace without each holding a private copy.
* **Legacy ``.npz`` entries** storing a raw :class:`Trace`, kept for
  the original ``get``/``put`` API.

Keys are content hashes over ``(name, params, generator version)``.
The generator version is baked into every key, so bumping
:data:`TRACE_GENERATOR_VERSION` after changing any trace generator
invalidates the whole cache without touching the files.

Writers are crash- and concurrency-safe: every file is written to a
unique temporary name in the cache directory and published with an
atomic ``os.replace``; the ``meta.json`` commit record is always
renamed last, so a reader either sees a complete entry or no entry.

Reads are **self-healing**. Every array payload's SHA-256 is recorded
in the commit record and verified on :meth:`TraceCache.get_entry`
(disable with ``REPRO_CACHE_VERIFY=off``); an entry that fails its
checksum, is torn, or does not parse is moved into a ``quarantine/``
subdirectory — never deleted blind, never allowed to crash the worker
— and reported as a miss so the caller rebuilds it. Concurrent workers
racing to quarantine or rebuild the same entry are safe: the loser of
each rename simply finds the file gone, and last-writer-wins publishes
are sound because generation is deterministic.
:meth:`TraceCache.recover_stale` sweeps tmp files orphaned by crashed
or killed writers.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs.log import get_logger, log_event
from repro.obs.tracer import span
from repro.resilience import bus
from repro.resilience.faults import fault_point
from repro.trace.events import Trace
from repro.trace.io import load_trace, save_trace

_LOG = get_logger("trace.cache")

#: Environment variable overriding the cache directory. The values
#: ``0``, ``off``, and ``none`` disable the cache entirely.
CACHE_DIR_ENV = "REPRO_TRACE_CACHE"

#: Environment variable disabling checksum verification on reads
#: (``off``/``0``/``none``). Verification is on by default.
CACHE_VERIFY_ENV = "REPRO_CACHE_VERIFY"

#: Subdirectory corrupt entries are moved into for post-mortem.
QUARANTINE_DIR = "quarantine"

#: Bump when any trace generator changes behaviour: every cache key
#: embeds this, so old entries become unreachable (not merely stale).
TRACE_GENERATOR_VERSION = 2


def default_cache_dir() -> Path:
    """Cache directory: $REPRO_TRACE_CACHE or ~/.cache/repro-traces."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-traces"


def cache_dir_from_env() -> Path | None:
    """Cache directory per the environment, ``None`` when disabled.

    Unset selects the default directory; ``0``/``off``/``none``
    disable caching; anything else is the directory to use.
    """
    override = os.environ.get(CACHE_DIR_ENV)
    if override is not None and override.strip().lower() in ("", "0", "off", "none"):
        return None
    return default_cache_dir()


def cache_key(
    name: str,
    params: dict,
    generator_version: int = TRACE_GENERATOR_VERSION,
) -> str:
    """Stable content key for one (generator, parameters) pair."""
    body = json.dumps(
        {"name": name, "params": params, "generator": generator_version},
        sort_keys=True,
    )
    return hashlib.sha256(body.encode()).hexdigest()[:24]


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`TraceCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    purged: int = 0
    #: entries that failed checksum/format verification at read time
    corrupted: int = 0
    #: corrupt entries moved into the quarantine subdirectory
    quarantined: int = 0
    #: corrupt entries that were rebuilt and re-committed
    repaired: int = 0
    #: orphaned tmp files removed by :meth:`TraceCache.recover_stale`
    stale_removed: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-safe snapshot (for benchmark/CI artifacts)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "purged": self.purged,
            "corrupted": self.corrupted,
            "quarantined": self.quarantined,
            "repaired": self.repaired,
            "stale_removed": self.stale_removed,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class CacheEntry:
    """One decoded array entry: commit metadata plus named arrays."""

    key: str
    meta: dict
    arrays: dict[str, np.ndarray] = field(default_factory=dict)


class TraceCache:
    """Directory-backed, content-addressed cache of generated traces."""

    def __init__(
        self,
        directory: Path | str | None = None,
        generator_version: int = TRACE_GENERATOR_VERSION,
        verify: bool | None = None,
    ) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.generator_version = generator_version
        self.verify = _verify_from_env() if verify is None else verify
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # keys and paths

    def key(self, name: str, params: dict) -> str:
        """Content key including this cache's generator version."""
        return cache_key(name, params, self.generator_version)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def _meta_path(self, key: str) -> Path:
        return self.directory / f"{key}.meta.json"

    def _array_path(self, key: str, array: str) -> Path:
        return self.directory / f"{key}.{array}.npy"

    # ------------------------------------------------------------------
    # atomic publication

    def _publish(self, path: Path, write_fn):
        """Write via ``write_fn(tmp_path)``, atomically rename, and
        return ``write_fn``'s result (e.g. the payload digest).

        The temporary name embeds the pid so concurrent writers never
        collide; ``os.replace`` is atomic within one directory, so a
        racing reader sees either the old file, the new file, or no
        file — never a torn write. Last writer wins, which is safe
        because generation is deterministic: both writers produced
        identical content.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            written = write_fn(tmp)
            fault_point("cache.publish", detail=path.name, paths=[tmp])
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return written

    # ------------------------------------------------------------------
    # array entries (the mmap-friendly format)

    def get_entry(self, name: str, params: dict, mmap: bool = True) -> CacheEntry | None:
        """Load a committed array entry, or ``None`` on miss.

        With ``mmap=True`` the arrays are memory-mapped read-only, so
        several processes replaying the same trace share one set of
        physical pages. Each payload's SHA-256 is verified against the
        commit record before it is loaded (unless verification is
        disabled); torn or corrupt entries are quarantined and count
        as misses — the caller regenerates.
        """
        key = self.key(name, params)
        meta_path = self._meta_path(key)
        if not meta_path.exists():
            self.stats.misses += 1
            return None
        try:
            with span("cache.read", cat="cache", entry=name, key=key):
                meta = json.loads(meta_path.read_text())
                array_names = meta["__arrays__"]
                paths = [self._array_path(key, array_name) for array_name in array_names]
                fault_point("trace.cache.read", detail=f"{name}:{key}", paths=paths)
                if self.verify:
                    checksums = meta.get("__checksums__") or {}
                    for array_name, path in zip(array_names, paths):
                        expected = checksums.get(array_name)
                        if expected is not None and _file_digest(path) != expected:
                            raise CorruptEntryError(
                                f"checksum mismatch for {path.name}"
                            )
                arrays = {}
                for array_name, path in zip(array_names, paths):
                    arrays[array_name] = np.load(
                        path,
                        mmap_mode="r" if mmap else None,
                        allow_pickle=False,
                    )
        except (ValueError, OSError, KeyError, TypeError, EOFError) as exc:
            # A torn or corrupt entry (e.g. a crashed writer published
            # meta for a deleted array, truncated bytes, or a failed
            # checksum) is quarantined and reported as a miss; the
            # caller regenerates. CorruptEntryError is a ValueError.
            moved = self._quarantine_entry(key)
            self.stats.corrupted += 1
            self.stats.misses += 1
            bus.counter("cache.corrupted").add()
            log_event(
                _LOG,
                "corrupt cache entry quarantined",
                level=logging.WARNING,
                entry=name,
                key=key,
                error=f"{type(exc).__name__}: {exc}",
                files_moved=moved,
            )
            return None
        self.stats.hits += 1
        user_meta = {
            k: v for k, v in meta.items() if k not in ("__arrays__", "__checksums__")
        }
        return CacheEntry(key=key, meta=user_meta, arrays=arrays)

    def put_entry(
        self, name: str, params: dict, arrays: dict[str, np.ndarray], meta: dict | None = None
    ) -> str:
        """Atomically store named arrays plus a JSON metadata record.

        Array files are published first and the ``meta.json`` commit
        record last, so a concurrent reader never observes a committed
        entry with missing payloads. The commit record carries each
        payload's SHA-256 so reads can verify content integrity.
        """
        key = self.key(name, params)
        with span("cache.publish", cat="cache", entry=name, key=key, arrays=len(arrays)):
            checksums = {}
            for array_name, array in arrays.items():
                checksums[array_name] = self._publish(
                    self._array_path(key, array_name),
                    lambda tmp, a=array: _save_npy(tmp, a),
                )
            record = dict(meta or {})
            record["__arrays__"] = sorted(arrays)
            record["__checksums__"] = checksums
            self._publish(
                self._meta_path(key),
                lambda tmp: tmp.write_text(json.dumps(record, sort_keys=True)),
            )
        self.stats.writes += 1
        return key

    def get_or_build_entry(self, name: str, params: dict, builder, mmap: bool = True) -> CacheEntry:
        """Cached entry, or build/store/reload one.

        ``builder()`` returns ``(arrays, meta)``. The entry is re-read
        after the store so the caller always gets the mmap-backed view.
        Rebuilding over a corrupted entry counts as a repair.
        """
        corrupted_before = self.stats.corrupted
        cached = self.get_entry(name, params, mmap=mmap)
        if cached is not None:
            return cached
        arrays, meta = builder()
        self.put_entry(name, params, arrays, meta)
        if self.stats.corrupted > corrupted_before:
            self.stats.repaired += 1
            bus.counter("cache.repaired").add()
        entry = self.get_entry(name, params, mmap=mmap)
        if entry is None:  # pragma: no cover - disk raced/vanished
            return CacheEntry(key=self.key(name, params), meta=dict(meta), arrays=dict(arrays))
        return entry

    def _purge_entry(self, key: str) -> None:
        """Drop every file belonging to one array entry."""
        self._meta_path(key).unlink(missing_ok=True)
        for path in self.directory.glob(f"{key}.*.npy"):
            path.unlink(missing_ok=True)
        self.stats.purged += 1

    def _quarantine_entry(self, key: str) -> int:
        """Move every file of one corrupt entry into ``quarantine/``.

        The meta commit record goes first so no concurrent reader can
        observe the entry as committed while its payloads vanish.
        Concurrent workers racing to quarantine the same entry are
        safe: each rename's loser finds the file already gone
        (``FileNotFoundError`` is tolerated), so recovery never
        deadlocks or double-deletes. Returns the number of files moved.
        """
        quarantine = self.directory / QUARANTINE_DIR
        moved = 0
        paths = [self._meta_path(key), *self.directory.glob(f"{key}.*.npy")]
        for path in paths:
            target = quarantine / f"{path.name}.{os.getpid()}"
            try:
                quarantine.mkdir(parents=True, exist_ok=True)
                os.replace(path, target)
            except FileNotFoundError:
                continue  # another worker got here first
            except OSError:
                path.unlink(missing_ok=True)
            moved += 1
        if moved:
            self.stats.quarantined += 1
        self.stats.purged += 1
        return moved

    # ------------------------------------------------------------------
    # legacy whole-trace entries (.npz)

    def get(self, name: str, params: dict) -> Trace | None:
        """Cached raw trace for the parameters, or None."""
        path = self._path(self.key(name, params))
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            trace = load_trace(path)
        except (ValueError, OSError, KeyError) as exc:
            # a corrupt or stale entry is treated as a miss
            path.unlink(missing_ok=True)
            self.stats.purged += 1
            self.stats.corrupted += 1
            self.stats.misses += 1
            bus.counter("cache.corrupted").add()
            log_event(
                _LOG,
                "corrupt legacy cache entry purged",
                level=logging.WARNING,
                entry=name,
                file=path.name,
                error=f"{type(exc).__name__}: {exc}",
            )
            return None
        self.stats.hits += 1
        return trace

    def put(self, name: str, params: dict, trace: Trace) -> Path:
        """Store a freshly generated raw trace (atomic publish)."""
        path = self._path(self.key(name, params))
        self._publish(path, lambda tmp: _save_npz_exact(trace, tmp))
        self.stats.writes += 1
        return path

    def get_or_build(self, name: str, params: dict, builder) -> Trace:
        """Return the cached trace or build, store, and return it."""
        cached = self.get(name, params)
        if cached is not None:
            return cached
        trace = builder()
        self.put(name, params, trace)
        return trace

    # ------------------------------------------------------------------
    # maintenance

    def clear(self) -> int:
        """Delete every cache entry (quarantine included); returns the
        number of files removed."""
        if not self.directory.exists():
            return 0
        removed = 0
        for pattern in ("*.npz", "*.npy", "*.meta.json", f"{QUARANTINE_DIR}/*"):
            for path in self.directory.glob(pattern):
                path.unlink()
                removed += 1
        return removed

    def size_bytes(self) -> int:
        """Total bytes stored in the cache (quarantine included)."""
        if not self.directory.exists():
            return 0
        return sum(
            p.stat().st_size
            for pattern in ("*.npz", "*.npy", "*.meta.json", f"{QUARANTINE_DIR}/*")
            for p in self.directory.glob(pattern)
        )

    def recover_stale(self, max_age_seconds: float = 3600.0) -> int:
        """Remove tmp files orphaned by crashed or killed writers.

        Every writer publishes through ``<target>.tmp.<pid>``; a tmp
        file whose writer is dead (or that has outlived
        ``max_age_seconds`` regardless) is debris from a crash between
        write and rename, and is deleted. Live writers' fresh tmp files
        are left alone. Returns the number of files removed.
        """
        if not self.directory.exists():
            return 0
        removed = 0
        now = time.time()
        for path in self.directory.glob("*.tmp.*"):
            pid = _writer_pid(path)
            if pid is not None and _pid_alive(pid):
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    continue
                if age <= max_age_seconds:
                    continue
            try:
                path.unlink(missing_ok=True)
            except OSError:
                continue
            removed += 1
        if removed:
            self.stats.stale_removed += removed
            bus.counter("cache.stale_tmp_removed").add(removed)
            log_event(
                _LOG,
                "stale tmp files from dead writers removed",
                level=logging.WARNING,
                removed=removed,
                directory=str(self.directory),
            )
        return removed


class CorruptEntryError(ValueError):
    """An entry's payload bytes do not match its committed checksum."""


def _verify_from_env() -> bool:
    """Checksum verification default: on unless the env disables it."""
    value = os.environ.get(CACHE_VERIFY_ENV, "").strip().lower()
    return value not in ("0", "off", "none", "false")


def _file_digest(path: Path) -> str:
    """SHA-256 hex digest of one file's bytes (streamed)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _writer_pid(tmp_path: Path) -> int | None:
    """Writer pid encoded in a ``<target>.tmp.<pid>`` filename."""
    suffix = tmp_path.name.rsplit(".tmp.", 1)[-1]
    try:
        return int(suffix)
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid currently exists."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def _save_npy(path: Path, array: np.ndarray) -> str:
    """``np.save`` keeping our exact tmp filename; returns the digest.

    ``np.save`` appends ``.npy`` to bare paths; saving through an open
    handle avoids that, so the atomic-rename bookkeeping stays simple.
    """
    with open(path, "wb") as handle:
        np.save(handle, np.ascontiguousarray(array))
    return _file_digest(path)


def _save_npz_exact(trace: Trace, path: Path) -> None:
    """``save_trace`` variant that never rewrites the target suffix."""
    written = save_trace(trace, path)
    if written != path:  # save_trace appended ".npz" to the tmp name
        os.replace(written, path)
