"""On-disk trace cache.

Workload trace generation is deterministic, so traces can be cached on
disk keyed by their generation parameters. The benchmark harness and
long examples use this to avoid regenerating multi-hundred-thousand-
access traces on every invocation.

The cache is content-addressed: the key hashes the workload name and
its parameter dict, and the payload reuses the ``.npz`` trace format of
:mod:`repro.trace.io`.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.trace.events import Trace
from repro.trace.io import load_trace, save_trace

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_TRACE_CACHE"


def default_cache_dir() -> Path:
    """Cache directory: $REPRO_TRACE_CACHE or ~/.cache/repro-traces."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-traces"


def cache_key(name: str, params: dict) -> str:
    """Stable content key for one (generator, parameters) pair."""
    body = json.dumps({"name": name, "params": params}, sort_keys=True)
    return hashlib.sha256(body.encode()).hexdigest()[:24]


class TraceCache:
    """Directory-backed cache of generated traces."""

    def __init__(self, directory: Path | str | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def get(self, name: str, params: dict) -> Trace | None:
        """Cached trace for the parameters, or None."""
        path = self._path(cache_key(name, params))
        if not path.exists():
            return None
        try:
            return load_trace(path)
        except (ValueError, OSError, KeyError):
            # a corrupt or stale entry is treated as a miss
            path.unlink(missing_ok=True)
            return None

    def put(self, name: str, params: dict, trace: Trace) -> Path:
        """Store a freshly generated trace."""
        return save_trace(trace, self._path(cache_key(name, params)))

    def get_or_build(self, name: str, params: dict, builder) -> Trace:
        """Return the cached trace or build, store, and return it."""
        cached = self.get(name, params)
        if cached is not None:
            return cached
        trace = builder()
        self.put(name, params, trace)
        return trace

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        if not self.directory.exists():
            return 0
        removed = 0
        for path in self.directory.glob("*.npz"):
            path.unlink()
            removed += 1
        return removed

    def size_bytes(self) -> int:
        """Total bytes stored in the cache."""
        if not self.directory.exists():
            return 0
        return sum(p.stat().st_size for p in self.directory.glob("*.npz"))
