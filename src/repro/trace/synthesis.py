"""Synthetic access-pattern generators.

These are the building blocks the workload proxies compose: sequential
sweeps, strided scans, uniform and Zipfian random access, and pointer
chases. Each returns a ``uint64`` address array confined to a VMA or an
explicit ``(base, length)`` window. All randomness flows through an
explicit ``numpy.random.Generator`` so traces are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.vm.layout import VMA


def _window(region: VMA | tuple[int, int]) -> tuple[int, int]:
    if isinstance(region, VMA):
        return region.start, region.length
    base, length = region
    if length <= 0:
        raise ValueError(f"region length must be positive, got {length}")
    return int(base), int(length)


def sequential(region: VMA | tuple[int, int], count: int, stride: int = 64) -> np.ndarray:
    """``count`` accesses sweeping the region forward with ``stride``,
    wrapping around at the end (a streaming scan)."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    base, length = _window(region)
    offsets = (np.arange(count, dtype=np.uint64) * np.uint64(stride)) % np.uint64(length)
    return np.uint64(base) + offsets


def strided(
    region: VMA | tuple[int, int], count: int, stride: int, start: int = 0
) -> np.ndarray:
    """Fixed-stride scan beginning at byte offset ``start``."""
    base, length = _window(region)
    offsets = (
        np.uint64(start) + np.arange(count, dtype=np.uint64) * np.uint64(stride)
    ) % np.uint64(length)
    return np.uint64(base) + offsets


def uniform_random(
    region: VMA | tuple[int, int],
    count: int,
    rng: np.random.Generator,
    granularity: int = 8,
) -> np.ndarray:
    """``count`` uniformly random ``granularity``-aligned accesses."""
    base, length = _window(region)
    slots = max(1, length // granularity)
    picks = rng.integers(0, slots, size=count, dtype=np.uint64)
    return np.uint64(base) + picks * np.uint64(granularity)


def zipf_random(
    region: VMA | tuple[int, int],
    count: int,
    rng: np.random.Generator,
    exponent: float = 1.1,
    granularity: int = 8,
    hot_fraction: float = 1.0,
) -> np.ndarray:
    """Zipf-distributed accesses over the region's slots.

    Rank 1 is the hottest slot. ``hot_fraction`` < 1 confines the
    distribution's support to a leading fraction of the region,
    concentrating reuse the way degree-skewed graph data does.
    """
    if not 0 < hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
    base, length = _window(region)
    slots = max(1, int(length * hot_fraction) // granularity)
    ranks = _zipf_ranks(count, slots, exponent, rng)
    return np.uint64(base) + ranks.astype(np.uint64) * np.uint64(granularity)


def _zipf_ranks(
    count: int, slots: int, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``count`` ranks in ``[0, slots)`` from a bounded Zipf law."""
    if count == 0:
        return np.empty(0, dtype=np.int64)
    weights = 1.0 / np.power(np.arange(1, slots + 1, dtype=np.float64), exponent)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    draws = rng.random(count)
    return np.searchsorted(cdf, draws).astype(np.int64)


def pointer_chase(
    region: VMA | tuple[int, int],
    count: int,
    rng: np.random.Generator,
    node_bytes: int = 64,
    restart_every: int = 0,
) -> np.ndarray:
    """Random-permutation pointer chase across the region's nodes.

    Builds one random cyclic permutation of the nodes and follows it,
    the classic TLB-hostile microbenchmark. ``restart_every`` > 0 resets
    the walk to a random node periodically (tree-traversal flavor).
    """
    base, length = _window(region)
    nodes = max(2, length // node_bytes)
    perm = rng.permutation(nodes)
    next_node = np.empty(nodes, dtype=np.int64)
    next_node[perm] = np.roll(perm, -1)
    path = np.empty(count, dtype=np.int64)
    current = int(perm[0])
    for i in range(count):
        path[i] = current
        current = int(next_node[current])
        if restart_every and (i + 1) % restart_every == 0:
            current = int(rng.integers(0, nodes))
    return np.uint64(base) + path.astype(np.uint64) * np.uint64(node_bytes)


def hot_cold(
    hot_region: VMA | tuple[int, int],
    cold_region: VMA | tuple[int, int],
    count: int,
    rng: np.random.Generator,
    hot_probability: float = 0.9,
    granularity: int = 64,
) -> np.ndarray:
    """Mixture of uniform accesses to a hot and a cold region."""
    if not 0.0 <= hot_probability <= 1.0:
        raise ValueError(f"hot_probability must be in [0,1], got {hot_probability}")
    choose_hot = rng.random(count) < hot_probability
    result = np.empty(count, dtype=np.uint64)
    hot_count = int(choose_hot.sum())
    result[choose_hot] = uniform_random(hot_region, hot_count, rng, granularity)
    result[~choose_hot] = uniform_random(
        cold_region, count - hot_count, rng, granularity
    )
    return result
