"""Incremental trace recording for workload models.

Workloads compute their access addresses in vectorized numpy batches
(one batch per algorithm step, e.g. one BFS frontier expansion). The
recorder accumulates batches and finalizes them into a single
:class:`~repro.trace.events.Trace` without per-access Python overhead.
"""

from __future__ import annotations

import numpy as np

from repro.trace.events import Trace
from repro.vm.layout import AddressSpaceLayout


class TraceRecorder:
    """Accumulates address batches emitted by a workload."""

    def __init__(self, name: str, layout: AddressSpaceLayout | None = None) -> None:
        self.name = name
        self.layout = layout
        self._batches: list[np.ndarray] = []
        self._count = 0

    def record(self, addresses: np.ndarray) -> None:
        """Append a batch of virtual addresses (any integer dtype)."""
        batch = np.ascontiguousarray(addresses, dtype=np.uint64).ravel()
        if batch.size == 0:
            return
        self._batches.append(batch)
        self._count += batch.size

    def record_scalar(self, address: int) -> None:
        """Append a single address (convenience for control structures)."""
        self.record(np.array([address], dtype=np.uint64))

    def record_range(self, start: int, length_bytes: int, stride: int) -> None:
        """Append a sequential sweep: ``start, start+stride, ...``."""
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        count = max(0, (length_bytes + stride - 1) // stride)
        if count == 0:
            return
        sweep = np.uint64(start) + np.arange(count, dtype=np.uint64) * np.uint64(stride)
        self.record(sweep)

    def __len__(self) -> int:
        return self._count

    def finish(self, metadata: dict | None = None) -> Trace:
        """Concatenate all batches into the final trace."""
        if self._batches:
            addresses = np.concatenate(self._batches)
        else:
            addresses = np.empty(0, dtype=np.uint64)
        footprint = self.layout.footprint_bytes if self.layout is not None else 0
        meta = dict(metadata or {})
        if self.layout is not None:
            meta.setdefault(
                "vmas",
                {vma.name: (vma.start, vma.length) for vma in self.layout},
            )
        return Trace(
            name=self.name,
            addresses=addresses,
            footprint_bytes=footprint,
            metadata=meta,
        )
