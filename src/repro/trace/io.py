"""Trace persistence.

Traces are stored as ``.npz`` archives: the address array plus a JSON
metadata blob. This mirrors the paper's methodology of recording the
offline simulation's outputs to a file consumed by the second
(real-system) evaluation step.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.trace.events import Trace

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write ``trace`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "footprint_bytes": trace.footprint_bytes,
        "metadata": _jsonable(trace.metadata),
    }
    np.savez_compressed(
        path,
        addresses=trace.addresses,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
    )
    return path


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with np.load(path) as archive:
        header = json.loads(bytes(archive["header"]).decode())
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {header.get('version')!r} "
                f"in {path}"
            )
        return Trace(
            name=header["name"],
            addresses=archive["addresses"],
            footprint_bytes=int(header["footprint_bytes"]),
            metadata=header["metadata"],
        )


def _jsonable(value):
    """Best-effort conversion of metadata values to JSON-safe types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value
