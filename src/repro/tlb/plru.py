"""Tree pseudo-LRU replacement state as pure functions over a bitmask.

Real translation hardware (Ariane's TLBs, most x86 L1 caches) cannot
afford true LRU's per-entry age ordering; an N-way set keeps one bit
per internal node of a binary tree over the ways instead. Every touch
flips the bits on the leaf-to-root path to point *away* from the
touched way; the victim walk starts at the root and follows the bits
*toward* the pseudo-least-recently-used leaf.

The whole tree is packed into one Python int, heap-indexed: node 1 is
the root, node ``n``'s children are ``2n`` and ``2n+1``, and the leaves
``P..2P-1`` map to ways ``0..P-1`` where ``P`` is the smallest power of
two >= ways. Bit ``n`` of the mask is node ``n``'s direction bit
(0 = victim on the left, 1 = victim on the right).

Non-power-of-two way counts leave the trailing leaves of the tree
unbacked; the victim walk steers left whenever the indicated subtree
contains no real way. Because ``P`` is minimal, more than half of every
subtree rooted on the root's left spine is backed, so the walk always
terminates on a valid way and — for ways >= 2 — never on the way that
was touched last.

Functions take and return plain ints so callers can store per-set
state in a flat list, and so the validation defects can monkeypatch
victim selection at the module boundary (``repro.tlb`` calls these
through the module attribute, never through a hoisted reference).
"""

from __future__ import annotations


def leaf_count(ways: int) -> int:
    """Smallest power of two >= ``ways`` (the tree's leaf width)."""
    p = 1
    while p < ways:
        p <<= 1
    return p


def touch(bits: int, ways: int, way: int) -> int:
    """Return ``bits`` after marking ``way`` most-recently-used.

    Every internal node on the leaf's path to the root is pointed at
    the *other* subtree. Touching the same way twice is a no-op
    (idempotence) — the property the engine's fast-path hint and batch
    retirement tiers rely on to skip re-touches exactly.
    """
    if ways <= 1:
        return bits
    node = leaf_count(ways) + way
    while node > 1:
        parent = node >> 1
        if node & 1:
            # touched way lives right of ``parent``: victim goes left
            bits &= ~(1 << parent)
        else:
            bits |= 1 << parent
        node = parent
    return bits


def victim(bits: int, ways: int) -> int:
    """Way the tree designates for eviction under ``bits``.

    Follows the direction bits from the root; a step into an unbacked
    subtree (possible only when ``ways`` is not a power of two) is
    redirected to the left sibling, which is always at least partially
    backed.
    """
    if ways <= 1:
        return 0
    p = leaf_count(ways)
    node = 1
    while node < p:
        child = node * 2 + ((bits >> node) & 1)
        # leftmost leaf reachable from ``child``
        low = child
        while low < p:
            low <<= 1
        if low - p >= ways:
            child = node * 2
        node = child
    return node - p
