"""TLB hierarchy and hardware page-table walker models."""

from repro.tlb.tlb import TLB, TLBStats
from repro.tlb.hierarchy import AccessResult, TLBHierarchy
from repro.tlb.walker import PageTableWalker, WalkResult

__all__ = [
    "TLB",
    "TLBStats",
    "TLBHierarchy",
    "AccessResult",
    "PageTableWalker",
    "WalkResult",
]
