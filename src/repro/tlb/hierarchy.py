"""Two-level data-TLB hierarchy.

Mirrors Table 2: split L1 structures per page size (64-entry 4KB,
32-entry 2MB, 4-entry 1GB) in front of a unified L2 serving 4KB and 2MB
entries. Lookup probes every structure that could hold the address's
translation; because the mapping size is unknown until the walk
completes, a probe consults each page-size tag in parallel, exactly as
size-partitioned hardware TLBs do.

The lookup path is the simulator's single hottest function, so tags
are computed with plain integer shifts and the three possible outcomes
are preallocated singletons.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.config import TLBHierarchyConfig
from repro.tlb.tlb import TLB
from repro.vm.address import (
    BASE_PAGE_SHIFT,
    GIGA_PAGE_SHIFT,
    HUGE_PAGE_SHIFT,
    PageSize,
)

#: vpn -> tag shifts for huge and giga structures
_HUGE_SHIFT = HUGE_PAGE_SHIFT - BASE_PAGE_SHIFT  # 9
_GIGA_SHIFT = GIGA_PAGE_SHIFT - BASE_PAGE_SHIFT  # 18


class HitLevel(Enum):
    """Where a translation was found."""

    L1 = auto()
    L2 = auto()
    MISS = auto()


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one hierarchy lookup."""

    level: HitLevel
    page_size: PageSize | None

    @property
    def walk_required(self) -> bool:
        """Whether the access missed the whole hierarchy."""
        return self.level is HitLevel.MISS


#: Singleton results: one per (level, size) outcome on the hot path.
_L1_BASE = AccessResult(HitLevel.L1, PageSize.BASE)
_L1_HUGE = AccessResult(HitLevel.L1, PageSize.HUGE)
_L1_GIGA = AccessResult(HitLevel.L1, PageSize.GIGA)
_L2_BASE = AccessResult(HitLevel.L2, PageSize.BASE)
_L2_HUGE = AccessResult(HitLevel.L2, PageSize.HUGE)
_MISS = AccessResult(HitLevel.MISS, None)


class TLBHierarchy:
    """Per-core L1 (split) + L2 (unified) data-TLB stack."""

    def __init__(self, config: TLBHierarchyConfig) -> None:
        self.config = config
        self.l1_base = TLB(config.l1_base, "L1-4K")
        self.l1_huge = TLB(config.l1_huge, "L1-2M")
        self.l1_giga = TLB(config.l1_giga, "L1-1G")
        self.l2 = TLB(config.l2, "L2")
        self._l1_by_size = {
            PageSize.BASE: self.l1_base,
            PageSize.HUGE: self.l1_huge,
            PageSize.GIGA: self.l1_giga,
        }
        self._l2_serves_huge = PageSize.HUGE in config.l2.page_sizes
        # State hoisted for the hot lookup() path, which inlines the
        # per-structure hit_fast probes: set lists, set counts, stats
        # bags, and the two refill bound methods. Each saved attribute
        # chain or call frame is paid ~10^6 times per quantum.
        self._b_sets, self._b_n = self.l1_base.sets, self.l1_base.nsets
        self._h_sets, self._h_n = self.l1_huge.sets, self.l1_huge.nsets
        self._g_sets, self._g_n = self.l1_giga.sets, self.l1_giga.nsets
        self._l2_sets, self._l2_n = self.l2.sets, self.l2.nsets
        self._b_stats = self.l1_base.stats
        self._h_stats = self.l1_huge.stats
        self._g_stats = self.l1_giga.stats
        self._l2_stats = self.l2.stats
        self._l1_base_fill = self.l1_base.fill
        self._l1_huge_fill = self.l1_huge.fill
        replacements = {
            config.l1_base.replacement,
            config.l1_huge.replacement,
            config.l1_giga.replacement,
            config.l2.replacement,
        }
        if len(replacements) > 1:
            raise ValueError(
                "mixed TLB replacement policies in one hierarchy: "
                f"{sorted(replacements)}"
            )
        self._plru = config.l1_base.replacement == "plru"
        if self._plru:
            # The inlined lookup() below is LRU-specific (dict
            # delete+reinsert is the recency update); under PLRU the
            # structures rebound their own methods, so the hierarchy
            # rebinds lookup to the method-call variant and hoists the
            # per-structure probes. LRU runs pay nothing for the knob.
            self._b_hit = self.l1_base.hit_fast
            self._h_hit = self.l1_huge.hit_fast
            self._g_hit = self.l1_giga.hit_fast
            self._l2_hit = self.l2.hit_fast
            self.lookup = self._lookup_plru
        # Per page size: (vpn shift, L1 structure, L2 or None, stored
        # entry value as a plain int — filling with the IntEnum itself
        # would re-run int() on the enum for every walk).
        self._fill_plan = {
            size: (
                size.value - BASE_PAGE_SHIFT,
                self._l1_by_size[size],
                self.l2 if size in config.l2.page_sizes else None,
                int(size.value),
            )
            for size in PageSize
        }
        self.accesses = 0

    @property
    def l2_serves_huge(self) -> bool:
        """Whether the unified L2 caches 2MB entries (Table 2: yes)."""
        return self._l2_serves_huge

    @staticmethod
    def _tag(vpn: int, size: PageSize) -> int:
        """Region tag at ``size`` granularity for a 4KB VPN."""
        return vpn >> (size.value - BASE_PAGE_SHIFT)

    def lookup(self, vpn: int) -> AccessResult:
        """Probe the hierarchy for the page holding 4KB VPN ``vpn``.

        L1 structures are probed in parallel in hardware; here we test
        them in turn and count statistics only on the structure that
        answers (or on the 4KB structure for a clean miss, since that is
        the probe every access performs).
        """
        # Each probe below is TLB.hit_fast inlined: dict get, LRU
        # refresh via delete+reinsert, hit count. The call-free chain
        # matters more here than anywhere else in the simulator.
        self.accesses += 1
        entries = self._b_sets[vpn % self._b_n]
        size = entries.get(vpn)
        if size is not None:
            del entries[vpn]
            entries[vpn] = size
            self._b_stats.hits += 1
            return _L1_BASE
        huge_tag = vpn >> _HUGE_SHIFT
        entries = self._h_sets[huge_tag % self._h_n]
        size = entries.get(huge_tag)
        if size is not None:
            del entries[huge_tag]
            entries[huge_tag] = size
            self._h_stats.hits += 1
            return _L1_HUGE
        giga_tag = vpn >> _GIGA_SHIFT
        entries = self._g_sets[giga_tag % self._g_n]
        size = entries.get(giga_tag)
        if size is not None:
            del entries[giga_tag]
            entries[giga_tag] = size
            self._g_stats.hits += 1
            return _L1_GIGA
        self._b_stats.misses += 1

        l2_sets = self._l2_sets
        l2_n = self._l2_n
        entries = l2_sets[vpn % l2_n]
        size = entries.get(vpn)
        if size is not None:
            del entries[vpn]
            entries[vpn] = size
            self._l2_stats.hits += 1
            # On an L2 hit the entry is refilled into its L1.
            self._l1_base_fill(vpn, BASE_PAGE_SHIFT)
            return _L2_BASE
        if self._l2_serves_huge:
            entries = l2_sets[huge_tag % l2_n]
            size = entries.get(huge_tag)
            if size is not None:
                del entries[huge_tag]
                entries[huge_tag] = size
                self._l2_stats.hits += 1
                self._l1_huge_fill(huge_tag, HUGE_PAGE_SHIFT)
                return _L2_HUGE
        self._l2_stats.misses += 1
        return _MISS

    def _lookup_plru(self, vpn: int) -> AccessResult:
        """PLRU-mode lookup: same probe order and attribution as the
        inlined LRU path, recency updates delegated to the structures."""
        self.accesses += 1
        if self._b_hit(vpn):
            return _L1_BASE
        huge_tag = vpn >> _HUGE_SHIFT
        if self._h_hit(huge_tag):
            return _L1_HUGE
        giga_tag = vpn >> _GIGA_SHIFT
        if self._g_hit(giga_tag):
            return _L1_GIGA
        self._b_stats.misses += 1
        if self._l2_hit(vpn):
            self._l1_base_fill(vpn, BASE_PAGE_SHIFT)
            return _L2_BASE
        if self._l2_serves_huge and self._l2_hit(huge_tag):
            self._l1_huge_fill(huge_tag, HUGE_PAGE_SHIFT)
            return _L2_HUGE
        self._l2_stats.misses += 1
        return _MISS

    def fill(self, vpn: int, page_size: PageSize) -> tuple[int | None, int | None]:
        """Install the walked translation into L1 (and L2 if served).

        Returns ``(l1_victim, l2_victim)`` region tags (``None`` where
        nothing was evicted) so differential harnesses can cross-check
        victim selection; the engine ignores the return value.
        """
        shift, l1, l2, entry = self._fill_plan[page_size]
        tag = vpn >> shift
        l1_victim = l1.fill(tag, entry)
        l2_victim = l2.fill(tag, entry) if l2 is not None else None
        return l1_victim, l2_victim

    def shootdown_region(self, huge_region: int) -> None:
        """Invalidate every entry overlapping 2MB region ``huge_region``.

        Called on promotion/demotion of that region. 4KB entries inside
        the region, the region's own 2MB entry, and (conservatively) the
        covering 1GB entry are dropped.
        """
        span = PageSize.HUGE.base_pages
        first_vpn = huge_region * span
        for vpn in range(first_vpn, first_vpn + span):
            self.l1_base.invalidate(vpn)
            self.l2.invalidate(vpn)
        self.l1_huge.invalidate(huge_region)
        if self._l2_serves_huge:
            self.l2.invalidate(huge_region)
        self.l1_giga.invalidate(huge_region >> (_GIGA_SHIFT - _HUGE_SHIFT))

    def flush(self) -> None:
        """Full shootdown of all levels."""
        for tlb in (self.l1_base, self.l1_huge, self.l1_giga, self.l2):
            tlb.flush()

    def miss_rate(self) -> float:
        """Fraction of accesses that missed the whole hierarchy.

        This is the paper's "TLB miss %" (accesses causing page table
        walks divided by all accesses).
        """
        if self.accesses == 0:
            return 0.0
        return self.l2.stats.misses / self.accesses
