"""Set-associative TLB with true-LRU replacement.

One :class:`TLB` instance models one hardware structure (e.g. the L1
4KB D-TLB). Tags are region numbers at the structure's page
granularity; each set is an insertion-ordered dict, so true LRU falls
out of Python's dict ordering: a hit deletes and reinserts the tag,
moving it to the most-recently-used position.

This sits on the simulator's hottest path, so the implementation
favors plain ints and direct dict operations; the page size stored per
entry is the :class:`~repro.vm.address.PageSize` *value* (the shift).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import TLBConfig
from repro.vm.address import PageSize


@dataclass
class TLBStats:
    """Hit/miss/eviction counters for one TLB structure."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        """Total counted probes."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses over counted probes."""
        return self.misses / self.accesses if self.accesses else 0.0

    def as_metrics(self, prefix: str) -> dict[str, int]:
        """Counter readings for the metrics registry, under ``prefix``."""
        return {
            f"{prefix}.hits": self.hits,
            f"{prefix}.misses": self.misses,
            f"{prefix}.evictions": self.evictions,
            f"{prefix}.invalidations": self.invalidations,
        }


class TLB:
    """One set-associative translation structure."""

    def __init__(self, config: TLBConfig, name: str = "tlb") -> None:
        self.config = config
        self.name = name
        self.stats = TLBStats()
        # One ordered dict per set: tag -> page-size shift of the entry.
        # Tags are non-negative, so ``tag % nsets`` equals the bit-mask
        # index for power-of-two set counts — one indexing path serves
        # both geometries.
        self._sets: list[dict[int, int]] = [dict() for _ in range(config.sets)]
        self._nsets = config.sets
        self._ways = config.ways

    @property
    def sets(self) -> list[dict[int, int]]:
        """The per-set entry dicts (read-only use: fast-path probing)."""
        return self._sets

    @property
    def nsets(self) -> int:
        """Number of sets (the modulus of :meth:`_set_for`)."""
        return self._nsets

    def _set_for(self, tag: int) -> dict[int, int]:
        return self._sets[tag % self._nsets]

    # The hot methods below index self._sets directly instead of calling
    # _set_for: at ~10^6 probes per simulated quantum the extra method
    # call is measurable.

    def lookup(self, tag: int) -> bool:
        """Probe for ``tag``; refresh LRU position on hit."""
        entries = self._sets[tag % self._nsets]
        size = entries.get(tag)
        if size is None:
            self.stats.misses += 1
            return False
        # Move to MRU position.
        del entries[tag]
        entries[tag] = size
        self.stats.hits += 1
        return True

    def hit_fast(self, tag: int) -> bool:
        """Hot-path probe: refresh LRU and count a hit, but leave miss
        accounting to the caller (the hierarchy attributes misses)."""
        entries = self._sets[tag % self._nsets]
        size = entries.get(tag)
        if size is None:
            return False
        del entries[tag]
        entries[tag] = size
        self.stats.hits += 1
        return True

    def probe(self, tag: int) -> bool:
        """Presence check without touching LRU state or statistics."""
        return tag in self._set_for(tag)

    def fill(self, tag: int, page_size: PageSize | int) -> int | None:
        """Install ``tag``; return the evicted victim tag, if any."""
        size = page_size if type(page_size) is int else int(page_size)
        entries = self._sets[tag % self._nsets]
        if tag in entries:
            del entries[tag]
            entries[tag] = size
            return None
        victim = None
        if len(entries) >= self._ways:
            victim = next(iter(entries))
            del entries[victim]
            self.stats.evictions += 1
        entries[tag] = size
        return victim

    def invalidate(self, tag: int) -> bool:
        """Drop ``tag`` if present (TLB shootdown of one entry)."""
        entries = self._set_for(tag)
        if tag in entries:
            del entries[tag]
            self.stats.invalidations += 1
            return True
        return False

    def flush(self) -> None:
        """Drop every entry (full shootdown / context switch)."""
        for entries in self._sets:
            self.stats.invalidations += len(entries)
            entries.clear()

    def occupancy(self) -> int:
        """Entries currently resident."""
        return sum(len(entries) for entries in self._sets)

    def resident_tags(self) -> set[int]:
        """All cached tags (for tests and introspection)."""
        tags: set[int] = set()
        for entries in self._sets:
            tags.update(entries)
        return tags
