"""Set-associative TLB with true-LRU or tree-PLRU replacement.

One :class:`TLB` instance models one hardware structure (e.g. the L1
4KB D-TLB). Tags are region numbers at the structure's page
granularity; each set is an insertion-ordered dict, so true LRU falls
out of Python's dict ordering: a hit deletes and reinserts the tag,
moving it to the most-recently-used position.

With ``TLBConfig.replacement == "plru"`` the structure instead keeps
one tree-PLRU bitmask per set (:mod:`repro.tlb.plru`) plus explicit
way<->tag maps, the organization real hardware TLBs use. The entry
dicts are still maintained (membership only — their order is
meaningless under PLRU) so presence probes, occupancy accounting, and
the invariant monitor work identically for both policies. Observable
PLRU semantics: hits and fills touch the tree; ``probe`` does not;
a fill prefers the lowest-index empty way before consulting the tree;
``invalidate`` frees the way but leaves the direction bits (hardware
does not rewind them); ``flush`` resets both.

This sits on the simulator's hottest path, so the implementation
favors plain ints and direct dict operations; the page size stored per
entry is the :class:`~repro.vm.address.PageSize` *value* (the shift).
The PLRU variants are installed as instance attributes at construction
so the LRU hot path pays nothing for the knob.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import TLBConfig
from repro.tlb import plru
from repro.vm.address import PageSize


@dataclass
class TLBStats:
    """Hit/miss/eviction counters for one TLB structure."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        """Total counted probes."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses over counted probes."""
        return self.misses / self.accesses if self.accesses else 0.0

    def as_metrics(self, prefix: str) -> dict[str, int]:
        """Counter readings for the metrics registry, under ``prefix``."""
        return {
            f"{prefix}.hits": self.hits,
            f"{prefix}.misses": self.misses,
            f"{prefix}.evictions": self.evictions,
            f"{prefix}.invalidations": self.invalidations,
        }


class TLB:
    """One set-associative translation structure."""

    def __init__(self, config: TLBConfig, name: str = "tlb") -> None:
        self.config = config
        self.name = name
        self.stats = TLBStats()
        # One ordered dict per set: tag -> page-size shift of the entry.
        # Tags are non-negative, so ``tag % nsets`` equals the bit-mask
        # index for power-of-two set counts — one indexing path serves
        # both geometries.
        self._sets: list[dict[int, int]] = [dict() for _ in range(config.sets)]
        self._nsets = config.sets
        self._ways = config.ways
        self._plru = config.replacement == "plru"
        if self._plru:
            #: per-set tree-PLRU direction bitmask (repro.tlb.plru)
            self._bits = [0] * config.sets
            #: per-set way -> resident tag (-1 = empty way)
            self._way_tags = [[-1] * config.ways for _ in range(config.sets)]
            #: per-set tag -> way (the O(1) probe under PLRU)
            self._way_of: list[dict[int, int]] = [
                dict() for _ in range(config.sets)
            ]
            self.lookup = self._lookup_plru
            self.hit_fast = self._hit_fast_plru
            self.fill = self._fill_plru
            self.invalidate = self._invalidate_plru
            self.flush = self._flush_plru

    @property
    def sets(self) -> list[dict[int, int]]:
        """The per-set entry dicts (read-only use: fast-path probing)."""
        return self._sets

    @property
    def nsets(self) -> int:
        """Number of sets (the modulus of :meth:`_set_for`)."""
        return self._nsets

    def _set_for(self, tag: int) -> dict[int, int]:
        return self._sets[tag % self._nsets]

    # The hot methods below index self._sets directly instead of calling
    # _set_for: at ~10^6 probes per simulated quantum the extra method
    # call is measurable.

    def lookup(self, tag: int) -> bool:
        """Probe for ``tag``; refresh LRU position on hit."""
        entries = self._sets[tag % self._nsets]
        size = entries.get(tag)
        if size is None:
            self.stats.misses += 1
            return False
        # Move to MRU position.
        del entries[tag]
        entries[tag] = size
        self.stats.hits += 1
        return True

    def hit_fast(self, tag: int) -> bool:
        """Hot-path probe: refresh LRU and count a hit, but leave miss
        accounting to the caller (the hierarchy attributes misses)."""
        entries = self._sets[tag % self._nsets]
        size = entries.get(tag)
        if size is None:
            return False
        del entries[tag]
        entries[tag] = size
        self.stats.hits += 1
        return True

    def probe(self, tag: int) -> bool:
        """Presence check without touching LRU state or statistics."""
        return tag in self._set_for(tag)

    def fill(self, tag: int, page_size: PageSize | int) -> int | None:
        """Install ``tag``; return the evicted victim tag, if any."""
        size = page_size if type(page_size) is int else int(page_size)
        entries = self._sets[tag % self._nsets]
        if tag in entries:
            del entries[tag]
            entries[tag] = size
            return None
        victim = None
        if len(entries) >= self._ways:
            victim = next(iter(entries))
            del entries[victim]
            self.stats.evictions += 1
        entries[tag] = size
        return victim

    def invalidate(self, tag: int) -> bool:
        """Drop ``tag`` if present (TLB shootdown of one entry)."""
        entries = self._set_for(tag)
        if tag in entries:
            del entries[tag]
            self.stats.invalidations += 1
            return True
        return False

    def flush(self) -> None:
        """Drop every entry (full shootdown / context switch)."""
        for entries in self._sets:
            self.stats.invalidations += len(entries)
            entries.clear()

    # ------------------------------------------------------------------
    # tree-PLRU variants (bound over the defaults in __init__ when
    # config.replacement == "plru"; repro.tlb.plru is always called
    # through the module attribute so defect injection can intercept it)

    def _lookup_plru(self, tag: int) -> bool:
        si = tag % self._nsets
        way = self._way_of[si].get(tag)
        if way is None:
            self.stats.misses += 1
            return False
        self._bits[si] = plru.touch(self._bits[si], self._ways, way)
        self.stats.hits += 1
        return True

    def _hit_fast_plru(self, tag: int) -> bool:
        si = tag % self._nsets
        way = self._way_of[si].get(tag)
        if way is None:
            return False
        self._bits[si] = plru.touch(self._bits[si], self._ways, way)
        self.stats.hits += 1
        return True

    def _fill_plru(self, tag: int, page_size: PageSize | int) -> int | None:
        size = page_size if type(page_size) is int else int(page_size)
        si = tag % self._nsets
        entries = self._sets[si]
        way_of = self._way_of[si]
        way = way_of.get(tag)
        if way is not None:
            entries[tag] = size
            self._bits[si] = plru.touch(self._bits[si], self._ways, way)
            return None
        tags = self._way_tags[si]
        victim = None
        if len(way_of) >= self._ways:
            way = plru.victim(self._bits[si], self._ways)
            victim = tags[way]
            del entries[victim]
            del way_of[victim]
            self.stats.evictions += 1
        else:
            way = tags.index(-1)
        tags[way] = tag
        way_of[tag] = way
        entries[tag] = size
        self._bits[si] = plru.touch(self._bits[si], self._ways, way)
        return victim

    def _invalidate_plru(self, tag: int) -> bool:
        si = tag % self._nsets
        way = self._way_of[si].pop(tag, None)
        if way is None:
            return False
        del self._sets[si][tag]
        self._way_tags[si][way] = -1
        self.stats.invalidations += 1
        return True

    def _flush_plru(self) -> None:
        for si, entries in enumerate(self._sets):
            self.stats.invalidations += len(entries)
            entries.clear()
            self._way_of[si].clear()
            tags = self._way_tags[si]
            for way in range(self._ways):
                tags[way] = -1
            self._bits[si] = 0

    def plru_state(self, index: int) -> tuple[int, list[int]]:
        """(direction bits, way->tag list) of set ``index`` (PLRU only).

        Introspection for the invariant monitor and tests; raises
        ``AttributeError`` under LRU, where no tree state exists.
        """
        return self._bits[index], list(self._way_tags[index])

    def occupancy(self) -> int:
        """Entries currently resident."""
        return sum(len(entries) for entries in self._sets)

    def resident_tags(self) -> set[int]:
        """All cached tags (for tests and introspection)."""
        tags: set[int] = set()
        for entries in self._sets:
            tags.update(entries)
        return tags
