"""Hardware page-table walker with accessed-bit PCC admission.

The walker implements Fig. 3's left side: after a last-level TLB miss
it walks the radix levels appropriate to the mapping size, consults the
PUD/PMD accessed bits, and — only when a bit was already set (so the
miss is not a cold first touch) — reports the 1GB/2MB region prefixes
for PCC insertion. Walk latency is modelled as one memory reference per
level minus partial walks served by the page-walk caches (PWC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.config import WalkerConfig
from repro.tlb.tlb import TLB
from repro.config import TLBConfig
from repro.vm.address import PageSize
from repro.vm.pagetable import Mapping, PageTable

#: Radix levels for each mapping size: a 4KB leaf needs PML4+PUD+PMD+PTE
#: references, a 2MB leaf stops at the PMD, a 1GB leaf at the PUD.
_LEVELS_BY_SIZE = {
    PageSize.BASE: 4,
    PageSize.HUGE: 3,
    PageSize.GIGA: 2,
}

#: Shift isolating the table index covered by each upper level; a PWC
#: entry for level L caches the partial walk down to (but excluding) L's
#: successor: PML4 entries cover 512GB, PUD 1GB, PMD 2MB.
_PWC_LEVEL_SHIFTS = (39, 30, 21)

#: Region shifts hoisted out of the per-walk enum attribute lookups.
_GIGA_SHIFT = PageSize.GIGA.value
_HUGE_SHIFT = PageSize.HUGE.value


@dataclass
class WalkerStats:
    """Counters for walks and PWC behaviour."""

    walks: int = 0
    walk_cycles: int = 0
    pwc_hits: int = 0
    pwc_misses: int = 0
    memory_refs: int = 0
    pcc_candidates_2mb: int = 0
    pcc_candidates_1gb: int = 0

    @property
    def refs_per_walk(self) -> float:
        """Mean page-table memory references per walk (§5.4.1)."""
        return self.memory_refs / self.walks if self.walks else 0.0


class WalkResult(NamedTuple):
    """Outcome of one hardware walk.

    A ``NamedTuple``: one is built per TLB miss, and tuple construction
    stays off the profile in a way frozen-dataclass ``__init__`` does not.
    """

    mapping: Mapping
    cycles: int
    #: 2MB prefix to feed the 2MB PCC, or None (cold miss / huge leaf)
    pcc_2mb_candidate: int | None
    #: 1GB prefix to feed the 1GB PCC, or None
    pcc_1gb_candidate: int | None
    #: True when the walked leaf was an already-promoted huge/giga page
    leaf_is_promoted: bool = False


class PageTableWalker:
    """Per-core hardware walker feeding the PCC admission signals."""

    def __init__(self, config: WalkerConfig) -> None:
        self.config = config
        self.stats = WalkerStats()
        if config.pwc_enabled:
            pwc_geometry = TLBConfig(
                config.pwc_entries, 4, (PageSize.BASE,)
            )
            self._pwcs = [
                TLB(pwc_geometry, f"PWC-L{4 - i}") for i in range(len(_PWC_LEVEL_SHIFTS))
            ]
        else:
            self._pwcs = []
        # Last-tag fast path per PWC level: upper-level tags repeat for
        # long stretches (one PML4 entry covers 512GB), so most probes
        # re-hit the immediately preceding tag.
        self._last_tags = [-1] * len(self._pwcs)
        # Hoisted config scalars: _walk_cost reads these per level.
        self._pwc_hit_cycles = config.pwc_hit_cycles
        self._memory_ref_cycles = config.memory_ref_cycles

    def walk(self, vaddr: int, page_table: PageTable) -> WalkResult:
        """Perform one walk; update accessed bits and PWCs.

        The cost model (:meth:`_walk_cost`) is inlined here: the walker
        runs once per full TLB-hierarchy miss and the extra call frame
        shows up in end-to-end profiles.
        """
        mapping, pud_was_accessed, pmd_was_accessed = page_table.walk(vaddr)
        levels = _LEVELS_BY_SIZE[mapping.page_size]
        stats = self.stats
        pwcs = self._pwcs
        last_tags = self._last_tags
        npwcs = len(pwcs)
        pwc_hit_cycles = self._pwc_hit_cycles
        memory_ref_cycles = self._memory_ref_cycles
        cycles = 0
        refs = 0
        for level_index in range(levels - 1):
            if level_index < npwcs:
                tag = vaddr >> _PWC_LEVEL_SHIFTS[level_index]
                if tag == last_tags[level_index]:
                    stats.pwc_hits += 1
                    cycles += pwc_hit_cycles
                    continue
                pwc = pwcs[level_index]
                if pwc.lookup(tag):
                    last_tags[level_index] = tag
                    stats.pwc_hits += 1
                    cycles += pwc_hit_cycles
                    continue
                stats.pwc_misses += 1
                pwc.fill(tag, PageSize.BASE)
                last_tags[level_index] = tag
            cycles += memory_ref_cycles
            refs += 1
        cycles += memory_ref_cycles
        refs += 1
        stats.walks += 1
        stats.walk_cycles += cycles
        stats.memory_refs += refs

        # Fig. 3 admission protocol: a region enters a PCC only when its
        # level accessed bit was already set before this walk, filtering
        # cold (first-touch) misses out of the candidate pool.
        pcc_2mb = None
        pcc_1gb = None
        if pud_was_accessed:
            pcc_1gb = vaddr >> _GIGA_SHIFT
            self.stats.pcc_candidates_1gb += 1
        if mapping.page_size is not PageSize.GIGA and pmd_was_accessed:
            pcc_2mb = vaddr >> _HUGE_SHIFT
            self.stats.pcc_candidates_2mb += 1

        leaf_is_promoted = mapping.page_size is not PageSize.BASE
        return WalkResult(
            mapping=mapping,
            cycles=cycles,
            pcc_2mb_candidate=pcc_2mb,
            pcc_1gb_candidate=pcc_1gb,
            leaf_is_promoted=leaf_is_promoted,
        )

    def _walk_cost(self, vaddr: int, levels: int) -> tuple[int, int]:
        """Cycles and memory references for a ``levels``-deep walk.

        The PWC for an upper level, when it hits, replaces that level's
        memory reference with a fast lookup; the leaf reference always
        goes to memory (any leaf PTE requires a single access, §5.4.1).
        :meth:`walk` inlines this logic; the method remains the
        authoritative statement of the cost model for tests and tools.
        """
        stats = self.stats
        pwc_hit_cycles = self._pwc_hit_cycles
        memory_ref_cycles = self._memory_ref_cycles
        pwcs = self._pwcs
        last_tags = self._last_tags
        npwcs = len(pwcs)
        cycles = 0
        refs = 0
        upper_levels = levels - 1
        for level_index in range(upper_levels):
            if level_index < npwcs:
                tag = vaddr >> _PWC_LEVEL_SHIFTS[level_index]
                if tag == last_tags[level_index]:
                    stats.pwc_hits += 1
                    cycles += pwc_hit_cycles
                    continue
                pwc = pwcs[level_index]
                if pwc.lookup(tag):
                    last_tags[level_index] = tag
                    stats.pwc_hits += 1
                    cycles += pwc_hit_cycles
                    continue
                stats.pwc_misses += 1
                pwc.fill(tag, PageSize.BASE)
                last_tags[level_index] = tag
            cycles += memory_ref_cycles
            refs += 1
        cycles += memory_ref_cycles
        refs += 1
        return cycles, refs

    def flush_pwc(self) -> None:
        """Drop all partial-walk cache entries (e.g. after promotion)."""
        for pwc in self._pwcs:
            pwc.flush()
        self._last_tags = [-1] * len(self._pwcs)
