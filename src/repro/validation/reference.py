"""Hardware-faithful TLB/PTW reference oracle (Ariane semantics).

The engine's TLB stack (:mod:`repro.tlb`) is optimized Python: hoisted
bound methods, insertion-ordered dicts standing in for LRU age
matrices, a heap-packed bitmask standing in for the tree-PLRU node
array. Each of those encodings carries a proof obligation, and the
differential tier oracle cannot discharge it — all four engine tiers
share the same structures, so an encoding bug is invisible to
tier-vs-tier comparison.

This module is the independent witness: a from-scratch model of the
same hardware written the way an RTL reference model would be —
explicit way arrays, explicit age counters for true LRU, an explicit
binary tree of node objects for tree-PLRU, and a multi-level page-table
walker with partial-walk caches. It deliberately imports **nothing**
from :mod:`repro.tlb`; even the address-geometry constants are restated
here from the architecture (Sv48/x86-64 radix shifts), so a defect in
the production encodings cannot silently propagate into the model that
is supposed to catch it.

:func:`check_crosscheck` drives the real hierarchy + walker and this
reference with identical address streams derived from a fuzz case
(:mod:`repro.validation.generators`) and cross-checks, per access:

- the hit level and page size the hierarchy answers with,
- the victim tags evicted by every fill (L1 and L2),
- the number of page-table memory references each walk performs,

plus end-of-run per-structure statistics, resident-tag sets, and PWC
hit/miss totals. Divergences raise
:class:`~repro.validation.oracle.ValidationFailure` in the
``reference.*`` domain, so the ddmin shrinker and the corpus pipeline
handle them exactly like tier divergences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.validation.generators import WINDOW_BASE, FuzzCase
from repro.validation.oracle import CaseReport, ValidationFailure

# ----------------------------------------------------------------------
# architecture constants, restated (NOT imported from repro.tlb / vm)

#: byte shifts of the three leaf sizes (4KB / 2MB / 1GB)
_BASE_SHIFT = 12
_HUGE_SHIFT = 21
_GIGA_SHIFT = 30

#: table-index shifts covered by the upper radix levels (PML4/PUD/PMD)
_PWC_LEVEL_SHIFTS = (39, 30, 21)

#: radix levels a walk traverses per leaf size (shift -> level count)
_LEVELS_BY_SHIFT = {_BASE_SHIFT: 4, _HUGE_SHIFT: 3, _GIGA_SHIFT: 2}

#: 4KB pages per 2MB region
_PAGES_PER_REGION = 1 << (_HUGE_SHIFT - _BASE_SHIFT)


# ----------------------------------------------------------------------
# replacement state, modelled the RTL way


class _TreeNode:
    """One node of an explicit tree-PLRU binary tree.

    Internal nodes carry a ``go_right`` direction flag (True = the
    pseudo-LRU victim lives in the right subtree) and a count of backed
    leaves per side; leaves carry their way index (or None when the
    tree is wider than the way count).
    """

    __slots__ = ("left", "right", "parent", "go_right", "backed", "way")

    def __init__(self) -> None:
        self.left = None
        self.right = None
        self.parent = None
        self.go_right = False
        self.backed = 0
        self.way = None


class _PLRUTree:
    """Tree-PLRU over ``ways`` ways, built from linked node objects."""

    def __init__(self, ways: int) -> None:
        self.ways = ways
        width = 1
        while width < ways:
            width *= 2
        leaves = []
        self.root = self._build(width, leaves)
        self.leaves = leaves
        for way, leaf in enumerate(leaves):
            if way < ways:
                leaf.way = way
                node = leaf
                while node is not None:
                    node.backed += 1
                    node = node.parent

    def _build(self, width: int, leaves: list) -> _TreeNode:
        node = _TreeNode()
        if width == 1:
            leaves.append(node)
            return node
        node.left = self._build(width // 2, leaves)
        node.right = self._build(width // 2, leaves)
        node.left.parent = node
        node.right.parent = node
        return node

    def touch(self, way: int) -> None:
        """Point every ancestor away from ``way`` (mark it MRU)."""
        node = self.leaves[way]
        while node.parent is not None:
            # victim direction = the side the touched way is NOT on
            node.parent.go_right = node.parent.left is node
            node = node.parent

    def victim(self) -> int:
        """Follow the direction flags to the pseudo-LRU way."""
        node = self.root
        while node.way is None:
            chosen = node.right if node.go_right else node.left
            if chosen.backed == 0:
                # unbacked subtree (non-power-of-two way counts only):
                # hardware steers to the (always partially backed) left
                chosen = node.left
            node = chosen
        return node.way

    def reset(self) -> None:
        stack = [self.root]
        while stack:
            node = stack.pop()
            node.go_right = False
            if node.left is not None:
                stack.append(node.left)
                stack.append(node.right)


@dataclass
class RefStats:
    """Hit/miss/eviction counters, mirroring the real structures'."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class _Set:
    """One set: explicit way arrays plus per-policy recency state."""

    __slots__ = ("ways", "tags", "sizes", "ages", "tree", "plru")

    def __init__(self, ways: int, plru: bool) -> None:
        self.ways = ways
        self.tags = [None] * ways
        self.sizes = [None] * ways
        self.plru = plru
        if plru:
            self.tree = _PLRUTree(ways)
            self.ages = None
        else:
            self.tree = None
            self.ages = [0] * ways

    def way_of(self, tag: int):
        try:
            return self.tags.index(tag)
        except ValueError:
            return None

    def occupancy(self) -> int:
        return sum(1 for t in self.tags if t is not None)


class RefTLB:
    """Set-associative translation structure, reference semantics.

    Observable contract shared with the production model: ``lookup``
    touches recency on a hit; ``fill`` of a present tag refreshes it;
    a fill into a non-full set takes the lowest-index empty way under
    PLRU (hardware fill-priority encoder) and any empty way under LRU;
    a fill into a full set evicts the policy victim; ``invalidate``
    frees the way without rewinding PLRU direction flags; ``flush``
    clears entries and resets recency state.
    """

    def __init__(self, entries: int, ways: int, replacement: str,
                 name: str = "ref") -> None:
        if ways == 0:
            ways = entries  # full associativity
        self.name = name
        self.ways = ways
        self.nsets = entries // ways
        self.plru = replacement == "plru"
        self._sets = [_Set(ways, self.plru) for _ in range(self.nsets)]
        self.stats = RefStats()
        self._clock = 0

    def _touch(self, line: _Set, way: int) -> None:
        if line.plru:
            line.tree.touch(way)
        else:
            self._clock += 1
            line.ages[way] = self._clock

    def lookup(self, tag: int) -> bool:
        """Probe; refresh recency and count a hit, else count a miss."""
        line = self._sets[tag % self.nsets]
        way = line.way_of(tag)
        if way is None:
            self.stats.misses += 1
            return False
        self._touch(line, way)
        self.stats.hits += 1
        return True

    def hit_quiet(self, tag: int) -> bool:
        """Probe; refresh and count only on a hit (hierarchy L1 mode)."""
        line = self._sets[tag % self.nsets]
        way = line.way_of(tag)
        if way is None:
            return False
        self._touch(line, way)
        self.stats.hits += 1
        return True

    def fill(self, tag: int, size: int):
        """Install ``tag``; return the evicted victim tag, if any."""
        line = self._sets[tag % self.nsets]
        way = line.way_of(tag)
        if way is not None:
            line.sizes[way] = size
            self._touch(line, way)
            return None
        victim = None
        if line.occupancy() >= line.ways:
            if line.plru:
                way = line.tree.victim()
            else:
                way = min(
                    (w for w in range(line.ways)),
                    key=lambda w: line.ages[w],
                )
            victim = line.tags[way]
            self.stats.evictions += 1
        else:
            way = line.tags.index(None)
        line.tags[way] = tag
        line.sizes[way] = size
        self._touch(line, way)
        return victim

    def invalidate(self, tag: int) -> bool:
        line = self._sets[tag % self.nsets]
        way = line.way_of(tag)
        if way is None:
            return False
        line.tags[way] = None
        line.sizes[way] = None
        if not line.plru:
            line.ages[way] = 0
        # PLRU direction flags are deliberately left as-is: hardware
        # does not rewind the tree on a shootdown.
        self.stats.invalidations += 1
        return True

    def flush(self) -> None:
        for line in self._sets:
            self.stats.invalidations += line.occupancy()
            for way in range(line.ways):
                line.tags[way] = None
                line.sizes[way] = None
            if line.plru:
                line.tree.reset()
            else:
                line.ages = [0] * line.ways

    def resident_tags(self) -> set:
        tags: set = set()
        for line in self._sets:
            tags.update(t for t in line.tags if t is not None)
        return tags


# ----------------------------------------------------------------------
# hierarchy + walker reference models


class RefHierarchy:
    """Split L1 (4K/2M/1G) + unified L2, reference semantics.

    Probe order and miss attribution mirror the production hierarchy:
    the three L1 structures probe in size order, a clean L1 miss counts
    once on the 4KB structure, the unified L2 is probed by 4KB tag then
    (when it serves 2MB entries) by region tag, and an L2 hit refills
    the matching L1 structure.
    """

    def __init__(self, tlb_config) -> None:
        c = tlb_config
        replacement = c.l1_base.replacement
        self.l1_base = RefTLB(c.l1_base.entries, c.l1_base.associativity,
                              replacement, "L1-4K")
        self.l1_huge = RefTLB(c.l1_huge.entries, c.l1_huge.associativity,
                              replacement, "L1-2M")
        self.l1_giga = RefTLB(c.l1_giga.entries, c.l1_giga.associativity,
                              replacement, "L1-1G")
        self.l2 = RefTLB(c.l2.entries, c.l2.associativity, replacement, "L2")
        self.l2_serves_huge = any(
            int(size.value) == _HUGE_SHIFT for size in c.l2.page_sizes
        )
        self.accesses = 0

    def lookup(self, vpn: int):
        """Returns ``(level, size_shift)``: ("L1"|"L2"|"MISS", shift)."""
        self.accesses += 1
        if self.l1_base.hit_quiet(vpn):
            return "L1", _BASE_SHIFT
        huge_tag = vpn >> (_HUGE_SHIFT - _BASE_SHIFT)
        if self.l1_huge.hit_quiet(huge_tag):
            return "L1", _HUGE_SHIFT
        giga_tag = vpn >> (_GIGA_SHIFT - _BASE_SHIFT)
        if self.l1_giga.hit_quiet(giga_tag):
            return "L1", _GIGA_SHIFT
        self.l1_base.stats.misses += 1
        if self.l2.hit_quiet(vpn):
            self.l1_base.fill(vpn, _BASE_SHIFT)
            return "L2", _BASE_SHIFT
        if self.l2_serves_huge and self.l2.hit_quiet(huge_tag):
            self.l1_huge.fill(huge_tag, _HUGE_SHIFT)
            return "L2", _HUGE_SHIFT
        self.l2.stats.misses += 1
        return "MISS", None

    def fill(self, vpn: int, size_shift: int):
        """Install a walked translation; returns (l1_victim, l2_victim)."""
        tag = vpn >> (size_shift - _BASE_SHIFT)
        if size_shift == _BASE_SHIFT:
            l1 = self.l1_base
        elif size_shift == _HUGE_SHIFT:
            l1 = self.l1_huge
        else:
            l1 = self.l1_giga
        l1_victim = l1.fill(tag, size_shift)
        l2_victim = None
        if size_shift == _BASE_SHIFT or (
            size_shift == _HUGE_SHIFT and self.l2_serves_huge
        ):
            l2_victim = self.l2.fill(tag, size_shift)
        return l1_victim, l2_victim

    def shootdown_region(self, huge_region: int) -> None:
        first_vpn = huge_region * _PAGES_PER_REGION
        for vpn in range(first_vpn, first_vpn + _PAGES_PER_REGION):
            self.l1_base.invalidate(vpn)
            self.l2.invalidate(vpn)
        self.l1_huge.invalidate(huge_region)
        if self.l2_serves_huge:
            self.l2.invalidate(huge_region)
        self.l1_giga.invalidate(
            huge_region >> (_GIGA_SHIFT - _HUGE_SHIFT)
        )

    def flush(self) -> None:
        for structure in (self.l1_base, self.l1_huge, self.l1_giga, self.l2):
            structure.flush()

    def structures(self):
        return (
            ("L1-4K", self.l1_base),
            ("L1-2M", self.l1_huge),
            ("L1-1G", self.l1_giga),
            ("L2", self.l2),
        )


class RefWalker:
    """Multi-level PTW state machine with partial-walk caches.

    Per upper level, the walk consults a one-entry last-tag register
    and then the level's PWC (a small 4-way LRU cache, regardless of
    the D-TLB replacement knob — real PWCs are LRU); either hit
    replaces that level's page-table memory reference. The leaf PTE is
    always one memory reference.
    """

    def __init__(self, walker_config) -> None:
        self.enabled = walker_config.pwc_enabled
        if self.enabled:
            self.pwcs = [
                RefTLB(walker_config.pwc_entries, 4, "lru", f"PWC-L{4 - i}")
                for i in range(len(_PWC_LEVEL_SHIFTS))
            ]
        else:
            self.pwcs = []
        self.last_tags = [-1] * len(self.pwcs)
        self.pwc_hits = 0
        self.pwc_misses = 0
        self.walks = 0
        self.memory_refs = 0

    def walk(self, vaddr: int, size_shift: int) -> int:
        """One walk for a leaf of ``size_shift``; returns memory refs."""
        levels = _LEVELS_BY_SHIFT[size_shift]
        refs = 0
        for level_index in range(levels - 1):
            if level_index < len(self.pwcs):
                tag = vaddr >> _PWC_LEVEL_SHIFTS[level_index]
                if tag == self.last_tags[level_index]:
                    self.pwc_hits += 1
                    continue
                if self.pwcs[level_index].lookup(tag):
                    self.last_tags[level_index] = tag
                    self.pwc_hits += 1
                    continue
                self.pwc_misses += 1
                self.pwcs[level_index].fill(tag, _BASE_SHIFT)
                self.last_tags[level_index] = tag
            refs += 1
        refs += 1  # the leaf PTE reference always goes to memory
        self.walks += 1
        self.memory_refs += refs
        return refs

    def flush_pwc(self) -> None:
        for pwc in self.pwcs:
            pwc.flush()
        self.last_tags = [-1] * len(self.pwcs)


# ----------------------------------------------------------------------
# the differential harness


@dataclass
class CrosscheckReport:
    """What one clean cross-check covered."""

    case_id: str
    replacement: str
    accesses: int = 0
    walks: int = 0
    fills: int = 0
    flushes: int = 0
    shootdowns: int = 0
    checks: list = field(default_factory=list)


def _interleave(threads: list[list[int]]) -> list[int]:
    """Round-robin merge of the case's per-thread streams.

    The cross-check drives one hierarchy (one core); interleaving keeps
    multi-thread cases meaningful by mixing their locality patterns the
    way a shared structure would see them.
    """
    merged: list[int] = []
    cursors = [0] * len(threads)
    remaining = sum(len(t) for t in threads)
    while remaining:
        for i, thread in enumerate(threads):
            if cursors[i] < len(thread):
                merged.append(thread[cursors[i]])
                cursors[i] += 1
                remaining -= 1
    return merged


def _fail(domain: str, case: FuzzCase, detail: str) -> None:
    raise ValidationFailure(domain, detail, case)


def check_crosscheck(case: FuzzCase) -> CrosscheckReport:
    """Differentially run ``case``'s streams through the production
    TLB/walker stack and the reference model; raise on any divergence.

    The memory layout is derived from the case: every window page is
    base-mapped up front (the cross-check exercises translation
    hardware, not the fault path) and the case's static regions are
    promoted to 2MB, so walks traverse both 4-level and 3-level paths.
    A deterministic event schedule (periods derived from the case seed)
    interleaves full flushes and region shootdowns to exercise
    invalidation semantics on both sides.
    """
    import random

    from repro.tlb.hierarchy import HitLevel, TLBHierarchy
    from repro.tlb.walker import PageTableWalker
    from repro.vm.pagetable import PageTable

    config = case.build_config()
    replacement = config.tlb.l1_base.replacement

    # --- real side
    hierarchy = TLBHierarchy(config.tlb)
    walker = PageTableWalker(config.walker)
    table = PageTable()

    # --- reference side (independent model)
    ref = RefHierarchy(config.tlb)
    ref_walker = RefWalker(config.walker)

    # --- memory layout: all window pages base-mapped, statics promoted
    region_base = WINDOW_BASE >> _HUGE_SHIFT
    frame = 0
    for page in range(case.window_pages):
        table.map_base(WINDOW_BASE + (page << _BASE_SHIFT), frame)
        frame += 1
    promoted = set()
    nregions = max(1, case.window_pages // _PAGES_PER_REGION)
    for region in case.static_regions:
        if region >= nregions:
            continue
        prefix = region_base + region
        table.promote(prefix, frame)
        frame += 1
        promoted.add(prefix)

    def size_of(vpn: int) -> int:
        return _HUGE_SHIFT if (
            vpn >> (_HUGE_SHIFT - _BASE_SHIFT)
        ) in promoted else _BASE_SHIFT

    # --- deterministic event schedule from the case seed
    rng = random.Random(f"crosscheck:{case.seed}")
    flush_every = rng.randrange(150, 400)
    shoot_every = rng.randrange(40, 140)

    stream = _interleave(case.threads)
    report = CrosscheckReport(case_id=case.case_id, replacement=replacement)

    for index, page in enumerate(stream):
        page = page % case.window_pages
        vaddr = WINDOW_BASE + (page << _BASE_SHIFT)
        vpn = vaddr >> _BASE_SHIFT

        if index and index % flush_every == 0:
            hierarchy.flush()
            walker.flush_pwc()
            ref.flush()
            ref_walker.flush_pwc()
            report.flushes += 1
        elif index and index % shoot_every == 0:
            region = vpn >> (_HUGE_SHIFT - _BASE_SHIFT)
            hierarchy.shootdown_region(region)
            ref.shootdown_region(region)
            report.shootdowns += 1

        real = hierarchy.lookup(vpn)
        real_level = real.level.name if real.level is not HitLevel.MISS \
            else "MISS"
        real_size = int(real.page_size.value) if real.page_size else None
        ref_level, ref_size = ref.lookup(vpn)
        if (real_level, real_size) != (ref_level, ref_size):
            _fail(
                "reference.hit_level", case,
                f"access {index} vpn {vpn:#x}: machine answered "
                f"{real_level}/{real_size}, reference expects "
                f"{ref_level}/{ref_size} ({replacement})",
            )
        if real_level != "MISS":
            continue

        refs_before = walker.stats.memory_refs
        walk = walker.walk(vaddr, table)
        real_refs = walker.stats.memory_refs - refs_before
        planned = size_of(vpn)
        walked_size = int(walk.mapping.page_size.value)
        if walked_size != planned:
            _fail(
                "reference.mapping", case,
                f"access {index} vpn {vpn:#x}: page table walked a "
                f"{walked_size}-shift leaf, layout plan says {planned}",
            )
        ref_refs = ref_walker.walk(vaddr, planned)
        if real_refs != ref_refs:
            _fail(
                "reference.walk_refs", case,
                f"access {index} vpn {vpn:#x}: walk made {real_refs} "
                f"memory references, reference PTW expects {ref_refs}",
            )
        report.walks += 1

        victims = hierarchy.fill(vpn, walk.mapping.page_size)
        ref_victims = ref.fill(vpn, planned)
        if victims != ref_victims:
            _fail(
                "reference.victim", case,
                f"access {index} vpn {vpn:#x}: fill evicted "
                f"{tuple(hex(v) if v is not None else None for v in victims)}"
                f", reference {replacement} policy expects "
                f"{tuple(hex(v) if v is not None else None for v in ref_victims)}",
            )
        report.fills += 1

    report.accesses = len(stream)

    # --- end-of-run state must agree structure by structure
    for (name, ref_structure), real_structure in zip(
        ref.structures(),
        (hierarchy.l1_base, hierarchy.l1_huge, hierarchy.l1_giga,
         hierarchy.l2),
    ):
        real_stats = {
            "hits": real_structure.stats.hits,
            "misses": real_structure.stats.misses,
            "evictions": real_structure.stats.evictions,
            "invalidations": real_structure.stats.invalidations,
        }
        if real_stats != ref_structure.stats.snapshot():
            _fail(
                "reference.stats", case,
                f"{name} counters diverged: machine {real_stats}, "
                f"reference {ref_structure.stats.snapshot()}",
            )
        if real_structure.resident_tags() != ref_structure.resident_tags():
            _fail(
                "reference.resident", case,
                f"{name} resident tags diverged: machine "
                f"{sorted(real_structure.resident_tags())[:8]}..., "
                f"reference "
                f"{sorted(ref_structure.resident_tags())[:8]}...",
            )
    if (walker.stats.pwc_hits, walker.stats.pwc_misses) != (
        ref_walker.pwc_hits, ref_walker.pwc_misses
    ):
        _fail(
            "reference.pwc", case,
            f"PWC traffic diverged: machine "
            f"{walker.stats.pwc_hits}/{walker.stats.pwc_misses} "
            f"hits/misses, reference "
            f"{ref_walker.pwc_hits}/{ref_walker.pwc_misses}",
        )
    report.checks.extend(
        ["hit-level", "walk-refs", "victims", "stats", "resident", "pwc"]
    )
    return report


def check_case_or_crosscheck(case: FuzzCase, domain: str | None):
    """Replay dispatcher: ``reference.*`` reproducers re-run through the
    cross-check harness, everything else through the tier oracle."""
    from repro.validation.oracle import check_case

    if domain and domain.startswith("reference."):
        return check_crosscheck(case)
    return check_case(case)


__all__ = [
    "CrosscheckReport",
    "RefHierarchy",
    "RefTLB",
    "RefWalker",
    "check_case_or_crosscheck",
    "check_crosscheck",
]
