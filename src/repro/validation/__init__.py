"""Correctness tooling: differential oracles, fuzzing, invariants.

The reproduction's central claim is quantitative, so it is only as
trustworthy as the equivalence of its engine tiers (scalar / fast /
batch) and the semantic invariants of its OS policy models. This
package provides the machinery that proves both, continuously:

- :mod:`repro.validation.generators` — seeded random simulator
  configurations and synthetic address streams with tunable locality,
  fragmentation, and sharing knobs;
- :mod:`repro.validation.oracle` — the differential harness running one
  ``(config, stream)`` pair through every engine tier and through the
  OS policies, asserting bit-identical statistics where required and
  declared metamorphic relations where exact equality is not defined;
- :mod:`repro.validation.invariants` — cheap runtime invariant checkers
  installed through the engine's ``validate=True`` hook (TLB
  set-occupancy bounds, fast-path hint legality, PCC counter
  saturation laws, page-table region-count consistency);
- :mod:`repro.validation.shrink` — a delta-debugging reducer that turns
  any failing case into a minimal reproducer written to
  ``tests/corpus/`` so every past failure becomes a permanent
  regression test;
- :mod:`repro.validation.defects` — deliberately broken engine/OS
  variants used to prove the harness actually catches bugs.

Entry point: ``repro validate [--fuzz N | --replay DIR]``.
"""

from repro.validation.generators import FuzzCase, generate_case
from repro.validation.invariants import InvariantMonitor, InvariantViolation
from repro.validation.oracle import CaseReport, ValidationFailure, check_case
from repro.validation.shrink import shrink_case, write_reproducer

__all__ = [
    "FuzzCase",
    "generate_case",
    "InvariantMonitor",
    "InvariantViolation",
    "CaseReport",
    "ValidationFailure",
    "check_case",
    "shrink_case",
    "write_reproducer",
]
