"""Shrink failing fuzz cases into minimal corpus reproducers.

When the oracle rejects a case, the raw input is usually thousands of
accesses across several threads with a dozen active knobs — too big to
debug and too noisy to keep. :func:`shrink_case` reduces it while the
failure reproduces, in three structural stages:

1. **drop threads** — remove whole threads while the failure survives;
2. **ddmin over accesses** — per thread, delete contiguous chunks at
   halving granularity (classic delta debugging) until 1-access
   resolution;
3. **simplify knobs** — reset each configuration knob toward its most
   boring value (no demotion, LFU, flush mode, zero fragmentation, no
   static regions) and shrink the window, keeping each change only if
   the case still fails.

The predicate is arbitrary (typically "``check_case`` raises a failure
in the same domain", via :func:`same_failure`), and the whole search
runs under a predicate-call budget so a slow failure can't stall the
fuzzer. Minimal cases are persisted as JSON by :func:`write_reproducer`
into ``tests/corpus/``, where the replay suite promotes every past
failure into a permanent regression test.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Callable, Iterator

from repro.validation.generators import PAGES_PER_REGION, FuzzCase

#: JSON schema tag stamped into every corpus file.
CORPUS_SCHEMA = "repro.validation/corpus-v1"

#: Repository-canonical corpus location (relative to the repo root).
DEFAULT_CORPUS_DIR = Path("tests") / "corpus"


class _Budget:
    """Counts predicate calls; the search stops when exhausted."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    @property
    def exhausted(self) -> bool:
        return self.used >= self.limit

    def spend(self) -> bool:
        """Consume one call if available."""
        if self.exhausted:
            return False
        self.used += 1
        return True


def _clone(case: FuzzCase, **changes) -> FuzzCase:
    """Copy with deep-copied mutable fields, then apply ``changes``."""
    fresh = replace(
        case,
        threads=[list(t) for t in case.threads],
        static_regions=list(case.static_regions),
        tlb_geometry={
            name: list(geometry)
            for name, geometry in case.tlb_geometry.items()
        },
    )
    for name, value in changes.items():
        setattr(fresh, name, value)
    return fresh


def _try(
    candidate: FuzzCase,
    predicate: Callable[[FuzzCase], bool],
    budget: _Budget,
) -> bool:
    """Whether ``candidate`` still fails (False once budget is gone)."""
    if not budget.spend():
        return False
    try:
        return bool(predicate(candidate))
    except Exception:
        # A candidate that crashes the predicate itself is not a
        # reproducer of the original failure; discard it.
        return False


def _drop_threads(
    case: FuzzCase, predicate, budget: _Budget
) -> FuzzCase:
    """Stage 1: remove whole threads while the failure survives."""
    changed = True
    while changed and len(case.threads) > 1 and not budget.exhausted:
        changed = False
        for i in range(len(case.threads)):
            threads = [t for j, t in enumerate(case.threads) if j != i]
            candidate = _clone(case, threads=threads)
            if _try(candidate, predicate, budget):
                case = candidate
                changed = True
                break
    return case


def _ddmin_stream(
    case: FuzzCase, thread: int, predicate, budget: _Budget
) -> FuzzCase:
    """Stage 2: delta-debug one thread's access list."""
    stream = case.threads[thread]
    chunk = max(1, len(stream) // 2)
    while chunk >= 1 and not budget.exhausted:
        start = 0
        while start < len(stream) and not budget.exhausted:
            trimmed = stream[:start] + stream[start + chunk :]
            if not trimmed and len(case.threads) == 1:
                # An empty single-thread case runs nothing; pointless.
                start += chunk
                continue
            threads = [list(t) for t in case.threads]
            threads[thread] = trimmed
            candidate = _clone(case, threads=threads)
            if _try(candidate, predicate, budget):
                case = candidate
                stream = trimmed
                # Do not advance: the next chunk shifted into place.
            else:
                start += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return case


def _window_for(case: FuzzCase) -> int:
    """Smallest region-aligned window covering the case's pages."""
    top = max((p for t in case.threads for p in t), default=0)
    regions = top // PAGES_PER_REGION + 1
    return max(PAGES_PER_REGION, regions * PAGES_PER_REGION)


def _simplify_knobs(
    case: FuzzCase, predicate, budget: _Budget
) -> FuzzCase:
    """Stage 3: push each knob to its most boring value."""
    attempts: list[dict] = [
        {"demotion": False},
        {"fragmentation": 0.0},
        {"pcc_dump_mode": "flush"},
        {"pcc_replacement": "lfu"},
        {"tlb_replacement": "lru"},
        {"tlb_geometry": {}},
        {"static_regions": []},
        {"pcc_counter_bits": 8},
        {"pcc_entries": 4},
        {"regions_to_promote": 1},
        {"promote_every": 32},
        {"window_pages": _window_for(case)},
    ]
    for change in attempts:
        if budget.exhausted:
            break
        name, value = next(iter(change.items()))
        if getattr(case, name) == value:
            continue
        candidate = _clone(case, **change)
        if _try(candidate, predicate, budget):
            case = candidate
    return case


def shrink_case(
    case: FuzzCase,
    predicate: Callable[[FuzzCase], bool],
    budget: int = 500,
) -> FuzzCase:
    """Minimize ``case`` while ``predicate`` keeps returning True.

    ``predicate(candidate)`` must return True when the candidate still
    exhibits the original failure. The input case is never mutated; the
    returned case is the smallest failing variant found within
    ``budget`` predicate calls (the original case if nothing smaller
    still fails).
    """
    tracker = _Budget(budget)
    if not _try(case, predicate, tracker):
        # Not reproducible — flaky or environment-dependent; nothing
        # sound to shrink against.
        return case
    case = _drop_threads(case, predicate, tracker)
    for thread in range(len(case.threads)):
        case = _ddmin_stream(case, thread, predicate, tracker)
    case = _simplify_knobs(case, predicate, tracker)
    case = _clone(case, label=f"shrunk from seed {case.seed}")
    return case


def same_failure(
    check: Callable[[FuzzCase], object], domain: str
) -> Callable[[FuzzCase], bool]:
    """Predicate: ``check`` raises a failure in ``domain`` (or deeper).

    Matching on the domain prefix rather than the full detail keeps the
    shrinker from chasing a *different* bug mid-reduction while still
    allowing the detail text to change as the case gets smaller.
    """
    from repro.validation.oracle import ValidationFailure

    def predicate(candidate: FuzzCase) -> bool:
        try:
            check(candidate)
        except ValidationFailure as failure:
            return failure.domain == domain or failure.domain.startswith(
                domain + "."
            )
        except AssertionError:
            return False
        return False

    return predicate


# ----------------------------------------------------------------------
# corpus persistence


def write_reproducer(
    case: FuzzCase,
    failure: "Exception | None",
    directory: Path | str = DEFAULT_CORPUS_DIR,
) -> Path:
    """Persist a shrunk case (plus what it broke) as a corpus file."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    record = {
        "schema": CORPUS_SCHEMA,
        "case": case.to_dict(),
        "failure": {
            "domain": getattr(failure, "domain", None),
            "detail": getattr(failure, "detail", str(failure or "")),
        },
    }
    path = directory / f"case-{case.case_id}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_reproducer(path: Path | str) -> tuple[FuzzCase, dict]:
    """Load one corpus file back into a case + failure record."""
    record = json.loads(Path(path).read_text())
    if record.get("schema") != CORPUS_SCHEMA:
        raise ValueError(
            f"{path}: unknown corpus schema {record.get('schema')!r}"
        )
    return FuzzCase.from_dict(record["case"]), record.get("failure", {})


def iter_corpus(directory: Path | str = DEFAULT_CORPUS_DIR) -> Iterator[Path]:
    """Corpus files under ``directory``, in stable order."""
    directory = Path(directory)
    if not directory.is_dir():
        return iter(())
    return iter(sorted(directory.glob("case-*.json")))
