"""The differential oracle: tiers must agree, policies must obey laws.

One :class:`~repro.validation.generators.FuzzCase` is judged in three
moves:

1. **Tier equivalence** (exact). The same (config, stream) runs through
   the scalar reference (``fast_path=False, batch=False``), the
   per-record fast path, and the vectorized batch path. Every
   observable — walks, per-structure hits, cycles, promotions,
   timelines, per-process stats, and all non-fastpath metrics counters
   — must be bit-identical. Runtime invariants
   (:mod:`repro.validation.invariants`) are armed on every run.

2. **Metamorphic policy relations** (exact where defined). Relations
   that hold by construction, not by luck:

   - ``NONE`` never promotes, never demotes, never maps a huge page;
   - ``ORACLE`` with an empty static-region set is indistinguishable
     from ``NONE`` (same translations, zero promotions);
   - ``PCC`` with ``promotion_budget_regions=0`` performs the same
     translations as ``NONE`` and promotes nothing;
   - the huge-page ledger balances: promoted regions still standing at
     the end equal promotions minus demotions (2MB-only currency);
   - conservation: accesses partition into L1 hits + L2 hits + walks,
     and the promotion timeline sums to the promotion total.

3. **Determinism**: repeating the scalar run reproduces the fingerprint
   bit-for-bit — any divergence means hidden global state.

Cross-policy *performance* orderings (e.g. "IDEAL walks at most as much
as PCC") are deliberately **not** asserted: with set-associative TLBs a
promotion can create conflict misses the base-page layout avoided, so
the ordering is a strong tendency, not a law. Violations are recorded
as advisory notes on the :class:`CaseReport` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.engine.simulation import SimulationResult, Simulator
from repro.os.kernel import HugePagePolicy
from repro.validation.generators import FuzzCase
from repro.validation.invariants import InvariantViolation

#: Engine tiers under test, in trust order: scalar is the reference.
#: ``columnar`` is pinned explicitly in every entry because Simulator
#: defaults it on — the "batch" tier must stay plain per-quantum batch.
TIERS: dict[str, dict[str, bool]] = {
    "scalar": {"fast_path": False, "batch": False, "columnar": False},
    "fast": {"fast_path": True, "batch": False, "columnar": False},
    "batch": {"fast_path": True, "batch": True, "columnar": False},
    "columnar": {"fast_path": True, "batch": True, "columnar": True},
}


class ValidationFailure(AssertionError):
    """A case broke a hard relation; carries a machine-readable domain."""

    def __init__(self, domain: str, detail: str, case: FuzzCase | None = None):
        self.domain = domain
        self.detail = detail
        self.case = case
        super().__init__(f"[{domain}] {detail}")


@dataclass
class CaseReport:
    """What one passing case proved (and what it merely observed)."""

    case_id: str
    policy: str
    accesses: int
    #: hard relations that were checked and held
    checks: list[str] = field(default_factory=list)
    #: advisory observations (soft tendencies that did not hold, etc.)
    notes: list[str] = field(default_factory=list)


# ----------------------------------------------------------------------
# running


def run_case(
    case: FuzzCase,
    tier: str = "scalar",
    policy: HugePagePolicy | None = None,
    params=None,
    validate: bool = True,
) -> tuple[Simulator, SimulationResult]:
    """Run one case through one tier; returns the simulator too so
    callers can inspect end-of-run kernel state (the huge-page ledger).

    Raises :class:`~repro.validation.invariants.InvariantViolation` if a
    runtime invariant breaks mid-run.
    """
    config = case.build_config().with_(cores=case.cores)
    simulator = Simulator(
        config,
        policy=policy if policy is not None else case.huge_policy(),
        params=params if params is not None else case.build_params(),
        fragmentation=case.fragmentation,
        validate=validate,
        **TIERS[tier],
    )
    result = simulator.run([case.build_workload()])
    return simulator, result


def fingerprint(result: SimulationResult) -> dict:
    """Every observable statistic of a run, for exact comparison."""
    return {
        "policy": result.policy,
        "total_cycles": result.total_cycles,
        "accesses": result.accesses,
        "walks": result.walks,
        "l1_hits": result.l1_hits,
        "l2_hits": result.l2_hits,
        "promotions": result.promotions,
        "demotions": result.demotions,
        "promotion_timeline": result.promotion_timeline,
        "huge_page_timeline": result.huge_page_timeline,
        "per_core": result.per_core,
        "processes": [
            (p.pid, p.name, p.accesses, p.walks, p.huge_pages,
             p.footprint_regions)
            for p in result.processes
        ],
    }


def translation_fingerprint(result: SimulationResult) -> dict:
    """The translation-visible subset, ignoring the policy label.

    Used for cross-policy identities (ORACLE(∅) ≡ NONE) where the
    policy name and policy-bookkeeping metrics legitimately differ but
    every translation outcome must match.
    """
    fp = fingerprint(result)
    del fp["policy"]
    return fp


def _counters(result: SimulationResult) -> dict:
    """Metrics counters minus the fast path's own instrumentation."""
    return {
        name: value
        for name, value in (result.metrics or {}).get("counters", {}).items()
        if ".fastpath." not in name
    }


def _first_diff(a: dict, b: dict) -> str:
    """Human-readable first difference between two fingerprints."""
    for key in a:
        if key not in b:
            return f"field {key!r} missing from comparison run"
        if a[key] != b[key]:
            return f"field {key!r}: {a[key]!r} != {b[key]!r}"
    extra = set(b) - set(a)
    if extra:
        return f"unexpected fields {sorted(extra)}"
    return "no difference (comparison bug)"


# ----------------------------------------------------------------------
# checks


def check_tiers(
    case: FuzzCase, report: CaseReport
) -> tuple[Simulator, SimulationResult]:
    """All four engine tiers must be bit-identical on this case."""
    simulator, reference = run_case(case, tier="scalar")
    ref_fp = fingerprint(reference)
    ref_counters = _counters(reference)
    for tier in ("fast", "batch", "columnar"):
        _, candidate = run_case(case, tier=tier)
        fp = fingerprint(candidate)
        if fp != ref_fp:
            raise ValidationFailure(
                f"tier.{tier}",
                f"{tier} tier diverges from scalar reference: "
                f"{_first_diff(ref_fp, fp)}",
                case,
            )
        counters = _counters(candidate)
        if counters != ref_counters:
            raise ValidationFailure(
                f"tier.{tier}.metrics",
                f"{tier} tier metrics diverge: "
                f"{_first_diff(ref_counters, counters)}",
                case,
            )
        report.checks.append(f"tier:{tier}")
    return simulator, reference


def check_determinism(case: FuzzCase, reference: SimulationResult,
                      report: CaseReport) -> None:
    """Re-running the reference must reproduce it bit-for-bit."""
    _, again = run_case(case, tier="scalar")
    if fingerprint(again) != fingerprint(reference):
        raise ValidationFailure(
            "determinism",
            "two scalar runs of the same case disagree: "
            f"{_first_diff(fingerprint(reference), fingerprint(again))}",
            case,
        )
    report.checks.append("determinism")


def check_conservation(case: FuzzCase, result: SimulationResult,
                       report: CaseReport) -> None:
    """Counting laws every run must satisfy, whatever the policy."""
    if result.accesses != result.l1_hits + result.l2_hits + result.walks:
        raise ValidationFailure(
            "conservation.accesses",
            f"accesses {result.accesses} != l1 {result.l1_hits} + "
            f"l2 {result.l2_hits} + walks {result.walks}",
            case,
        )
    timeline = sum(n for _, n in result.promotion_timeline)
    if timeline != result.promotions:
        raise ValidationFailure(
            "conservation.timeline",
            f"promotion timeline sums to {timeline}, "
            f"result counted {result.promotions}",
            case,
        )
    if result.accesses != sum(len(t) for t in case.threads):
        raise ValidationFailure(
            "conservation.stream",
            f"run consumed {result.accesses} accesses, "
            f"case supplies {case.total_accesses}",
            case,
        )
    report.checks.append("conservation")


def check_ledger(case: FuzzCase, simulator: Simulator,
                 result: SimulationResult, report: CaseReport) -> None:
    """Standing promoted regions must balance the promotion ledger.

    Tick-driven policies (NONE, PCC, HAWKEYE) create 2MB mappings only
    through counted promotions, so ``standing == promotions -
    demotions`` exactly. Greedy/static policies (LINUX_THP, IDEAL,
    ORACLE) also map huge pages at fault time without counting a
    promotion, so only the inequality ``standing >= promotions -
    demotions`` is a law for them.
    """
    standing = sum(
        len(process.page_table.promoted_regions())
        for process in simulator.kernel.processes.values()
    )
    balance = result.promotions - result.demotions
    exact = case.huge_policy() in (
        HugePagePolicy.NONE,
        HugePagePolicy.PCC,
        HugePagePolicy.HAWKEYE,
    )
    if (standing != balance) if exact else (standing < balance):
        raise ValidationFailure(
            "ledger.huge_pages",
            f"{standing} promoted regions standing, but ledger says "
            f"{result.promotions} promotions - {result.demotions} "
            f"demotions = {balance} "
            f"({'exact' if exact else 'lower-bound'} law for "
            f"{case.policy})",
            case,
        )
    report.checks.append("ledger")


def check_policy_relations(case: FuzzCase, reference: SimulationResult,
                           report: CaseReport) -> None:
    """Policy-specific metamorphic relations."""
    policy = case.huge_policy()

    if policy is HugePagePolicy.NONE:
        if reference.promotions or reference.demotions:
            raise ValidationFailure(
                "policy.none",
                f"NONE promoted {reference.promotions} / demoted "
                f"{reference.demotions} regions",
                case,
            )
        if any(p.huge_pages for p in reference.processes):
            raise ValidationFailure(
                "policy.none",
                "NONE left huge pages mapped",
                case,
            )
        report.checks.append("policy:none-inert")
        return

    # The NONE run is the translation baseline both identities compare
    # against: same streams, no promotion ever.
    _, none_run = run_case(case, policy=HugePagePolicy.NONE)

    if policy is HugePagePolicy.ORACLE:
        empty = replace(case.build_params(), static_huge_regions=())
        _, oracle_run = run_case(
            case, policy=HugePagePolicy.ORACLE, params=empty
        )
        if translation_fingerprint(oracle_run) != translation_fingerprint(
            none_run
        ):
            raise ValidationFailure(
                "policy.oracle_empty",
                "ORACLE with no static regions differs from NONE: "
                + _first_diff(
                    translation_fingerprint(none_run),
                    translation_fingerprint(oracle_run),
                ),
                case,
            )
        report.checks.append("policy:oracle-empty≡none")

    if policy is HugePagePolicy.PCC:
        zero_budget = replace(
            case.build_params(), promotion_budget_regions=0
        )
        _, pcc_run = run_case(
            case, policy=HugePagePolicy.PCC, params=zero_budget
        )
        if pcc_run.promotions:
            raise ValidationFailure(
                "policy.pcc_budget",
                f"PCC promoted {pcc_run.promotions} regions under a "
                "zero promotion budget",
                case,
            )
        ours = translation_fingerprint(pcc_run)
        theirs = translation_fingerprint(none_run)
        # PCC runs spend cycles on dumps/ticks even when nothing is
        # promoted; the *translation* outcomes must still match.
        for fp in (ours, theirs):
            fp.pop("total_cycles", None)
            fp.pop("per_core", None)
        if ours != theirs:
            raise ValidationFailure(
                "policy.pcc_budget",
                "budget-0 PCC translates differently from NONE: "
                + _first_diff(theirs, ours),
                case,
            )
        report.checks.append("policy:pcc-budget0≡none")

    # Advisory only: promotion should not usually *hurt* walk counts,
    # but set-conflict dynamics can make it so; record, don't fail.
    if reference.walks > none_run.walks:
        report.notes.append(
            f"{case.policy} walked {reference.walks} > NONE's "
            f"{none_run.walks} (legal: promotion-induced set conflicts)"
        )


# ----------------------------------------------------------------------
# entry point


def check_case(case: FuzzCase) -> CaseReport:
    """Run every hard relation on one case.

    Returns the report on success; raises :class:`ValidationFailure`
    (or an :class:`InvariantViolation` wrapped into one) on the first
    relation that breaks.
    """
    report = CaseReport(
        case_id=case.case_id,
        policy=case.policy,
        accesses=case.total_accesses,
    )
    try:
        simulator, reference = check_tiers(case, report)
        check_determinism(case, reference, report)
        check_conservation(case, reference, report)
        check_ledger(case, simulator, reference, report)
        check_policy_relations(case, reference, report)
    except InvariantViolation as violation:
        raise ValidationFailure(
            f"invariant.{violation.domain}", violation.detail, case
        ) from violation
    report.checks.append("invariants")
    return report
