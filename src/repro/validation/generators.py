"""Seeded random cases for the differential-oracle fuzzer.

A :class:`FuzzCase` is one self-contained test input: a miniature
system configuration (tiny-TLB geometry with randomized OS/PCC knobs)
plus per-thread synthetic page streams. Cases are **plain data** —
lists of page indexes and scalar knobs — so they serialize to JSON for
the regression corpus and shrink structurally (drop a thread, drop a
span of accesses, simplify a knob) without re-deriving anything.

Streams are composed from the same primitives the workload proxies use
(:mod:`repro.trace.synthesis`): sequential sweeps for spatial locality,
Zipf bursts for hot-region reuse, uniform tails for fragmentation-like
scatter, and segments replayed across threads for sharing. All
randomness flows through the case seed, so ``generate_case(seed)`` is a
pure function.

1GB (giga) promotion stays disabled in generated cases: the oracle's
huge-page ledger relation (``promoted regions == promotions -
demotions``) is only exact while 2MB regions are the sole promotion
currency.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.config import OSConfig, PCCConfig, SystemConfig, tiny_config
from repro.engine.system import ProcessWorkload
from repro.os.kernel import HugePagePolicy, KernelParams
from repro.trace import synthesis
from repro.trace.events import Trace
from repro.vm.address import BASE_PAGE_SHIFT, HUGE_PAGE_SHIFT
from repro.vm.layout import DEFAULT_HEAP_BASE, AddressSpaceLayout

#: Every fuzz stream lives in one VMA at the canonical heap base.
WINDOW_BASE = DEFAULT_HEAP_BASE

#: 4KB pages per 2MB region.
PAGES_PER_REGION = 1 << (HUGE_PAGE_SHIFT - BASE_PAGE_SHIFT)

#: Policies the fuzzer draws from, weighted toward PCC (the richest
#: machinery: PCC structures, dump/flush, promotion, demotion).
_POLICY_CHOICES = (
    "PCC",
    "PCC",
    "PCC",
    "LINUX_THP",
    "HAWKEYE",
    "ORACLE",
    "IDEAL",
    "NONE",
)


@dataclass
class FuzzCase:
    """One generated (configuration, stream) pair, JSON-serializable."""

    seed: int
    policy: str = "PCC"
    fragmentation: float = 0.0
    promote_every: int = 64
    regions_to_promote: int = 4
    pcc_entries: int = 4
    pcc_counter_bits: int = 8
    pcc_replacement: str = "lfu"
    pcc_dump_mode: str = "flush"
    demotion: bool = False
    #: TLB replacement policy for every hierarchy structure
    #: ("lru" or "plru"); omitted from the JSON form at the default so
    #: every historical case keeps its content hash
    tlb_replacement: str = "lru"
    #: TLB geometry overrides: structure name ("l1_base", "l1_huge",
    #: "l1_giga", "l2") -> [entries, associativity]; empty means the
    #: tiny-config default grid (and is omitted from the JSON form)
    tlb_geometry: dict = field(default_factory=dict)
    #: pages in the single VMA window (multiple 2MB regions)
    window_pages: int = 1024
    #: window-relative 2MB region indexes preselected for ORACLE runs
    static_regions: list[int] = field(default_factory=list)
    #: per-thread streams of window-relative 4KB page indexes
    threads: list[list[int]] = field(default_factory=list)
    #: free-form provenance note ("fuzz", "shrunk from ...", defect name)
    label: str = ""

    # ------------------------------------------------------------------

    @property
    def total_accesses(self) -> int:
        """Accesses across every thread."""
        return sum(len(t) for t in self.threads)

    @property
    def case_id(self) -> str:
        """Short stable content hash naming the case."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:12]

    def to_dict(self) -> dict:
        """Plain-data form for JSON round-tripping.

        The TLB knobs are dropped at their defaults so every case
        minted before they existed serializes — and hashes — exactly
        as it always did (``case_id`` is a content hash).
        """
        data = asdict(self)
        if data["tlb_replacement"] == "lru":
            del data["tlb_replacement"]
        if not data["tlb_geometry"]:
            del data["tlb_geometry"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        """Rebuild a case from :meth:`to_dict` output."""
        case = cls(**data)
        case.threads = [[int(p) for p in t] for t in case.threads]
        case.static_regions = [int(r) for r in case.static_regions]
        case.tlb_geometry = {
            name: [int(v) for v in geometry]
            for name, geometry in case.tlb_geometry.items()
        }
        return case

    def describe(self) -> str:
        """One-line human summary for fuzzer progress output."""
        return (
            f"case {self.case_id} seed={self.seed} policy={self.policy} "
            f"threads={len(self.threads)} accesses={self.total_accesses} "
            f"window={self.window_pages}p promote_every={self.promote_every}"
        )

    # ------------------------------------------------------------------
    # realization

    def huge_policy(self) -> HugePagePolicy:
        """The case's policy as the kernel enum."""
        return HugePagePolicy[self.policy]

    def build_config(self) -> SystemConfig:
        """Tiny-geometry system configuration with this case's knobs."""
        base = tiny_config()
        tlb = base.tlb
        if self.tlb_geometry:
            structure_overrides = {}
            for name in ("l1_base", "l1_huge", "l1_giga", "l2"):
                if name in self.tlb_geometry:
                    entries, associativity = self.tlb_geometry[name]
                    structure_overrides[name] = replace(
                        getattr(tlb, name),
                        entries=int(entries),
                        associativity=int(associativity),
                    )
            tlb = replace(tlb, **structure_overrides)
        if self.tlb_replacement != "lru":
            tlb = tlb.with_replacement(self.tlb_replacement)
        return base.with_(
            tlb=tlb,
            pcc=PCCConfig(
                entries=self.pcc_entries,
                counter_bits=self.pcc_counter_bits,
                giga_entries=2,
                replacement=self.pcc_replacement,
            ),
            os=OSConfig(
                promote_every_accesses=self.promote_every,
                regions_to_promote=self.regions_to_promote,
                demotion_enabled=self.demotion,
                scan_pages_per_interval=max(
                    PAGES_PER_REGION, self.window_pages // 2
                ),
            ),
        )

    def build_params(self) -> KernelParams:
        """Kernel parameters matching the configuration knobs."""
        region_base = WINDOW_BASE >> HUGE_PAGE_SHIFT
        return KernelParams(
            regions_to_promote=self.regions_to_promote,
            demotion_enabled=self.demotion,
            pcc_dump_mode=self.pcc_dump_mode,
            static_huge_regions=tuple(
                region_base + r for r in self.static_regions
            ),
        )

    def build_workload(self) -> ProcessWorkload:
        """Fresh process workload for one run.

        Built anew on every call: runs bind threads to cores and the
        engine mutates nothing in the case itself, but sharing one
        workload object between differential runs would let any future
        in-place mutation silently couple them.
        """
        layout = AddressSpaceLayout.from_vmas(
            {"fuzz": (WINDOW_BASE, self.window_pages << BASE_PAGE_SHIFT)}
        )
        traces = []
        for i, pages in enumerate(self.threads):
            offsets = np.asarray(pages, dtype=np.uint64) << np.uint64(
                BASE_PAGE_SHIFT
            )
            addresses = np.uint64(WINDOW_BASE) + offsets
            traces.append(
                Trace(
                    name=f"fuzz-{self.case_id}.t{i}",
                    addresses=addresses,
                    footprint_bytes=self.window_pages << BASE_PAGE_SHIFT,
                )
            )
        if len(traces) == 1:
            return ProcessWorkload.single_thread(
                traces[0], layout, name=f"fuzz-{self.case_id}"
            )
        return ProcessWorkload.multi_thread(
            traces, layout, name=f"fuzz-{self.case_id}"
        )

    @property
    def cores(self) -> int:
        """One core per thread (static pinning, like the experiments)."""
        return max(1, len(self.threads))


# ----------------------------------------------------------------------
# generation


def _segment_pages(
    rng: random.Random, np_rng: np.random.Generator, window_pages: int
) -> list[int]:
    """One stream segment: a locality motif over the window."""
    window = (0, window_pages << BASE_PAGE_SHIFT)
    kind = rng.choice(("sweep", "zipf", "uniform", "dwell"))
    if kind == "sweep":
        # Contiguous scan of a random sub-span: spatial locality that
        # builds dense regions the promotion policies should pick.
        count = rng.randrange(40, 200)
        span = rng.randrange(8, max(9, window_pages // 2))
        start = rng.randrange(0, max(1, window_pages - span))
        sub = (start << BASE_PAGE_SHIFT, span << BASE_PAGE_SHIFT)
        addrs = synthesis.sequential(sub, count, stride=1 << BASE_PAGE_SHIFT)
        return (np.asarray(addrs) >> np.uint64(BASE_PAGE_SHIFT)).astype(int).tolist()
    if kind == "zipf":
        # Hot-region reuse: most accesses land on a few pages.
        count = rng.randrange(40, 250)
        addrs = synthesis.zipf_random(
            window,
            count,
            np_rng,
            exponent=rng.uniform(1.05, 1.6),
            granularity=1 << BASE_PAGE_SHIFT,
            hot_fraction=rng.uniform(0.05, 0.5),
        )
        return (np.asarray(addrs) >> np.uint64(BASE_PAGE_SHIFT)).astype(int).tolist()
    if kind == "uniform":
        # Scatter: TLB-hostile, exercises eviction and PCC churn.
        count = rng.randrange(20, 120)
        addrs = synthesis.uniform_random(
            window, count, np_rng, granularity=1 << BASE_PAGE_SHIFT
        )
        return (np.asarray(addrs) >> np.uint64(BASE_PAGE_SHIFT)).astype(int).tolist()
    # dwell: hammer a handful of pages — drives PCC counters toward
    # saturation (decay paths) and fast-path tier-1 hint hits.
    pages = [rng.randrange(0, window_pages) for _ in range(rng.randrange(1, 4))]
    count = rng.randrange(60, 300)
    return [pages[i % len(pages)] for i in range(count)]


def _thread_stream(
    rng: random.Random,
    np_rng: np.random.Generator,
    window_pages: int,
    shared_segment: list[int],
) -> list[int]:
    """Compose one thread's stream from a few motifs."""
    stream: list[int] = []
    segments = rng.randrange(2, 5)
    for _ in range(segments):
        stream.extend(_segment_pages(rng, np_rng, window_pages))
    if shared_segment and rng.random() < 0.6:
        # Sharing knob: replay a segment other threads also run, so
        # multithread runs contend on the same regions.
        at = rng.randrange(0, len(stream) + 1)
        stream[at:at] = shared_segment
    if len(stream) > 1 and rng.random() < 0.4:
        # Revisit: replay an earlier span, reinforcing temporal reuse.
        span = rng.randrange(1, min(80, len(stream)))
        at = rng.randrange(0, len(stream) - span + 1)
        stream.extend(stream[at : at + span])
    return [int(p) % window_pages for p in stream]


def generate_case(
    seed: int,
    min_threads: int = 1,
    *,
    tlb_replacement: str | None = None,
    tlb_geometry: dict | None = None,
) -> FuzzCase:
    """Deterministically derive one fuzz case from ``seed``.

    ``min_threads`` raises the thread count floor (the multi-thread
    epoch sweeps pin it to 2+). ``tlb_replacement`` and
    ``tlb_geometry`` let harnesses (the replacement-policy sweeps and
    the reference-oracle cross-check) pin the TLB knobs the case runs
    under; earlier versions silently ignored geometry overrides, so
    way/set counts only ever came from the default grid. All overrides
    are applied after every random draw, so the defaults keep every
    historical seed's case byte-identical.
    """
    rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)

    window_pages = rng.choice((256, 512, 1024, 2048, 4096))
    nthreads = max(rng.choice((1, 1, 2)), min_threads)
    shared: list[int] = []
    if nthreads > 1:
        shared = _segment_pages(rng, np_rng, window_pages)

    case = FuzzCase(
        seed=seed,
        policy=rng.choice(_POLICY_CHOICES),
        fragmentation=rng.choice((0.0, 0.0, 0.5, 0.9)),
        promote_every=rng.choice((32, 64, 128, 256, 512)),
        regions_to_promote=rng.randrange(1, 8),
        pcc_entries=rng.choice((4, 8, 16)),
        # Small counters saturate under the dwell motif, exercising the
        # PCC's decay-on-saturation path.
        pcc_counter_bits=rng.choice((2, 3, 4, 8)),
        pcc_replacement=rng.choice(("lfu", "lru")),
        pcc_dump_mode=rng.choice(("flush", "flush", "snapshot")),
        demotion=rng.random() < 0.3,
        window_pages=window_pages,
        threads=[
            _thread_stream(rng, np_rng, window_pages, shared)
            for _ in range(nthreads)
        ],
        label="fuzz",
    )
    nregions = max(1, window_pages // PAGES_PER_REGION)
    # ORACLE needs preselected regions to do anything; give every case
    # a plausible static set so policy flips during shrinking stay
    # meaningful.
    picks = rng.randrange(0, nregions + 1)
    case.static_regions = sorted(rng.sample(range(nregions), picks))
    if tlb_replacement is not None:
        case.tlb_replacement = tlb_replacement
    if tlb_geometry is not None:
        case.tlb_geometry = {
            name: [int(v) for v in geometry]
            for name, geometry in tlb_geometry.items()
        }
    return case
