"""Deliberately broken engine/OS variants — the harness's self-test.

A validation subsystem that has never caught a bug proves nothing. Each
defect here is a named, reversible monkeypatch that disables one
correctness mechanism the oracle and invariants are supposed to defend:

- ``stale-hints`` — the fast path's MRU-hint memo is never invalidated
  after OS ticks mutate TLB state, so the fast/batch tiers serve
  translations from entries that shootdowns have removed;
- ``pcc-no-decay`` — the PCC's decay-on-saturation pass is disabled,
  letting frequency counters climb past the architectural
  ``counter_max``;
- ``region-count-drift`` — the page table's per-region base-page
  counter is double-incremented on fault, drifting away from the PTE
  population it summarizes;
- ``tlb-plru-drift`` — tree-PLRU victim selection descends the wrong
  root subtree, evicting a recently-used way. Every engine tier shares
  the drifted policy, so tier-vs-tier comparison stays green; only the
  independent reference oracle (``repro.validation.reference``) can
  catch it, which is exactly what it exists to prove.

The test suite (and ``repro validate --inject-defect``) asserts that
each injection is *caught* — by tier divergence or an invariant — and
that the failing case then shrinks to a small corpus reproducer. The
patches are process-global while active: inject around whole
validation runs, never concurrently.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator


@contextlib.contextmanager
def stale_hints() -> Iterator[None]:
    """Disable fast-path hint invalidation after TLB mutations."""
    from repro.engine.machine import TranslationPipeline

    original = TranslationPipeline.invalidate_hints
    TranslationPipeline.invalidate_hints = lambda self: None
    try:
        yield
    finally:
        TranslationPipeline.invalidate_hints = original


@contextlib.contextmanager
def pcc_no_decay() -> Iterator[None]:
    """Disable the PCC's frequency decay on counter saturation."""
    from repro.core.pcc import PromotionCandidateCache

    original = PromotionCandidateCache._decay
    PromotionCandidateCache._decay = lambda self: None
    try:
        yield
    finally:
        PromotionCandidateCache._decay = original


@contextlib.contextmanager
def region_count_drift() -> Iterator[None]:
    """Make the page table's per-region base-page count drift high."""
    from repro.vm.address import huge_prefix
    from repro.vm.pagetable import PageTable

    original = PageTable.map_base

    def drifting_map_base(self, vaddr: int, frame: int) -> None:
        original(self, vaddr, frame)
        prefix = huge_prefix(vaddr)
        self._base_count[prefix] = self._base_count.get(prefix, 0) + 1

    PageTable.map_base = drifting_map_base
    try:
        yield
    finally:
        PageTable.map_base = original


@contextlib.contextmanager
def tlb_plru_drift() -> Iterator[None]:
    """Make tree-PLRU victim selection descend the wrong root subtree.

    Flips the root direction bit before consulting the tree, so a full
    set evicts from the recently-used half. The production ``TLB``
    calls ``plru.victim`` through the module attribute precisely so
    this patch intercepts every structure at once; with all four tiers
    drifting together, the tier oracle is blind and only the reference
    cross-check's victim comparison trips. Inert under LRU (the tree is
    never consulted) and at 1-way sets (no subtree to get wrong).
    """
    from repro.tlb import plru

    original = plru.victim

    def drifted_victim(bits: int, ways: int) -> int:
        if ways > 1:
            bits ^= 1 << 1  # invert the root's left/right decision
        return original(bits, ways)

    plru.victim = drifted_victim
    try:
        yield
    finally:
        plru.victim = original


#: name -> context manager installing the defect for the duration
DEFECTS: dict[str, Callable[[], contextlib.AbstractContextManager]] = {
    "stale-hints": stale_hints,
    "pcc-no-decay": pcc_no_decay,
    "region-count-drift": region_count_drift,
    "tlb-plru-drift": tlb_plru_drift,
}


@contextlib.contextmanager
def inject(name: str) -> Iterator[None]:
    """Install defect ``name`` for the duration of the block."""
    try:
        defect = DEFECTS[name]
    except KeyError:
        raise ValueError(
            f"unknown defect {name!r}; available: {sorted(DEFECTS)}"
        ) from None
    with defect():
        yield
