"""Runtime invariant checkers for the simulation engine.

An :class:`InvariantMonitor` attaches to a
:class:`~repro.engine.machine.Machine` built with ``validate=True`` and
re-verifies, immediately before and after every OS promotion tick
(including the trailing final tick), the structural laws the engine's
correctness argument rests on:

- **TLB legality** — no set holds more entries than its ways, and every
  resident entry's stored page-size shift is one the structure serves;
- **fast-path hint legality** — a non-empty per-set MRU hint must name
  the entry currently at the MRU position of its live set (a stale hint
  is exactly the bug class the epoch invalidation protocol exists to
  prevent);
- **PCC counter laws** — frequencies stay within the saturating-counter
  range (the halve-all decay law), occupancy never exceeds capacity,
  and the per-set fill bookkeeping matches the entries actually stored;
- **page-table region-count consistency** — the O(1)
  ``region_base_pages`` counters agree with a full recount of the PTE
  dictionary, promoted regions hold no base pages, and no mapping is
  doubly backed across granularities;
- **statistics conservation** — every access is exactly one of an L1
  hit, an L2 hit, or a walk, per core and across the TLB structure
  counters.

The checks walk structures whose sizes are bounded by hardware
capacities (TLB entries, PCC entries) or by the touched footprint
(PTEs), so a tick-granularity cadence keeps the overhead low while
catching violations within one promotion interval of their cause.
When ``validate`` is off the engine pays two ``is not None`` tests per
tick and nothing else.

Violations raise :class:`InvariantViolation` naming the structure, the
core/process, and the law that broke.
"""

from __future__ import annotations

from collections import Counter

from repro.vm.address import (
    BASE_PAGE_SHIFT,
    GIGA_PAGE_SHIFT,
    HUGE_PAGE_SHIFT,
    PageSize,
)

#: 4KB VPN -> 2MB region tag / 2MB tag -> 1GB tag shifts
_HUGE_SHIFT = HUGE_PAGE_SHIFT - BASE_PAGE_SHIFT
_GIGA_SHIFT = GIGA_PAGE_SHIFT - HUGE_PAGE_SHIFT


class InvariantViolation(AssertionError):
    """A semantic invariant of the simulated machine does not hold."""

    def __init__(self, domain: str, detail: str) -> None:
        self.domain = domain
        self.detail = detail
        super().__init__(f"[{domain}] {detail}")


def _fail(domain: str, detail: str) -> None:
    raise InvariantViolation(domain, detail)


#: page-size shifts a TLB structure may store, by what it serves
_VALID_SHIFTS = {int(size.value) for size in PageSize}


class InvariantMonitor:
    """Re-verifies engine/OS invariants at promotion-tick granularity."""

    def __init__(self, machine) -> None:
        self.machine = machine
        #: ticks (plus the final check) this monitor has verified
        self.checks = 0

    # ------------------------------------------------------------------
    # hook points (called by Machine.run)

    def before_tick(self) -> None:
        """Structural sweep right before a promotion tick runs.

        The tick itself destroys evidence: a promotion collapses the
        region's base PTEs (wiping a drifted ``region_base_pages``
        counter along with the PTEs it summarizes) and a ``flush``-mode
        PCC dump clears the very counters whose saturation law is under
        test. Checking after the pipelines sync but before the OS acts
        catches those violations while the broken state is still live.
        Tick-driver accounting is skipped here — the driver's ledgers
        are only consistent *after* the tick they describe.
        """
        self.check_all()

    def after_tick(self, ticks) -> None:
        """Full invariant sweep after one OS promotion tick."""
        self.check_all(ticks)

    def after_run(self, ticks) -> None:
        """Final sweep after the trailing tick, before result collection."""
        self.check_all(ticks)

    def check_all(self, ticks=None) -> None:
        """Run every checker; raises on the first violation."""
        self.checks += 1
        for core in self.machine.cores:
            self.check_tlb(core)
            self.check_pcc(core)
            self.check_stats(core)
        for pipeline in self.machine.pipelines:
            self.check_hints(pipeline)
        for pid, process in self.machine.kernel.processes.items():
            self.check_page_table(pid, process.page_table)
        if ticks is not None:
            self.check_tick_accounting(ticks)

    # ------------------------------------------------------------------
    # TLB structures

    def check_tlb(self, core) -> None:
        """Set occupancy bounds and entry legality for every structure."""
        tlb = core.tlb
        for structure in (tlb.l1_base, tlb.l1_huge, tlb.l1_giga, tlb.l2):
            ways = structure.config.ways
            served = {int(size.value) for size in structure.config.page_sizes}
            for index, entries in enumerate(structure.sets):
                if len(entries) > ways:
                    _fail(
                        "tlb.occupancy",
                        f"core {core.core_id} {structure.name} set {index} "
                        f"holds {len(entries)} entries > {ways} ways",
                    )
                for tag, shift in entries.items():
                    if shift not in _VALID_SHIFTS:
                        _fail(
                            "tlb.entry",
                            f"core {core.core_id} {structure.name} tag "
                            f"{tag:#x} stores invalid page shift {shift}",
                        )
                    if shift not in served:
                        _fail(
                            "tlb.entry",
                            f"core {core.core_id} {structure.name} tag "
                            f"{tag:#x} stores shift {shift} the structure "
                            f"does not serve ({sorted(served)})",
                        )
            occupancy = structure.occupancy()
            if occupancy > structure.config.entries:
                _fail(
                    "tlb.occupancy",
                    f"core {core.core_id} {structure.name} resident "
                    f"{occupancy} > {structure.config.entries} entries",
                )

    # ------------------------------------------------------------------
    # translation fast-path hints

    def check_hints(self, pipeline) -> None:
        """A live MRU hint must name its set's actual MRU entry.

        This is the exactness contract of the memoized fast path (see
        the :mod:`repro.engine.machine` docstring): tier 1 answers from
        the hint without touching the set, which is only legal while
        the hint is the tag most recently made MRU in that set. Epoch
        invalidation resets hints to -1; anything else must keep them
        exact. Under LRU "most recently made MRU" is the last key of
        the insertion-ordered set dict; under tree-PLRU the dict order
        is meaningless, so the check becomes touch idempotence — the
        hint's way must already be marked most-recently-used, i.e.
        re-touching it must leave the direction bits unchanged (the
        exact property tier 1 relies on to skip the re-touch).
        """
        from repro.tlb import plru

        core_id = pipeline.core.core_id
        tlb = pipeline.core.tlb
        for label, hints, structure in (
            ("L1-4K", pipeline._base_mru, tlb.l1_base),
            ("L1-2M", pipeline._huge_mru, tlb.l1_huge),
        ):
            sets = structure.sets
            is_plru = structure.config.replacement == "plru"
            ways = structure.config.ways
            for index, hint in enumerate(hints):
                if hint == -1:
                    continue
                entries = sets[index]
                if hint not in entries:
                    _fail(
                        "fastpath.hint",
                        f"core {core_id} {label} set {index} hint "
                        f"{hint:#x} names an entry not resident (stale "
                        f"hint survived a shootdown?)",
                    )
                if is_plru:
                    bits, way_tags = structure.plru_state(index)
                    way = way_tags.index(hint)
                    if plru.touch(bits, ways, way) != bits:
                        _fail(
                            "fastpath.hint",
                            f"core {core_id} {label} set {index} hint "
                            f"{hint:#x} (way {way}) is not the tree's "
                            f"most-recently-touched way (bits {bits:#x})",
                        )
                    continue
                mru = next(reversed(entries))
                if mru != hint:
                    _fail(
                        "fastpath.hint",
                        f"core {core_id} {label} set {index} hint "
                        f"{hint:#x} is not the MRU entry ({mru:#x})",
                    )

    # ------------------------------------------------------------------
    # PCC counter laws

    def check_pcc(self, core) -> None:
        structures = [("pcc", core.pcc)]
        if core.pcc_1gb is not None:
            structures.append(("pcc_1gb", core.pcc_1gb))
        for label, pcc in structures:
            counter_max = pcc.config.counter_max
            if len(pcc) > pcc.capacity:
                _fail(
                    "pcc.capacity",
                    f"core {core.core_id} {label} holds {len(pcc)} "
                    f"entries > capacity {pcc.capacity}",
                )
            fill = Counter()
            for tag, entry in pcc._entries.items():
                if entry.tag != tag:
                    _fail(
                        "pcc.entry",
                        f"core {core.core_id} {label} key {tag:#x} maps "
                        f"to entry tagged {entry.tag:#x}",
                    )
                if not 0 <= entry.frequency <= counter_max:
                    _fail(
                        "pcc.counter",
                        f"core {core.core_id} {label} tag {tag:#x} "
                        f"frequency {entry.frequency} outside "
                        f"[0, {counter_max}] (saturation/decay law broken)",
                    )
                if entry.last_use > pcc._tick:
                    _fail(
                        "pcc.lru",
                        f"core {core.core_id} {label} tag {tag:#x} "
                        f"last_use {entry.last_use} is in the future "
                        f"(tick {pcc._tick})",
                    )
                fill[tag % pcc._sets] += 1
            for set_index, count in fill.items():
                if count > pcc._ways:
                    _fail(
                        "pcc.associativity",
                        f"core {core.core_id} {label} set {set_index} "
                        f"holds {count} entries > {pcc._ways} ways "
                        f"(eviction skipped a full set)",
                    )
            recorded = {s: n for s, n in pcc._set_fill.items() if n}
            if recorded != dict(fill):
                _fail(
                    "pcc.bookkeeping",
                    f"core {core.core_id} {label} set-fill record "
                    f"{recorded} disagrees with entries {dict(fill)}",
                )

    # ------------------------------------------------------------------
    # page tables

    def check_page_table(self, pid: int, table) -> None:
        """O(1) region counters must agree with a full PTE recount."""
        recount = Counter()
        for page in table._ptes:
            recount[page >> _HUGE_SHIFT] += 1
        stored = {p: n for p, n in table._base_count.items() if n}
        if stored != dict(recount):
            drift = {
                prefix: (stored.get(prefix, 0), recount.get(prefix, 0))
                for prefix in set(stored) | set(recount)
                if stored.get(prefix, 0) != recount.get(prefix, 0)
            }
            _fail(
                "pagetable.region_count",
                f"pid {pid}: region_base_pages counters drifted from the "
                f"PTE dict at regions {{prefix: (counter, actual)}} = "
                f"{ {hex(k): v for k, v in sorted(drift.items())} }",
            )
        for prefix in table.promoted_regions():
            if recount.get(prefix):
                _fail(
                    "pagetable.double_backing",
                    f"pid {pid}: promoted 2MB region {prefix:#x} still "
                    f"holds {recount[prefix]} base PTEs",
                )
            if table.is_giga_promoted(prefix >> _GIGA_SHIFT):
                _fail(
                    "pagetable.double_backing",
                    f"pid {pid}: 2MB region {prefix:#x} promoted under "
                    f"promoted 1GB region {prefix >> _GIGA_SHIFT:#x}",
                )
        for giga in table.giga_promoted_regions():
            pages_under = sum(
                n
                for prefix, n in recount.items()
                if prefix >> _GIGA_SHIFT == giga
            )
            if pages_under:
                _fail(
                    "pagetable.double_backing",
                    f"pid {pid}: promoted 1GB region {giga:#x} still "
                    f"covers {pages_under} base PTEs",
                )

    # ------------------------------------------------------------------
    # statistics conservation

    def check_stats(self, core) -> None:
        """Access partition laws (requires pipelines to be synced).

        The monitor runs right after ``Machine.sync_pipelines``, so the
        batched fast-hit counters have been flushed and the canonical
        bags must balance exactly.
        """
        stats = core.stats
        partition = stats.l1_hits + stats.l2_hits + stats.walks
        if stats.accesses != partition:
            _fail(
                "stats.partition",
                f"core {core.core_id}: accesses {stats.accesses} != "
                f"l1_hits {stats.l1_hits} + l2_hits {stats.l2_hits} + "
                f"walks {stats.walks}",
            )
        tlb = core.tlb
        l1_hits = (
            tlb.l1_base.stats.hits
            + tlb.l1_huge.stats.hits
            + tlb.l1_giga.stats.hits
        )
        probes = l1_hits + tlb.l2.stats.hits + tlb.l2.stats.misses
        if tlb.accesses != probes:
            _fail(
                "stats.tlb_partition",
                f"core {core.core_id}: hierarchy accesses {tlb.accesses} "
                f"!= L1 hits {l1_hits} + L2 hits {tlb.l2.stats.hits} + "
                f"L2 misses {tlb.l2.stats.misses}",
            )
        if tlb.l1_base.stats.misses != tlb.l2.stats.accesses:
            _fail(
                "stats.tlb_partition",
                f"core {core.core_id}: L1 miss count "
                f"{tlb.l1_base.stats.misses} != L2 probe count "
                f"{tlb.l2.stats.accesses}",
            )

    def check_tick_accounting(self, ticks) -> None:
        """The tick driver's access ledger must match the cores' sum."""
        total = sum(core.stats.accesses for core in self.machine.cores)
        if ticks.total_accesses != total:
            _fail(
                "ticks.accounting",
                f"tick driver counted {ticks.total_accesses} accesses "
                f"but cores retired {total}",
            )
        # Every recorded tick logs its promotion count and the final
        # tick is only unrecorded when it promoted nothing, so at both
        # hook points the timeline and the running total agree exactly.
        timeline_promotions = sum(n for _, n in ticks.promotion_timeline)
        if timeline_promotions != ticks.promotions:
            _fail(
                "ticks.accounting",
                f"promotion timeline records {timeline_promotions} "
                f"promotions but the driver counted {ticks.promotions}",
            )
        if len(ticks.huge_page_timeline) != len(ticks.promotion_timeline):
            _fail(
                "ticks.accounting",
                f"huge-page timeline length "
                f"{len(ticks.huge_page_timeline)} != promotion timeline "
                f"length {len(ticks.promotion_timeline)}",
            )
