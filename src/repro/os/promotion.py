"""The PCC-driven promotion engine (§3.3, Fig. 4).

Each promotion interval the kernel:

A. reads the ranked candidate records the hardware dumped,
B. merges them under the configured policy (highest-frequency or
   round-robin, plus process bias) and selects up to
   ``regions_to_promote`` candidates, and
C. performs the promotions — allocating contiguous frames (compacting
   if permitted), collapsing page-table entries, and broadcasting TLB
   shootdowns that also invalidate the promoted regions from the PCCs.

Demotion (§3.3.3) is driven by the same data: a candidate whose walks
came from an *already promoted* leaf is poorly served by 2MB; under
memory pressure the engine may demote the coldest such page to free a
frame for a hotter unpromoted candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.dump import CandidateRecord
from repro.os import policies
from repro.os.physmem import OutOfMemoryError, PhysicalMemory
from repro.vm.address import PAGES_PER_HUGE, PageSize
from repro.vm.pagetable import PageTable, PageTableError


@dataclass
class PromotionStats:
    """Work performed by the engine, for timing and reports."""

    intervals: int = 0
    candidates_seen: int = 0
    promotions: int = 0
    promotion_failures: int = 0
    demotions: int = 0
    giga_promotions: int = 0
    pages_migrated: int = 0
    shootdowns: int = 0
    #: 4KB pages covered by promoted huge frames beyond the pages that
    #: were actually mapped — promotion-time memory bloat (§2.1)
    bloat_pages: int = 0


@dataclass
class PromotionOutcome:
    """What one interval accomplished (consumed by the timing model)."""

    promoted: list[CandidateRecord] = field(default_factory=list)
    demoted: list[tuple[int, int]] = field(default_factory=list)  # (pid, prefix)
    pages_migrated: int = 0
    #: accessed-bit aging shootdowns (idle probing of promoted pages)
    probes: int = 0

    @property
    def shootdowns(self) -> int:
        """TLB shootdown broadcasts this interval caused."""
        return len(self.promoted) + len(self.demoted) + self.probes


class PromotionEngine:
    """Applies PCC candidate lists to page tables and physical memory."""

    def __init__(
        self,
        physmem: PhysicalMemory,
        regions_to_promote: int = 128,
        promotion_policy: int = 1,
        biased_pids: tuple[int, ...] = (),
        demotion_enabled: bool = False,
        allow_compaction: bool = True,
        #: frequency ratio a promoted page must fall below (relative to
        #: the best waiting candidate) before demotion frees its frame
        demotion_ratio: float = 0.5,
        #: candidates below this frequency are not promoted this
        #: interval — the PCC holds "many entries with a frequency of 0"
        #: (§3.2.1) and spending scarce contiguity on them is wasteful
        min_frequency: int = 1,
        #: spend at most a quarter of scarce contiguity per interval
        pressure_throttle: bool = True,
    ) -> None:
        self.physmem = physmem
        self.regions_to_promote = regions_to_promote
        self.promotion_policy = promotion_policy
        self.biased_pids = tuple(biased_pids)
        self.demotion_enabled = demotion_enabled
        self.allow_compaction = allow_compaction
        self.demotion_ratio = demotion_ratio
        self.min_frequency = min_frequency
        self.pressure_throttle = pressure_throttle
        self.stats = PromotionStats()
        #: frame backing each promoted (pid, prefix), for demotion
        self._huge_frames: dict[tuple[int, int], int] = {}
        #: PCC frequency observed at promotion time (demotion baseline)
        self._promo_frequency: dict[tuple[int, int], int] = {}
        #: promoted regions whose accessed bit was cleared last interval
        self._probing: set[tuple[int, int]] = set()
        #: promoted regions confirmed idle by probing (§3.3.3's
        #: OS-assisted coldness detection, multi-gen-LRU style)
        self._cold: set[tuple[int, int]] = set()

    def order_candidates(
        self, records: list[CandidateRecord]
    ) -> list[CandidateRecord]:
        """Apply the configured merge policy + bias, deduplicated."""
        records = policies.deduplicate(records)
        if self.promotion_policy == 0:
            ordered = policies.round_robin_order(records)
        elif self.promotion_policy == 1:
            ordered = policies.highest_frequency_order(records)
        else:
            raise ValueError(
                f"unknown promotion_policy {self.promotion_policy} (0 or 1)"
            )
        return policies.apply_process_bias(ordered, self.biased_pids)

    def run_interval(
        self,
        records: list[CandidateRecord],
        page_tables: dict[int, PageTable],
        on_shootdown: Callable[[int, int], None] | None = None,
        budget_regions: int | None = None,
    ) -> PromotionOutcome:
        """One Fig. 4 interval: select and perform promotions.

        ``on_shootdown(pid, prefix)`` lets the engine's owner invalidate
        TLBs and PCC entries for each promoted/demoted region.
        ``budget_regions`` caps promotions *performed over the engine's
        lifetime* (the utility-curve footprint limit); ``None`` means
        unlimited.
        """
        self.stats.intervals += 1
        self.stats.candidates_seen += len(records)
        outcome = PromotionOutcome()
        if self.demotion_enabled:
            self._age_promoted_pages(page_tables, on_shootdown, outcome)
        ordered = self.order_candidates(records)
        quota = self.regions_to_promote
        # Memory-pressure throttle (§3.3.1: the interval "can be tuned
        # ... based on ... system memory pressure"): when contiguous
        # capacity is scarce, spend at most a quarter of it per interval
        # so later — better-informed — candidate lists still find room.
        if self.pressure_throttle:
            capacity = self.physmem.free_huge_frames()
            if self.allow_compaction:
                capacity += self.physmem.compactable_frames()
            if capacity <= 4 * self.regions_to_promote:
                quota = min(quota, max(1, capacity // 4))
        for record in ordered:
            if quota <= 0:
                break
            if budget_regions is not None and self.stats.promotions >= budget_regions:
                break
            table = page_tables.get(record.pid)
            if table is None:
                continue
            if record.page_size is not PageSize.HUGE:
                continue  # 1GB candidates handled by maybe_promote_giga
            if record.promoted_leaf or table.is_promoted(record.tag):
                continue  # already huge: demotion logic's concern
            if record.frequency < self.min_frequency:
                continue  # too cold to spend contiguous memory on
            if not table.region_base_pages(record.tag):
                continue  # nothing resident (stale candidate)
            frame = self._acquire_frame(records, page_tables, record, on_shootdown,
                                        outcome)
            if frame is None:
                self.stats.promotion_failures += 1
                continue
            remapped = table.promote(record.tag, frame)
            self.physmem.release_base_pages(remapped)
            self.stats.bloat_pages += PAGES_PER_HUGE - remapped
            self._huge_frames[(record.pid, record.tag)] = frame
            self._promo_frequency[(record.pid, record.tag)] = record.frequency
            outcome.promoted.append(record)
            self.stats.promotions += 1
            self.stats.shootdowns += 1
            quota -= 1
            if on_shootdown is not None:
                on_shootdown(record.pid, record.tag)
        outcome.pages_migrated += 0
        return outcome

    def _acquire_frame(
        self,
        records: list[CandidateRecord],
        page_tables: dict[int, PageTable],
        wanting: CandidateRecord,
        on_shootdown: Callable[[int, int], None] | None,
        outcome: PromotionOutcome,
    ) -> int | None:
        """Free frame for ``wanting``, possibly via compaction/demotion."""
        try:
            frame, migrated = self.physmem.allocate_huge(
                allow_compaction=self.allow_compaction
            )
            self.stats.pages_migrated += migrated
            outcome.pages_migrated += migrated
            return frame
        except OutOfMemoryError:
            pass
        if not self.demotion_enabled:
            return None
        victim = self._demotion_victim(records, wanting)
        if victim is None:
            return None
        pid, prefix = victim
        self._demote(pid, prefix, page_tables[pid], on_shootdown, outcome)
        try:
            frame, migrated = self.physmem.allocate_huge(
                allow_compaction=self.allow_compaction
            )
            self.stats.pages_migrated += migrated
            outcome.pages_migrated += migrated
            return frame
        except OutOfMemoryError:
            return None

    def _age_promoted_pages(
        self,
        page_tables: dict[int, PageTable],
        on_shootdown: Callable[[int, int], None] | None,
        outcome: PromotionOutcome,
    ) -> None:
        """OS-assisted coldness detection for promoted pages (§3.3.3).

        The PCC cannot see huge pages that stop being accessed (no
        access, no walk), so — as the paper suggests via multi-gen LRU —
        the OS ages them: each interval it clears the PMD accessed bit
        of every promoted region and shoots down its TLB entry; a
        region whose bit is still clear one interval later was never
        re-touched and becomes a demotion candidate.
        """
        for key in list(self._probing):
            pid, prefix = key
            table = page_tables.get(pid)
            if table is None or not table.is_promoted(prefix):
                self._probing.discard(key)
                self._cold.discard(key)
                continue
            if table.region_accessed(prefix):
                self._cold.discard(key)
            else:
                self._cold.add(key)
        self._probing.clear()
        for key in self._huge_frames:
            pid, prefix = key
            table = page_tables.get(pid)
            if table is None or not table.is_promoted(prefix):
                continue
            table.clear_region_accessed(prefix)
            self._probing.add(key)
            outcome.probes += 1
            if on_shootdown is not None:
                on_shootdown(pid, prefix)

    def _demotion_victim(
        self, records: list[CandidateRecord], wanting: CandidateRecord
    ) -> tuple[int, int] | None:
        """Coldest promoted page clearly worth sacrificing (§3.3.3).

        Preference order: a page the accessed-bit aging confirmed idle;
        otherwise a page whose promotion-time frequency the waiting
        candidate clearly dominates. Promoted pages reappearing in the
        PCC (still walking) are never victims — they may instead
        deserve 1GB promotion.
        """
        still_hot = {
            (r.pid, r.tag) for r in records if r.promoted_leaf
        }
        for key in self._cold:
            if key in self._huge_frames and key not in still_hot:
                return key
        best: tuple[int, int] | None = None
        best_freq = -1
        for key, freq in self._promo_frequency.items():
            if key in still_hot:
                continue
            if wanting.frequency * self.demotion_ratio <= freq:
                continue
            if best is None or freq < best_freq:
                best = key
                best_freq = freq
        return best

    def _demote(
        self,
        pid: int,
        prefix: int,
        table: PageTable,
        on_shootdown: Callable[[int, int], None] | None,
        outcome: PromotionOutcome,
    ) -> None:
        frame = self._huge_frames.pop((pid, prefix))
        self._promo_frequency.pop((pid, prefix), None)
        self._probing.discard((pid, prefix))
        self._cold.discard((pid, prefix))
        table.demote(prefix)
        self.physmem.free_huge(frame, as_base_pages=PAGES_PER_HUGE)
        outcome.demoted.append((pid, prefix))
        self.stats.demotions += 1
        self.stats.shootdowns += 1
        if on_shootdown is not None:
            on_shootdown(pid, prefix)

    #: 1GB dominance ratio standing in for the paper's 512x rule: with
    #: 8-bit saturating counters an actual 512x gap is unrepresentable,
    #: but the signature it encodes — the 1GB entry far hotter than any
    #: single constituent 2MB entry (whose counters stay low because the
    #: wide hot set churns them through the 2MB PCC) — survives at a
    #: modest ratio. A lone hot 2MB child saturates alongside the 1GB
    #: entry (ratio ~1, no promotion); a GB-wide hot set leaves every
    #: child lukewarm (ratio >3, promote).
    giga_dominance_ratio: int = 3

    def maybe_promote_giga(
        self,
        records_2mb: list[CandidateRecord],
        records_1gb: list[CandidateRecord],
        page_tables: dict[int, PageTable],
        on_giga_shootdown: Callable[[int, int], None] | None = None,
    ) -> list[CandidateRecord]:
        """1GB promotion rule (§3.2.3).

        A 1GB region is collectively promoted when its walk frequency
        dominates every constituent 2MB entry's — i.e. the 2MB page size
        is not preventing last-level TLB misses for this span.
        ``on_giga_shootdown(pid, giga_tag)`` lets the owner invalidate
        all translations under the promoted gigabyte.
        """
        freq_2mb: dict[tuple[int, int], int] = {
            (r.pid, r.tag): r.frequency for r in records_2mb
        }
        promoted: list[CandidateRecord] = []
        for record in records_1gb:
            table = page_tables.get(record.pid)
            if table is None or table.is_giga_promoted(record.tag):
                continue
            if record.frequency < self.min_frequency:
                continue
            first_2mb = record.tag * 512
            constituent_max = max(
                (
                    freq
                    for (pid, tag), freq in freq_2mb.items()
                    if pid == record.pid and first_2mb <= tag < first_2mb + 512
                ),
                default=0,
            )
            if record.frequency < self.giga_dominance_ratio * max(
                1, constituent_max
            ):
                continue
            try:
                table.promote_giga(record.tag, frame=record.tag)
            except PageTableError:
                continue
            promoted.append(record)
            self.stats.giga_promotions += 1
            if on_giga_shootdown is not None:
                on_giga_shootdown(record.pid, record.tag)
        return promoted
