"""OS candidate-selection policies across multiple PCCs (§3.3.2).

With one PCC per core, the OS must merge the per-core ranked candidate
lists before promoting. The paper evaluates two policies, selectable at
runtime through the ``promotion_policy`` kernel parameter:

* ``highest_frequency_order`` (policy 1): globally sort all candidates
  by frequency, promoting the hottest regions system-wide first.
* ``round_robin_order`` (policy 0): interleave candidates core by core
  (each core's list already ranked), distributing huge pages evenly
  until a core runs out of candidates.

``apply_process_bias`` implements the ``promotion_bias_process`` kernel
parameter: candidates belonging to biased PIDs are exhausted before any
other process receives a huge page.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.dump import CandidateRecord


def highest_frequency_order(
    records: Iterable[CandidateRecord],
) -> list[CandidateRecord]:
    """Merge candidates, hottest first (frequency desc, stable)."""
    return sorted(records, key=lambda r: -r.frequency)


def round_robin_order(records: Iterable[CandidateRecord]) -> list[CandidateRecord]:
    """Interleave candidates across cores, preserving per-core rank."""
    per_core: dict[int, list[CandidateRecord]] = {}
    for record in records:
        per_core.setdefault(record.core, []).append(record)
    queues = [per_core[core] for core in sorted(per_core)]
    merged: list[CandidateRecord] = []
    depth = 0
    while True:
        emitted = False
        for queue in queues:
            if depth < len(queue):
                merged.append(queue[depth])
                emitted = True
        if not emitted:
            return merged
        depth += 1


def apply_process_bias(
    records: Sequence[CandidateRecord], biased_pids: Sequence[int]
) -> list[CandidateRecord]:
    """Move candidates of biased processes ahead of all others.

    Order within each partition is preserved, so the bias composes with
    whichever base policy produced ``records``.
    """
    if not biased_pids:
        return list(records)
    biased = set(biased_pids)
    favored = [r for r in records if r.pid in biased]
    others = [r for r in records if r.pid not in biased]
    return favored + others


def deduplicate(records: Iterable[CandidateRecord]) -> list[CandidateRecord]:
    """Drop repeated (pid, tag, size) candidates, keeping first (highest
    priority) occurrence. Multiple threads of one process can report the
    same region from different cores."""
    seen: set[tuple[int, int, int]] = set()
    unique: list[CandidateRecord] = []
    for record in records:
        key = (record.pid, record.tag, int(record.page_size))
        if key in seen:
            continue
        seen.add(key)
        unique.append(record)
    return unique
