"""HawkEye baseline (Panwar et al., ASPLOS 2019) as described in §2.2.

HawkEye tracks *access coverage*: the number of distinct base pages
accessed within each 2MB region during a measurement interval, read
from page-table accessed bits and then reset. Regions land in ten
buckets of width 50 (coverage 0-49 in bucket 0, ..., 450-512 in
bucket 9); promotion drains bucket 9 first and works backwards.

The paper stresses two structural limitations that our model preserves:

* the scan is software and rate-limited — the same 4096 pages per
  interval as khugepaged — so HawkEye discovers candidates slowly on
  large footprints; and
* coverage is binary per page (accessed or not), blind to how many TLB
  misses each page causes, so sparse-but-hot HUB regions whose coverage
  sits below threshold never get prioritized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.os.physmem import OutOfMemoryError, PhysicalMemory
from repro.vm.address import PAGES_PER_HUGE
from repro.vm.pagetable import PageTable

#: Coverage buckets of width 50: 0-49 -> 0, ..., 450-512 -> 9.
BUCKET_WIDTH = 50
NUM_BUCKETS = 10


def bucket_of(coverage: int) -> int:
    """Bucket index for an access-coverage count (clamped to bucket 9)."""
    if coverage < 0:
        raise ValueError(f"coverage cannot be negative: {coverage}")
    return min(coverage // BUCKET_WIDTH, NUM_BUCKETS - 1)


@dataclass
class HawkEyeStats:
    """Scan and promotion counters."""

    intervals: int = 0
    pages_scanned: int = 0
    promotions: int = 0
    promotion_failures: int = 0


@dataclass
class HawkEye:
    """Access-coverage-driven promotion engine."""

    physmem: PhysicalMemory
    scan_pages_per_interval: int = 4096
    max_promotions_per_interval: int = 8
    allow_compaction: bool = True
    stats: HawkEyeStats = field(default_factory=HawkEyeStats)
    #: latest measured coverage per (pid, region)
    _coverage: dict[tuple[int, int], int] = field(default_factory=dict)
    _cursor: dict[int, int] = field(default_factory=dict)

    def measure_interval(self, page_table: PageTable) -> None:
        """One 1-second measurement: scan accessed bits, then reset them.

        Only ``scan_pages_per_interval`` pages are examined; the cursor
        carries across intervals so the whole footprint is eventually
        covered, just slowly — the bottleneck the PCC removes.
        """
        self.stats.intervals += 1
        regions = [
            prefix
            for prefix in page_table.touched_huge_regions()
            if not page_table.is_promoted(prefix)
        ]
        if not regions:
            return
        start = self._cursor.get(page_table.pid, 0) % len(regions)
        budget = self.scan_pages_per_interval
        index = start
        steps = 0
        while budget > 0 and steps < len(regions):
            prefix = regions[index % len(regions)]
            index += 1
            steps += 1
            coverage = page_table.accessed_pages_in_region(prefix)
            self._coverage[(page_table.pid, prefix)] = coverage
            budget -= PAGES_PER_HUGE
            self.stats.pages_scanned += PAGES_PER_HUGE
        self._cursor[page_table.pid] = index % len(regions)
        page_table.clear_accessed_bits()

    def buckets(self, pid: int) -> list[list[int]]:
        """Regions grouped by coverage bucket for one process."""
        grouped: list[list[int]] = [[] for _ in range(NUM_BUCKETS)]
        for (entry_pid, prefix), coverage in self._coverage.items():
            if entry_pid == pid:
                grouped[bucket_of(coverage)].append(prefix)
        return grouped

    def promotion_candidates(self, pid: int, limit: int) -> list[int]:
        """Up to ``limit`` regions, bucket 9 first, then backwards."""
        candidates: list[int] = []
        for bucket in reversed(self.buckets(pid)):
            for prefix in bucket:
                if len(candidates) >= limit:
                    return candidates
                candidates.append(prefix)
        return candidates

    def promote_interval(self, page_table: PageTable) -> list[int]:
        """Promote the current top candidates for one process."""
        promoted: list[int] = []
        for prefix in self.promotion_candidates(
            page_table.pid, self.max_promotions_per_interval
        ):
            if page_table.is_promoted(prefix):
                self._coverage.pop((page_table.pid, prefix), None)
                continue
            if not page_table.region_base_pages(prefix):
                continue
            try:
                frame, _ = self.physmem.allocate_huge(
                    allow_compaction=self.allow_compaction
                )
            except OutOfMemoryError:
                self.stats.promotion_failures += 1
                break
            remapped = page_table.promote(prefix, frame)
            self.physmem.release_base_pages(remapped)
            self._coverage.pop((page_table.pid, prefix), None)
            promoted.append(prefix)
            self.stats.promotions += 1
        return promoted
