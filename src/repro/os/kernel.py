"""The simulated kernel tying memory management together.

:class:`SimulatedKernel` owns per-process page tables, physical memory,
the fault path (base-page or greedy-THP backed), and whichever
promotion machinery the active policy requires: the PCC promotion
engine, HawkEye, or khugepaged. Kernel behaviour is steered through
:class:`KernelParams`, the analogue of the sysfs/sysctl knobs the paper
introduces (``regions_to_promote``, ``promotion_policy``,
``promotion_bias_process``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.config import SystemConfig
from repro.vm.address import BASE_PAGE_SHIFT
from repro.os.hawkeye import HawkEye
from repro.os.physmem import PhysicalMemory
from repro.os.oracle import StaticHugeAllocator
from repro.os.promotion import PromotionEngine, PromotionOutcome
from repro.os.thp import GreedyTHP, Khugepaged
from repro.core.dump import CandidateRecord
from repro.vm.layout import AddressSpaceLayout
from repro.vm.pagetable import PageTable


class HugePagePolicy(enum.Enum):
    """Which promotion machinery the kernel runs."""

    NONE = "none"  # 4KB base pages only (the paper's baseline)
    LINUX_THP = "linux-thp"  # greedy fault-time + khugepaged
    HAWKEYE = "hawkeye"  # software access-coverage scanning
    PCC = "pcc"  # hardware-assisted candidate selection
    IDEAL = "ideal"  # everything backed by huge pages (peak line)
    ORACLE = "oracle"  # profile-guided static allocation (§5.4.2)


@dataclass
class KernelParams:
    """Runtime-tunable kernel parameters (§3.3.1-§3.3.2)."""

    regions_to_promote: int = 128
    promotion_policy: int = 1  # 0 = round robin, 1 = highest frequency
    promotion_bias_processes: tuple[int, ...] = ()
    demotion_enabled: bool = False
    scan_pages_per_interval: int = 4096
    compaction_enabled: bool = True
    #: lifetime cap on PCC promotions (utility-curve footprint budget)
    promotion_budget_regions: int | None = None
    #: preselected 2MB regions for the ORACLE policy (§5.4.2)
    static_huge_regions: tuple[int, ...] = ()
    #: candidates below this PCC frequency are never promoted
    min_candidate_frequency: int = 1
    #: under contiguity pressure, spend at most 1/4 of the remaining
    #: capacity per interval (§3.3.1 pressure-adaptive tuning)
    pressure_throttle: bool = True
    #: "flush" dumps-and-clears each PCC per interval (Fig. 4); "snapshot"
    #: reads the ranked contents on demand without clearing
    pcc_dump_mode: str = "flush"


@dataclass
class Process:
    """One simulated process: identity, address space, page table."""

    pid: int
    layout: AddressSpaceLayout
    page_table: PageTable = field(init=False)

    def __post_init__(self) -> None:
        self.page_table = PageTable(pid=self.pid)


class SimulatedKernel:
    """Memory-management kernel for one simulated machine."""

    def __init__(
        self,
        config: SystemConfig,
        policy: HugePagePolicy = HugePagePolicy.PCC,
        params: KernelParams | None = None,
        fragmentation: float = 0.0,
    ) -> None:
        self.config = config
        self.policy = policy
        self.params = params or KernelParams(
            regions_to_promote=config.os.regions_to_promote,
            promotion_policy=config.os.promotion_policy,
            promotion_bias_processes=config.os.promotion_bias_processes,
            demotion_enabled=config.os.demotion_enabled,
            scan_pages_per_interval=config.os.scan_pages_per_interval,
            compaction_enabled=config.os.compaction_enabled,
        )
        self.physmem = PhysicalMemory(config.memory_bytes)
        if fragmentation > 0.0:
            self.physmem.fragment(fragmentation)
        self.processes: dict[int, Process] = {}

        greedy = policy in (HugePagePolicy.LINUX_THP, HugePagePolicy.IDEAL)
        self._ideal = policy is HugePagePolicy.IDEAL
        # Linux's fault path does not direct-compact for huge pages
        # (defrag defaults); only the IDEAL bound gets free compaction.
        self._greedy_thp = GreedyTHP(
            self.physmem,
            enabled=greedy,
            allow_compaction=self._ideal,
        )
        self._khugepaged = (
            Khugepaged(
                self.physmem,
                scan_pages_per_interval=self.params.scan_pages_per_interval,
                allow_compaction=self.params.compaction_enabled,
            )
            if policy is HugePagePolicy.LINUX_THP
            else None
        )
        self._hawkeye = (
            HawkEye(
                self.physmem,
                scan_pages_per_interval=self.params.scan_pages_per_interval,
                # HawkEye cannot promote more regions than its scan
                # covered: 4096 pages/interval -> 8 regions (§5.1).
                max_promotions_per_interval=max(
                    1, self.params.scan_pages_per_interval // 512
                ),
                allow_compaction=self.params.compaction_enabled,
            )
            if policy is HugePagePolicy.HAWKEYE
            else None
        )
        self._static = (
            StaticHugeAllocator(
                self.physmem,
                regions=list(self.params.static_huge_regions),
                allow_compaction=self.params.compaction_enabled,
            )
            if policy is HugePagePolicy.ORACLE
            else None
        )
        self._engine = (
            PromotionEngine(
                self.physmem,
                regions_to_promote=self.params.regions_to_promote,
                promotion_policy=self.params.promotion_policy,
                biased_pids=self.params.promotion_bias_processes,
                demotion_enabled=self.params.demotion_enabled,
                allow_compaction=self.params.compaction_enabled,
                min_frequency=self.params.min_candidate_frequency,
                pressure_throttle=self.params.pressure_throttle,
            )
            if policy is HugePagePolicy.PCC
            else None
        )
        #: fault-time work the timing model charges, reset per query
        self._pending_huge_zeroes = 0
        self._pending_base_zeroes = 0
        self._pending_migrations = 0
        #: cumulative fault-path counters (metrics registry feed)
        self.faults_total = 0
        self.faults_huge_backed = 0
        self.faults_base_backed = 0

    # ------------------------------------------------------------------
    # process management

    def spawn(self, layout: AddressSpaceLayout, pid: int | None = None) -> Process:
        """Register a process with its (pre-built) address-space layout."""
        if pid is None:
            pid = len(self.processes) + 1
        if pid in self.processes:
            raise ValueError(f"pid {pid} already exists")
        process = Process(pid=pid, layout=layout)
        self.processes[pid] = process
        return process

    def page_tables(self) -> dict[int, PageTable]:
        """pid -> page table for every live process."""
        return {pid: proc.page_table for pid, proc in self.processes.items()}

    # ------------------------------------------------------------------
    # fault path

    def handle_fault(self, pid: int, vaddr: int) -> None:
        """First touch of a page: back it per the active policy."""
        process = self.processes[pid]
        vma = process.layout.find(vaddr)
        # Linux only backs VMAs spanning a full huge region; the IDEAL
        # upper bound ignores eligibility (all data huge, §5's peak line).
        eligible = self._ideal or (
            vma is not None and vma.length >= 2 * 1024 * 1024
        )
        if self._static is not None:
            used_huge = self._static.handle_fault(process.page_table, vaddr)
            migrated = 0
        else:
            used_huge, migrated = self._greedy_thp.handle_fault(
                process.page_table, vaddr, region_eligible=eligible
            )
        self.faults_total += 1
        if used_huge:
            self._pending_huge_zeroes += 1
            self._pending_migrations += migrated
            self.faults_huge_backed += 1
        else:
            self._pending_base_zeroes += 1
            self.faults_base_backed += 1

    @property
    def supports_bulk_faults(self) -> bool:
        """Whether every fault is base-backed regardless of VMA state.

        True for the tick-driven policies (NONE, PCC, HAWKEYE): greedy
        fault-time THP is off and no static allocator runs, so
        :meth:`handle_fault` unconditionally carves a 4KB page — which
        is what lets the columnar engine pre-execute a whole epoch's
        first-touch set as one array pass.
        """
        return not self._greedy_thp.enabled and self._static is None

    def handle_faults_bulk(self, pid: int, vaddrs) -> None:
        """Array-batched first-touch faults (base-backed policies only).

        ``vaddrs`` holds distinct unmapped addresses in fault order.
        Exactly equivalent to ``handle_fault(pid, v)`` per address when
        :attr:`supports_bulk_faults` holds: the bump allocator visits
        the same frames, PTE frame tokens replicate the scalar path's
        post-allocation ``stats.base_allocations`` values, and every
        counter advances by the batch size.
        """
        n = len(vaddrs)
        if n == 0:
            return
        process = self.processes[pid]
        physmem = self.physmem
        start = physmem.stats.base_allocations
        physmem.allocate_base_bulk(n)
        pages = np.asarray(vaddrs, dtype=np.int64) >> BASE_PAGE_SHIFT
        frames = np.arange(start + 1, start + n + 1, dtype=np.int64)
        process.page_table.map_base_bulk(pages, frames)
        self._greedy_thp.stats.fault_base += n
        self.faults_total += n
        self.faults_base_backed += n
        self._pending_base_zeroes += n

    def drain_fault_work(self) -> tuple[int, int, int]:
        """(huge_zeroes, base_zeroes, migrated_pages) since last call."""
        work = (
            self._pending_huge_zeroes,
            self._pending_base_zeroes,
            self._pending_migrations,
        )
        self._pending_huge_zeroes = 0
        self._pending_base_zeroes = 0
        self._pending_migrations = 0
        return work

    # ------------------------------------------------------------------
    # periodic promotion tick

    def promotion_tick(
        self,
        pcc_records: list[CandidateRecord] | None = None,
        giga_records: list[CandidateRecord] | None = None,
        on_shootdown=None,
        on_giga_shootdown=None,
    ) -> PromotionOutcome:
        """One promotion interval under the active policy.

        For the PCC policy, ``pcc_records`` are the dumped candidates;
        other policies ignore them and run their own scanners.
        """
        outcome = PromotionOutcome()
        tables = self.page_tables()
        if self._engine is not None:
            outcome = self._engine.run_interval(
                pcc_records or [],
                tables,
                on_shootdown=on_shootdown,
                budget_regions=self.params.promotion_budget_regions,
            )
            if giga_records:
                self._engine.maybe_promote_giga(
                    pcc_records or [],
                    giga_records,
                    tables,
                    on_giga_shootdown=on_giga_shootdown,
                )
        elif self._hawkeye is not None:
            for table in tables.values():
                self._hawkeye.measure_interval(table)
                budget = self.params.promotion_budget_regions
                if budget is not None:
                    room = budget - self._hawkeye.stats.promotions
                    if room <= 0:
                        continue
                    self._hawkeye.max_promotions_per_interval = min(
                        self._hawkeye.max_promotions_per_interval, room
                    )
                for prefix in self._hawkeye.promote_interval(table):
                    outcome.promoted.append(
                        CandidateRecord(
                            pid=table.pid, core=0, tag=prefix, frequency=0
                        )
                    )
                    if on_shootdown is not None:
                        on_shootdown(table.pid, prefix)
        elif self._khugepaged is not None:
            for table in tables.values():
                for prefix in self._khugepaged.scan_interval(table):
                    outcome.promoted.append(
                        CandidateRecord(
                            pid=table.pid, core=0, tag=prefix, frequency=0
                        )
                    )
                    if on_shootdown is not None:
                        on_shootdown(table.pid, prefix)
        return outcome

    # ------------------------------------------------------------------
    # reporting

    def metrics(self) -> dict[str, int]:
        """Kernel counter readings for the metrics registry.

        Includes the fault-path counters plus whichever promotion
        machinery the active policy runs (so the key set is stable for
        a fixed policy).
        """
        thp = self._greedy_thp.stats
        out = {
            "kernel.faults.total": self.faults_total,
            "kernel.faults.huge_backed": self.faults_huge_backed,
            "kernel.faults.base_backed": self.faults_base_backed,
            "kernel.thp.fault_huge": thp.fault_huge,
            "kernel.thp.fault_base": thp.fault_base,
            "kernel.thp.fault_huge_failed": thp.fault_huge_failed,
            "kernel.thp.bloat_pages": thp.bloat_pages,
        }
        if self._engine is not None:
            stats = self._engine.stats
            out.update(
                {
                    "kernel.promotion.intervals": stats.intervals,
                    "kernel.promotion.candidates_seen": stats.candidates_seen,
                    "kernel.promotion.promotions": stats.promotions,
                    "kernel.promotion.failures": stats.promotion_failures,
                    "kernel.promotion.demotions": stats.demotions,
                    "kernel.promotion.giga_promotions": stats.giga_promotions,
                    "kernel.promotion.pages_migrated": stats.pages_migrated,
                    "kernel.promotion.shootdowns": stats.shootdowns,
                    "kernel.promotion.bloat_pages": stats.bloat_pages,
                }
            )
        if self._hawkeye is not None:
            stats = self._hawkeye.stats
            out.update(
                {
                    "kernel.hawkeye.intervals": stats.intervals,
                    "kernel.hawkeye.pages_scanned": stats.pages_scanned,
                    "kernel.hawkeye.promotions": stats.promotions,
                    "kernel.hawkeye.failures": stats.promotion_failures,
                }
            )
        if self._khugepaged is not None:
            stats = self._khugepaged.stats
            out.update(
                {
                    "kernel.khugepaged.pages_scanned": stats.khugepaged_pages_scanned,
                    "kernel.khugepaged.promotions": stats.khugepaged_promotions,
                }
            )
        return out

    def total_huge_pages(self) -> int:
        """Huge pages currently installed across all processes."""
        return sum(
            len(proc.page_table.promoted_regions()) for proc in self.processes.values()
        )

    def huge_pages_of(self, pid: int) -> int:
        """Huge pages currently backing one process (Fig. 9 panels)."""
        return len(self.processes[pid].page_table.promoted_regions())
