"""Physical memory at 2MB-frame granularity.

Memory is organized as an array of 2MB-aligned *huge frames*, each of
which is either entirely free, carved into 4KB base allocations, pinned
(holds a non-movable kernel page), or backing one huge page. Huge-page
allocation requires a fully-free frame, which is what fragmentation
destroys; compaction migrates movable base pages out of partially-used,
unpinned frames to recreate free frames at a per-page cycle cost.

Fragmentation injection follows §5.1.1 verbatim: "We fragment memory by
allocating one non-movable page in every 2MB-aligned region" — applied
to the requested fraction of frames.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.vm.address import HUGE_PAGE_SIZE, PAGES_PER_HUGE


class FrameState(enum.Enum):
    """Lifecycle of one 2MB physical frame."""

    FREE = "free"
    PARTIAL = "partial"  # carved into 4KB pages, possibly pinned ones
    HUGE = "huge"  # backing one huge page


class OutOfMemoryError(Exception):
    """No physical frame can satisfy the request."""


@dataclass
class PhysMemStats:
    """Allocation/compaction counters."""

    base_allocations: int = 0
    huge_allocations: int = 0
    huge_failures: int = 0
    compactions: int = 0
    pages_migrated: int = 0
    huge_frees: int = 0


@dataclass
class _Frame:
    state: FrameState = FrameState.FREE
    used_base_pages: int = 0
    pinned_pages: int = 0

    @property
    def movable_pages(self) -> int:
        return self.used_base_pages - self.pinned_pages


class PhysicalMemory:
    """2MB-frame-granular allocator with fragmentation and compaction."""

    def __init__(self, total_bytes: int) -> None:
        if total_bytes < HUGE_PAGE_SIZE:
            raise ValueError(
                f"need at least one 2MB frame, got {total_bytes} bytes"
            )
        self.total_frames = total_bytes // HUGE_PAGE_SIZE
        self._frames = [_Frame() for _ in range(self.total_frames)]
        #: frame currently receiving 4KB carve-outs (bump allocation)
        self._fill_cursor = 0
        self.stats = PhysMemStats()

    # ------------------------------------------------------------------
    # queries

    def free_huge_frames(self) -> int:
        """Frames immediately available for huge allocation."""
        return sum(1 for f in self._frames if f.state is FrameState.FREE)

    def compactable_frames(self) -> int:
        """Partial frames with no pinned pages (recoverable by compaction)."""
        return sum(
            1
            for f in self._frames
            if f.state is FrameState.PARTIAL and f.pinned_pages == 0
        )

    def huge_frames_in_use(self) -> int:
        """Frames currently backing huge pages."""
        return sum(1 for f in self._frames if f.state is FrameState.HUGE)

    def fragmentation_fraction(self) -> float:
        """Fraction of frames unable to back a huge page right now."""
        return 1.0 - self.free_huge_frames() / self.total_frames

    # ------------------------------------------------------------------
    # fragmentation injection (§5.1.1)

    def fragment(
        self,
        fraction: float,
        rng: np.random.Generator | None = None,
        scatter_movable: bool = True,
    ) -> int:
        """Pin one non-movable 4KB page in ``fraction`` of the frames.

        Returns the number of frames pinned. Deterministic (evenly
        spread) unless an ``rng`` is supplied.

        With ``scatter_movable`` (the realistic default), every frame
        *not* pinned also receives one movable 4KB page: a fragmented
        system has no pristine order-9 blocks on its freelists, only
        free space recoverable by compaction. This is what defeats
        Linux's fault-time THP allocation (which does not compact)
        while deliberate promotion paths (khugepaged, HawkEye, the PCC
        engine) still succeed at a compaction cost.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0,1], got {fraction}")
        target = int(round(self.total_frames * fraction))
        candidates = [
            i for i, f in enumerate(self._frames) if f.state is FrameState.FREE
        ]
        if rng is not None:
            rng.shuffle(candidates)
        pinned = 0
        for index in candidates:
            frame = self._frames[index]
            if pinned < target:
                frame.state = FrameState.PARTIAL
                frame.used_base_pages = 1
                frame.pinned_pages = 1
                pinned += 1
            elif scatter_movable and fraction > 0.0:
                frame.state = FrameState.PARTIAL
                frame.used_base_pages = 1
        return pinned

    # ------------------------------------------------------------------
    # allocation

    def allocate_base(self, count: int = 1) -> int:
        """Carve ``count`` 4KB pages out of partial/free frames.

        Returns an opaque frame token for the last page (tokens only
        matter for identity in page tables). Fills frames bump-style,
        which is how long-running systems densify low memory.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        token = -1
        for _ in range(count):
            frame_index = self._frame_for_base()
            frame = self._frames[frame_index]
            frame.state = FrameState.PARTIAL
            frame.used_base_pages += 1
            self.stats.base_allocations += 1
            token = frame_index * PAGES_PER_HUGE + frame.used_base_pages - 1
        return token

    def allocate_base_bulk(self, count: int) -> None:
        """Carve ``count`` 4KB pages in one pass over the frame list.

        Equivalent to ``count`` calls of :meth:`allocate_base` — the
        bump cursor visits the same frames in the same order and the
        counters advance identically (including on a mid-bulk
        :class:`OutOfMemoryError`, where pages carved so far stay
        counted) — but takes whole frame remainders at a time instead
        of one page per scan.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        remaining = count
        while remaining:
            frame = self._frames[self._frame_for_base()]
            frame.state = FrameState.PARTIAL
            take = min(PAGES_PER_HUGE - frame.used_base_pages, remaining)
            frame.used_base_pages += take
            self.stats.base_allocations += take
            remaining -= take

    def _frame_for_base(self) -> int:
        start = self._fill_cursor
        for offset in range(self.total_frames):
            index = (start + offset) % self.total_frames
            frame = self._frames[index]
            if frame.state is FrameState.PARTIAL and (
                frame.used_base_pages < PAGES_PER_HUGE
            ):
                self._fill_cursor = index
                return index
            if frame.state is FrameState.FREE:
                self._fill_cursor = index
                return index
        raise OutOfMemoryError("no 4KB page available")

    def allocate_huge(self, allow_compaction: bool = False) -> tuple[int, int]:
        """Claim one fully-free frame for a huge page.

        Returns ``(frame_index, pages_migrated)`` where the second item
        is the compaction work performed (0 when a free frame existed).
        Raises :class:`OutOfMemoryError` when neither a free frame nor a
        compactable one exists.
        """
        for index, frame in enumerate(self._frames):
            if frame.state is FrameState.FREE:
                frame.state = FrameState.HUGE
                self.stats.huge_allocations += 1
                return index, 0
        if allow_compaction:
            migrated = self._compact_one()
            if migrated >= 0:
                for index, frame in enumerate(self._frames):
                    if frame.state is FrameState.FREE:
                        frame.state = FrameState.HUGE
                        self.stats.huge_allocations += 1
                        return index, migrated
        self.stats.huge_failures += 1
        raise OutOfMemoryError("no contiguous 2MB frame available")

    def _compact_one(self) -> int:
        """Migrate one unpinned partial frame's pages elsewhere.

        Returns pages moved, or -1 when no frame is compactable or no
        destination space exists.
        """
        source = None
        source_index = -1
        for index, frame in enumerate(self._frames):
            if frame.state is FrameState.PARTIAL and frame.pinned_pages == 0:
                # prefer the emptiest frame: least migration work
                if source is None or frame.used_base_pages < source.used_base_pages:
                    source = frame
                    source_index = index
        if source is None:
            return -1
        to_move = source.used_base_pages
        # Destination capacity in *other* partial frames (pinned frames
        # can still absorb movable pages) — compaction must not consume
        # a free frame or it defeats its purpose.
        capacity = sum(
            PAGES_PER_HUGE - f.used_base_pages
            for i, f in enumerate(self._frames)
            if f.state is FrameState.PARTIAL and i != source_index
        )
        if capacity < to_move:
            return -1
        remaining = to_move
        for i, frame in enumerate(self._frames):
            if remaining == 0:
                break
            if frame.state is not FrameState.PARTIAL or i == source_index:
                continue
            room = PAGES_PER_HUGE - frame.used_base_pages
            moved = min(room, remaining)
            frame.used_base_pages += moved
            remaining -= moved
        source.state = FrameState.FREE
        source.used_base_pages = 0
        self.stats.compactions += 1
        self.stats.pages_migrated += to_move
        return to_move

    def release_base_pages(self, count: int) -> int:
        """Return ``count`` carved 4KB pages to the allocator.

        Called when a region's base pages are collapsed into a freshly
        allocated huge frame (promotion copies the data out). Pages are
        released from the fullest unpinned partial frames first, which
        keeps the remaining allocation compactable. Returns the number
        actually released (bounded by live movable pages).
        """
        if count < 0:
            raise ValueError(f"count cannot be negative: {count}")
        remaining = count
        partials = sorted(
            (f for f in self._frames if f.state is FrameState.PARTIAL),
            key=lambda f: -f.movable_pages,
        )
        for frame in partials:
            if remaining == 0:
                break
            releasable = min(frame.movable_pages, remaining)
            frame.used_base_pages -= releasable
            remaining -= releasable
            if frame.used_base_pages == 0:
                frame.state = FrameState.FREE
        return count - remaining

    def free_huge(self, frame_index: int, as_base_pages: int = 0) -> None:
        """Release a huge frame (demotion or process exit).

        ``as_base_pages`` > 0 re-carves that many 4KB pages into the
        frame (demotion keeps the data resident as base pages).
        """
        frame = self._frames[frame_index]
        if frame.state is not FrameState.HUGE:
            raise ValueError(f"frame {frame_index} is not backing a huge page")
        self.stats.huge_frees += 1
        if as_base_pages > 0:
            if as_base_pages > PAGES_PER_HUGE:
                raise ValueError(
                    f"cannot carve {as_base_pages} pages into one 2MB frame"
                )
            frame.state = FrameState.PARTIAL
            frame.used_base_pages = as_base_pages
            frame.pinned_pages = 0
        else:
            frame.state = FrameState.FREE
            frame.used_base_pages = 0
            frame.pinned_pages = 0
