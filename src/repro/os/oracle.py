"""Profile-guided static huge-page allocation (§5.4.2).

The paper notes that "compiler or programmer analysis can identify
HUBs before workload execution and this knowledge can guide the
allocation of huge pages in lieu of dynamic promotion". This module
provides that alternative: a promotion-free policy that backs a
*preselected* set of 2MB regions with huge pages at first fault.

Two selectors are provided:

* :func:`hub_regions_from_profile` — the offline reuse-distance oracle
  (Fig. 2's characterization) picks the HUB regions; and
* a user-supplied region list (the "programmer annotation" case, e.g.
  ``madvise(MADV_HUGEPAGE)`` on specific allocations).

Comparing this oracle against the dynamic PCC quantifies how much of
the paper's benefit is achievable with static knowledge — and what the
PCC adds when the profile is unavailable or wrong.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.os.physmem import OutOfMemoryError, PhysicalMemory
from repro.trace.events import Trace
from repro.vm.address import huge_prefix
from repro.vm.pagetable import PageTable


def hub_regions_from_profile(trace: Trace, threshold: int = 1024,
                             limit: int | None = None) -> list[int]:
    """Offline oracle: HUB regions of a trace, hottest first."""
    # imported lazily: repro.analysis pulls in the simulation engine,
    # which depends back on this package's kernel
    from repro.analysis.reuse import profile_trace

    regions = profile_trace(trace, threshold=threshold).hub_regions()
    return regions if limit is None else regions[:limit]


@dataclass
class StaticAllocStats:
    """First-fault allocation accounting."""

    huge_faults: int = 0
    base_faults: int = 0
    huge_failures: int = 0


class StaticHugeAllocator:
    """Backs a preselected region set with huge pages at first fault.

    Unlike greedy THP this is *selective*: only annotated regions get
    huge pages, so scarce contiguity is never wasted on cold data —
    but unlike the PCC it cannot adapt when the annotation is stale.
    """

    def __init__(self, physmem: PhysicalMemory, regions: list[int],
                 allow_compaction: bool = True) -> None:
        self.physmem = physmem
        self.regions = set(regions)
        self.allow_compaction = allow_compaction
        self.stats = StaticAllocStats()

    def handle_fault(self, page_table: PageTable, vaddr: int) -> bool:
        """Back the faulting page; returns True when huge was used."""
        prefix = huge_prefix(vaddr)
        if (
            prefix in self.regions
            and not page_table.is_promoted(prefix)
            and not page_table.region_base_pages(prefix)
        ):
            try:
                frame, _ = self.physmem.allocate_huge(
                    allow_compaction=self.allow_compaction
                )
            except OutOfMemoryError:
                self.stats.huge_failures += 1
            else:
                page_table.map_huge(vaddr, frame)
                self.stats.huge_faults += 1
                return True
        self.physmem.allocate_base()
        page_table.map_base(vaddr, self.physmem.stats.base_allocations)
        self.stats.base_faults += 1
        return False
