"""Simulated kernel: physical memory, THP policies, promotion engine."""

from repro.os.physmem import FrameState, PhysicalMemory, PhysMemStats
from repro.os.kernel import KernelParams, SimulatedKernel, Process
from repro.os.policies import (
    highest_frequency_order,
    round_robin_order,
    apply_process_bias,
)

__all__ = [
    "PhysicalMemory",
    "PhysMemStats",
    "FrameState",
    "SimulatedKernel",
    "KernelParams",
    "Process",
    "highest_frequency_order",
    "round_robin_order",
    "apply_process_bias",
]
