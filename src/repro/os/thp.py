"""Linux transparent huge page baselines (§2.1).

Two mechanisms are modelled:

* **Greedy synchronous promotion**: on the first fault into a 2MB-
  eligible region, Linux tries to back the whole region with a huge
  page immediately, zeroing 512x the data (charged in timing). Under
  fragmentation the allocation falls back to a 4KB page, and —
  crucially for Fig. 1 — the huge pages that *are* available get
  consumed in fault order, not in TLB-benefit order.
* **khugepaged**: the background daemon that scans a bounded number of
  base pages per interval (4096, the figure the paper quotes when
  comparing against HawkEye) and collapses fully-mapped regions it
  passes over, round-robin across the address space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.os.physmem import OutOfMemoryError, PhysicalMemory
from repro.vm.address import PAGES_PER_HUGE, huge_prefix
from repro.vm.pagetable import PageTable


@dataclass
class THPStats:
    """Behaviour counters for the Linux THP model."""

    fault_huge: int = 0
    fault_base: int = 0
    fault_huge_failed: int = 0
    khugepaged_promotions: int = 0
    khugepaged_pages_scanned: int = 0
    bloat_pages: int = 0


class GreedyTHP:
    """Fault-time huge page allocation, like THP ``enabled=always``."""

    def __init__(
        self,
        physmem: PhysicalMemory,
        enabled: bool = True,
        allow_compaction: bool = True,
    ) -> None:
        self.physmem = physmem
        self.enabled = enabled
        self.allow_compaction = allow_compaction
        self.stats = THPStats()

    def handle_fault(
        self, page_table: PageTable, vaddr: int, region_eligible: bool = True
    ) -> tuple[bool, int]:
        """Back the faulting address; returns ``(used_huge, migrated)``.

        ``region_eligible`` reflects VMA alignment/size eligibility (a
        region smaller than 2MB cannot take a huge page).
        """
        if self.enabled and region_eligible:
            prefix = huge_prefix(vaddr)
            if not page_table.region_base_pages(prefix):
                try:
                    frame, migrated = self.physmem.allocate_huge(
                        allow_compaction=self.allow_compaction
                    )
                except OutOfMemoryError:
                    self.stats.fault_huge_failed += 1
                else:
                    page_table.map_huge(vaddr, frame)
                    self.stats.fault_huge += 1
                    # Every base page beyond the one faulted on is
                    # speculative: memory bloat until proven accessed.
                    self.stats.bloat_pages += PAGES_PER_HUGE - 1
                    return True, migrated
        self.physmem.allocate_base()
        page_table.map_base(vaddr, self.physmem.stats.base_allocations)
        self.stats.fault_base += 1
        return False, 0


class Khugepaged:
    """Background collapse daemon with a bounded scan rate."""

    def __init__(
        self,
        physmem: PhysicalMemory,
        scan_pages_per_interval: int = 4096,
        allow_compaction: bool = True,
    ) -> None:
        self.physmem = physmem
        self.scan_budget = scan_pages_per_interval
        self.allow_compaction = allow_compaction
        self.stats = THPStats()
        self._cursor: dict[int, int] = {}

    def scan_interval(self, page_table: PageTable) -> list[int]:
        """One wakeup: scan up to the budget, collapse what qualifies.

        Returns the 2MB region prefixes promoted this interval. The
        scan resumes where the previous interval stopped (Linux's
        ``khugepaged_scan`` cursor) and wraps around.
        """
        regions = page_table.touched_huge_regions()
        if not regions:
            return []
        start = self._cursor.get(page_table.pid, 0) % len(regions)
        scanned_pages = 0
        promoted: list[int] = []
        index = start
        steps = 0
        while scanned_pages < self.scan_budget and steps < len(regions):
            prefix = regions[index % len(regions)]
            index += 1
            steps += 1
            if page_table.is_promoted(prefix):
                continue
            mapped = page_table.region_base_pages(prefix)
            scanned_pages += PAGES_PER_HUGE
            self.stats.khugepaged_pages_scanned += PAGES_PER_HUGE
            if not mapped:
                continue
            try:
                frame, _ = self.physmem.allocate_huge(
                    allow_compaction=self.allow_compaction
                )
            except OutOfMemoryError:
                break
            remapped = page_table.promote(prefix, frame)
            self.physmem.release_base_pages(remapped)
            promoted.append(prefix)
            self.stats.khugepaged_promotions += 1
        self._cursor[page_table.pid] = index % len(regions)
        return promoted
