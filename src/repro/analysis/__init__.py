"""Analysis tools: reuse-distance characterization, utility curves, reports."""

from repro.analysis.reuse import (
    AccessClass,
    PageReuseProfile,
    classify_pages,
    reuse_distances,
)
from repro.analysis.utility import UtilityCurve, UtilityPoint, utility_curve
from repro.analysis import report

__all__ = [
    "reuse_distances",
    "classify_pages",
    "AccessClass",
    "PageReuseProfile",
    "utility_curve",
    "UtilityCurve",
    "UtilityPoint",
    "report",
]
