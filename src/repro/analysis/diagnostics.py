"""Per-structure diagnostics for simulation runs.

Collects the detailed hardware-state counters a run produces — per-TLB
hit/miss/eviction rates, walker PWC behaviour, PCC operational stats,
kernel memory state — into one report. Useful when a result looks off:
the breakdown shows *where* translations were served and where the
cycles went.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import report
from repro.engine.cpu import Core
from repro.engine.simulation import SimulationResult
from repro.os.kernel import SimulatedKernel


@dataclass
class TLBBreakdown:
    """One TLB structure's behaviour over a run."""

    name: str
    hits: int
    misses: int
    evictions: int
    invalidations: int
    occupancy: int

    @property
    def hit_rate(self) -> float:
        """Hits over accesses for this structure."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def tlb_breakdown(core: Core) -> list[TLBBreakdown]:
    """Per-structure counters for one core's hierarchy."""
    out = []
    for tlb in (core.tlb.l1_base, core.tlb.l1_huge, core.tlb.l1_giga,
                core.tlb.l2):
        out.append(
            TLBBreakdown(
                name=tlb.name,
                hits=tlb.stats.hits,
                misses=tlb.stats.misses,
                evictions=tlb.stats.evictions,
                invalidations=tlb.stats.invalidations,
                occupancy=tlb.occupancy(),
            )
        )
    return out


def render_core(core: Core) -> str:
    """Hardware-side diagnostic table for one core."""
    rows = [
        [
            entry.name,
            entry.hits,
            entry.misses,
            report.percent(entry.hit_rate),
            entry.evictions,
            entry.invalidations,
            entry.occupancy,
        ]
        for entry in tlb_breakdown(core)
    ]
    tlb_table = report.format_table(
        ["Structure", "Hits", "Misses", "Hit rate", "Evict", "Inval", "Live"],
        rows,
        title=f"Core {core.core_id} — TLB hierarchy",
    )
    walker = core.walker.stats
    pcc = core.pcc.stats
    lines = [
        tlb_table,
        (
            f"walker: {walker.walks} walks, "
            f"{walker.refs_per_walk:.2f} refs/walk, "
            f"PWC hits {walker.pwc_hits} / misses {walker.pwc_misses}"
        ),
        (
            f"2MB PCC: {pcc.accesses} accesses, {pcc.hits} hits, "
            f"{pcc.insertions} inserts, {pcc.evictions} evicts, "
            f"{pcc.decays} decays, {pcc.invalidations} invalidations"
        ),
    ]
    if core.pcc_1gb is not None:
        giga = core.pcc_1gb.stats
        lines.append(
            f"1GB PCC: {giga.accesses} accesses, {giga.insertions} inserts"
        )
    return "\n".join(lines)


def render_kernel(kernel: SimulatedKernel) -> str:
    """Kernel/memory-side diagnostic summary."""
    memory = kernel.physmem
    lines = [
        "Kernel memory state:",
        (
            f"  frames: {memory.total_frames} total, "
            f"{memory.free_huge_frames()} free, "
            f"{memory.huge_frames_in_use()} huge, "
            f"{memory.compactable_frames()} compactable"
        ),
        (
            f"  allocations: {memory.stats.base_allocations} base pages, "
            f"{memory.stats.huge_allocations} huge "
            f"({memory.stats.huge_failures} failed), "
            f"{memory.stats.compactions} compactions moving "
            f"{memory.stats.pages_migrated} pages"
        ),
    ]
    for pid, process in kernel.processes.items():
        table = process.page_table
        lines.append(
            f"  pid {pid}: {table.mapped_base_page_count()} base PTEs, "
            f"{len(table.promoted_regions())} huge, "
            f"{len(table.giga_promoted_regions())} giga, "
            f"{table.stats.promotions} promoted / "
            f"{table.stats.demotions} demoted"
        )
    if kernel._engine is not None:
        stats = kernel._engine.stats
        lines.append(
            f"  PCC engine: {stats.promotions} promotions "
            f"({stats.promotion_failures} failed), {stats.demotions} "
            f"demotions, {stats.giga_promotions} giga, "
            f"{stats.candidates_seen} candidates seen over "
            f"{stats.intervals} intervals"
        )
    return "\n".join(lines)


def render_run(result: SimulationResult) -> str:
    """Cycle-level summary of a finished run."""
    lines = [
        f"policy={result.policy} cycles={result.total_cycles:,} "
        f"accesses={result.accesses:,} "
        f"TLB-miss={report.percent(result.walk_rate)}",
    ]
    for index, breakdown in enumerate(result.per_core):
        lines.append(
            f"  core {index}: base={breakdown.base:,} "
            f"translation={breakdown.translation:,} "
            f"kernel={breakdown.kernel:,} "
            f"(translation share {report.percent(breakdown.translation_share)})"
        )
    return "\n".join(lines)
