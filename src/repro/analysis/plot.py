"""ASCII line plots for terminal-rendered figures.

The benchmark harness prints the paper's series as numbers; these
helpers additionally render them as small terminal plots so the curve
*shapes* — rises, plateaus, crossovers — are visible at a glance in CI
logs and example output. No plotting dependency is needed or wanted.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

#: glyphs assigned to series in order
_GLYPHS = "*o+x@#%&"


@dataclass(frozen=True)
class Series:
    """One named line of a plot."""

    label: str
    values: Sequence[float]


def line_plot(
    series: list[Series],
    *,
    x_labels: Sequence[object] | None = None,
    width: int = 60,
    height: int = 12,
    y_label: str = "",
    x_label: str = "",
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render one or more equally-sampled series as an ASCII chart.

    Points are linearly placed on a ``width`` x ``height`` grid; later
    series draw over earlier ones where they collide. A legend maps
    glyphs to labels, and the y-axis prints its extremes.
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(s.values) for s in series}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    (points,) = lengths
    if points < 2:
        raise ValueError("need at least two points per series")
    if len(series) > len(_GLYPHS):
        raise ValueError(f"at most {len(_GLYPHS)} series supported")

    all_values = [v for s in series for v in s.values]
    low = min(all_values) if y_min is None else y_min
    high = max(all_values) if y_max is None else y_max
    if high == low:
        high = low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, entry in enumerate(series):
        glyph = _GLYPHS[index]
        for i, value in enumerate(entry.values):
            column = round(i * (width - 1) / (points - 1))
            scaled = (value - low) / (high - low)
            row = height - 1 - round(scaled * (height - 1))
            row = max(0, min(height - 1, row))
            grid[row][column] = glyph

    lines = []
    if y_label:
        lines.append(y_label)
    top_tag = f"{high:.2f} "
    bottom_tag = f"{low:.2f} "
    pad = max(len(top_tag), len(bottom_tag))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_tag.rjust(pad)
        elif row_index == height - 1:
            prefix = bottom_tag.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(prefix + "|" + "".join(row))
    lines.append(" " * pad + "+" + "-" * width)
    if x_labels is not None:
        marks = _spread_labels([str(x) for x in x_labels], width)
        lines.append(" " * (pad + 1) + marks)
    if x_label:
        lines.append(" " * (pad + 1) + x_label)
    legend = "   ".join(
        f"{_GLYPHS[i]} {entry.label}" for i, entry in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def _spread_labels(labels: list[str], width: int) -> str:
    """Place tick labels under their approximate x positions."""
    out = [" "] * width
    points = len(labels)
    for i, label in enumerate(labels):
        column = round(i * (width - 1) / max(1, points - 1))
        start = min(max(0, column - len(label) // 2), width - len(label))
        for j, ch in enumerate(label):
            out[start + j] = ch
    return "".join(out)


def utility_plot(curves, references: dict[str, float] | None = None,
                 width: int = 60, height: int = 12) -> str:
    """Plot one or more utility curves plus flat reference lines.

    ``curves`` are :class:`repro.analysis.utility.UtilityCurve` objects
    sharing a budget axis; ``references`` adds horizontal lines (e.g.
    the all-huge ideal).
    """
    curves = list(curves)
    if not curves:
        raise ValueError("need at least one curve")
    points = len(curves[0].points)
    series = [
        Series(label=f"{c.policy}", values=c.speedups()) for c in curves
    ]
    for label, value in (references or {}).items():
        series.append(Series(label=label, values=[value] * points))
    return line_plot(
        series,
        x_labels=[p.budget_percent for p in curves[0].points],
        width=width,
        height=height,
        y_label="speedup",
        x_label="huge-page budget (% of footprint)",
    )
