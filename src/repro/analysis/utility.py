"""Performance utility curves (§4, Fig. 5).

A utility curve runs one workload repeatedly while capping huge pages
at N% of the application footprint, N in {0, 1, 2, 4, 8, 16, 32, 64,
~100}. The 0% point is the 4KB baseline; ~100% promotes until the PCC
(or baseline policy) runs out of candidates. Speedups are relative to
the 0% point; the walk rate series is the companion bottom panel.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.engine.simulation import SimulationResult, Simulator
from repro.engine.system import ProcessWorkload
from repro.os.kernel import HugePagePolicy, KernelParams

#: The paper's budget axis, in percent of application footprint.
BUDGET_PERCENTS = (0, 1, 2, 4, 8, 16, 32, 64, 100)


@dataclass
class UtilityPoint:
    """One budget point of a utility curve."""

    budget_percent: int
    budget_regions: int | None
    cycles: int
    walk_rate: float
    promotions: int
    speedup: float = 1.0  # filled in once the 0% point is known


@dataclass
class UtilityCurve:
    """A full 9-point curve for one workload under one policy."""

    workload: str
    policy: str
    points: list[UtilityPoint] = field(default_factory=list)

    def speedups(self) -> list[float]:
        """Speedup at each budget point, in axis order."""
        return [p.speedup for p in self.points]

    def walk_rates(self) -> list[float]:
        """PTW rate at each budget point (the bottom panel)."""
        return [p.walk_rate for p in self.points]

    def peak_speedup(self) -> float:
        """Best speedup anywhere on the curve."""
        return max(p.speedup for p in self.points)

    def budget_for_fraction_of_peak(self, fraction: float) -> int | None:
        """Smallest budget % reaching ``fraction`` of the peak speedup.

        The paper's headline claim is that ~4% reaches >75% of peak.
        """
        peak = self.peak_speedup()
        target = 1.0 + (peak - 1.0) * fraction
        for point in self.points:
            if point.speedup >= target:
                return point.budget_percent
        return None


def budget_regions_for(workload: ProcessWorkload, percent: int) -> int | None:
    """Footprint budget in 2MB regions for one percent point.

    ``None`` encodes the ~100% (unlimited candidates) configuration;
    nonzero percents round up so small workloads still get one region.
    """
    if percent >= 100:
        return None
    total = workload.footprint_huge_regions()
    return max(1, int(round(total * percent / 100.0))) if percent > 0 else 0


def run_budget_point(
    workload: ProcessWorkload,
    config: SystemConfig,
    policy: HugePagePolicy,
    budget_regions: int | None,
    fragmentation: float = 0.0,
) -> SimulationResult:
    """One simulation at one footprint budget."""
    if budget_regions == 0:
        policy_to_run = HugePagePolicy.NONE
        params = None
    else:
        policy_to_run = policy
        params = KernelParams(
            regions_to_promote=config.os.regions_to_promote,
            promotion_policy=config.os.promotion_policy,
            scan_pages_per_interval=config.os.scan_pages_per_interval,
            promotion_budget_regions=budget_regions,
        )
    simulator = Simulator(
        config, policy=policy_to_run, params=params, fragmentation=fragmentation
    )
    return simulator.run([copy.deepcopy(workload)])


def utility_curve(
    workload: ProcessWorkload,
    config: SystemConfig,
    policy: HugePagePolicy = HugePagePolicy.PCC,
    budgets: tuple[int, ...] = BUDGET_PERCENTS,
    fragmentation: float = 0.0,
) -> UtilityCurve:
    """Sweep the budget axis for one workload/policy pair."""
    curve = UtilityCurve(workload=workload.name, policy=policy.value)
    baseline_cycles: int | None = None
    for percent in budgets:
        regions = budget_regions_for(workload, percent)
        result = run_budget_point(
            workload, config, policy, regions, fragmentation=fragmentation
        )
        if baseline_cycles is None:
            baseline_cycles = result.total_cycles
        curve.points.append(
            UtilityPoint(
                budget_percent=percent,
                budget_regions=regions,
                cycles=result.total_cycles,
                walk_rate=result.walk_rate,
                promotions=result.promotions,
                speedup=baseline_cycles / result.total_cycles,
            )
        )
    return curve
