"""Page-level reuse-distance characterization (§3.1, Fig. 2).

For every page touched by a trace we compute the mean *reuse distance*
— the number of accesses to other pages between two accesses to the
page — at both 4KB and 2MB granularity, then classify each 4KB page by
the paper's three access categories:

* **TLB-friendly**: low 4KB reuse distance; the base-page TLB already
  retains the translation, so promotion adds little.
* **HUB** (High-reUse TLB-sensitive): high 4KB reuse distance but low
  2MB reuse distance — the page thrashes the base-page TLB while its
  enclosing region stays hot. These are the promotion candidates the
  PCC exists to find.
* **Low-reuse**: high at both granularities; even a huge page's
  translation would not survive in the TLB.

The threshold defaults to 1024, "a common number of entries in a CPU's
second-level TLB", as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.trace.events import Trace
from repro.vm.address import BASE_PAGE_SHIFT, HUGE_PAGE_SHIFT

#: Paper's "low reuse distance" boundary: L2 TLB entry count.
DEFAULT_THRESHOLD = 1024


class AccessClass(enum.Enum):
    """Fig. 2's three access-pattern categories."""

    TLB_FRIENDLY = "tlb-friendly"
    HUB = "hub"
    LOW_REUSE = "low-reuse"


@dataclass
class PageReuseProfile:
    """Reuse statistics for all pages of one trace.

    ``pages`` maps each 4KB VPN to its mean reuse distance;
    ``regions`` maps each 2MB prefix to the region-granular distance.
    """

    pages: dict[int, float]
    regions: dict[int, float]
    threshold: int = DEFAULT_THRESHOLD

    def classify(self, vpn: int) -> AccessClass:
        """Category of one 4KB page per the paper's quadrants."""
        page_distance = self.pages[vpn]
        region_distance = self.regions[vpn >> (HUGE_PAGE_SHIFT - BASE_PAGE_SHIFT)]
        if page_distance < self.threshold:
            return AccessClass.TLB_FRIENDLY
        if region_distance < self.threshold:
            return AccessClass.HUB
        return AccessClass.LOW_REUSE

    def hub_regions(self) -> list[int]:
        """2MB regions containing at least one HUB page, hottest first.

        Regions are ordered by their HUB page count — the oracle
        ranking the PCC's walk-frequency counters approximate.
        """
        counts: dict[int, int] = {}
        for vpn in self.pages:
            if self.classify(vpn) is AccessClass.HUB:
                region = vpn >> (HUGE_PAGE_SHIFT - BASE_PAGE_SHIFT)
                counts[region] = counts.get(region, 0) + 1
        return [r for r, _ in sorted(counts.items(), key=lambda kv: -kv[1])]

    def scatter_points(self) -> list[tuple[float, float, AccessClass]]:
        """Fig. 2's scatter data: (4KB distance, 2MB distance, class)."""
        points = []
        for vpn, page_distance in self.pages.items():
            region = vpn >> (HUGE_PAGE_SHIFT - BASE_PAGE_SHIFT)
            points.append((page_distance, self.regions[region], self.classify(vpn)))
        return points

    def class_counts(self) -> dict[AccessClass, int]:
        """Page counts per access class (the Fig. 2 summary)."""
        counts = {cls: 0 for cls in AccessClass}
        for vpn in self.pages:
            counts[self.classify(vpn)] += 1
        return counts


def reuse_distances(region_ids: np.ndarray) -> dict[int, float]:
    """Mean reuse distance per region id over one access sequence.

    The distance between two consecutive accesses to the same region is
    the number of intervening accesses — which, being between
    consecutive same-region uses, are all "accesses to other pages",
    exactly the paper's definition. Back-to-back repeats therefore
    contribute distance 0 (perfect locality); a region touched exactly
    once has no observable reuse and reports ``inf``.
    """
    region_ids = np.asarray(region_ids)
    if region_ids.size == 0:
        return {}
    last_seen: dict[int, int] = {}
    totals: dict[int, float] = {}
    counts: dict[int, int] = {}
    for index, region in enumerate(region_ids.tolist()):
        previous = last_seen.get(region)
        if previous is not None:
            totals[region] = totals.get(region, 0.0) + (index - previous - 1)
            counts[region] = counts.get(region, 0) + 1
        last_seen[region] = index

    result: dict[int, float] = {}
    for region in last_seen:
        if region in counts:
            result[region] = totals[region] / counts[region]
        else:
            result[region] = float("inf")  # touched once: no reuse
    return result


def profile_trace(trace: Trace, threshold: int = DEFAULT_THRESHOLD) -> PageReuseProfile:
    """Compute the full Fig. 2 characterization for one trace."""
    vpns = trace.addresses >> np.uint64(BASE_PAGE_SHIFT)
    prefixes = trace.addresses >> np.uint64(HUGE_PAGE_SHIFT)
    return PageReuseProfile(
        pages=reuse_distances(vpns),
        regions=reuse_distances(prefixes),
        threshold=threshold,
    )


def classify_pages(
    trace: Trace, threshold: int = DEFAULT_THRESHOLD
) -> dict[int, AccessClass]:
    """Classification of every touched 4KB page of a trace."""
    profile = profile_trace(trace, threshold)
    return {vpn: profile.classify(vpn) for vpn in profile.pages}
