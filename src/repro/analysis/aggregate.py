"""Aggregation across datasets, the paper's reporting convention.

§4: "We report results for each of our 3 graph workloads as the
geomean performance of both sorted and unsorted networks, totalling 6
datasets for each graph workload." These helpers compute geometric
means over runs and assemble the 6-dataset matrix for one graph
workload.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; rejects empty input and non-positive values."""
    values = list(values)
    if not values:
        raise ValueError("geomean of no values")
    if any(v <= 0 for v in values):
        raise ValueError(f"geomean requires positive values, got {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def geomean_series(series: Sequence[Sequence[float]]) -> list[float]:
    """Pointwise geometric mean of equally-long series (curve averaging)."""
    lengths = {len(s) for s in series}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    return [geomean(column) for column in zip(*series)]


@dataclass(frozen=True)
class DatasetVariant:
    """One (network, ordering) dataset of the paper's 6-way matrix."""

    dataset: str
    sorted_dbg: bool

    @property
    def label(self) -> str:
        """Human-readable "<dataset>/<ordering>" tag."""
        ordering = "sorted" if self.sorted_dbg else "unsorted"
        return f"{self.dataset}/{ordering}"


#: The paper's dataset matrix: 3 networks x {unsorted, DBG-sorted}.
DATASET_MATRIX: tuple[DatasetVariant, ...] = tuple(
    DatasetVariant(dataset, sorted_dbg)
    for dataset in ("kronecker", "social", "web")
    for sorted_dbg in (False, True)
)


def matrix_speedups(
    app: str,
    run_one,
    variants: Sequence[DatasetVariant] = DATASET_MATRIX,
) -> tuple[dict[str, float], float]:
    """Run ``run_one(app, variant) -> speedup`` over the matrix.

    Returns per-variant speedups plus their geomean — the number the
    paper's figures plot per graph workload.
    """
    per_variant = {
        variant.label: run_one(app, variant) for variant in variants
    }
    return per_variant, geomean(per_variant.values())
