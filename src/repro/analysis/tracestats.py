"""Trace statistics: what a workload's address stream looks like.

Summarizes a trace before any simulation: footprint and touched pages,
page-level compression ratio (a locality proxy), per-VMA access
shares, and the distribution of accesses across 2MB regions (whose
skew predicts how much a small promotion budget can harvest). Used to
calibrate the workload models against the paper's Table 1 / Fig. 1
characteristics, and handy when writing new workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis import report
from repro.trace.events import Trace, compress_to_pages
from repro.vm.address import BASE_PAGE_SHIFT, HUGE_PAGE_SHIFT
from repro.vm.layout import AddressSpaceLayout


@dataclass
class VMAShare:
    """One VMA's slice of the trace."""

    name: str
    accesses: int
    share: float
    touched_pages: int
    regions: int


@dataclass
class TraceStats:
    """Full summary of one trace."""

    name: str
    accesses: int
    footprint_bytes: int
    unique_pages: int
    unique_regions: int
    compression_ratio: float
    #: fraction of all accesses landing in the hottest 10% of regions
    top_decile_region_share: float
    vma_shares: list[VMAShare] = field(default_factory=list)


def analyze(trace: Trace, layout: AddressSpaceLayout | None = None) -> TraceStats:
    """Compute the summary for ``trace`` (VMA shares need the layout)."""
    addresses = trace.addresses
    vpns, counts = compress_to_pages(addresses)
    unique_pages = int(np.unique(vpns).size) if vpns.size else 0
    regions = addresses >> np.uint64(HUGE_PAGE_SHIFT)
    unique_regions = int(np.unique(regions).size) if regions.size else 0

    top_share = 0.0
    if regions.size:
        _, region_counts = np.unique(regions, return_counts=True)
        region_counts = np.sort(region_counts)[::-1]
        top = max(1, int(np.ceil(region_counts.size * 0.1)))
        top_share = float(region_counts[:top].sum() / regions.size)

    stats = TraceStats(
        name=trace.name,
        accesses=len(trace),
        footprint_bytes=trace.footprint_bytes,
        unique_pages=unique_pages,
        unique_regions=unique_regions,
        compression_ratio=len(trace) / max(1, len(vpns)),
        top_decile_region_share=top_share,
    )
    if layout is not None:
        for vma in layout:
            inside = (addresses >= np.uint64(vma.start)) & (
                addresses < np.uint64(vma.end)
            )
            hits = int(inside.sum())
            if hits == 0:
                continue
            vma_pages = addresses[inside] >> np.uint64(BASE_PAGE_SHIFT)
            stats.vma_shares.append(
                VMAShare(
                    name=vma.name,
                    accesses=hits,
                    share=hits / max(1, len(trace)),
                    touched_pages=int(np.unique(vma_pages).size),
                    regions=len(vma.huge_regions),
                )
            )
        stats.vma_shares.sort(key=lambda s: -s.accesses)
    return stats


def render(stats: TraceStats) -> str:
    """Human-readable summary table."""
    lines = [
        f"trace {stats.name!r}: {stats.accesses:,} accesses, "
        f"footprint {report.bytes_human(stats.footprint_bytes)} "
        f"({stats.unique_regions} regions, {stats.unique_pages:,} pages "
        f"touched)",
        f"  page-run compression: {stats.compression_ratio:.1f}x   "
        f"hottest 10% of regions absorb "
        f"{report.percent(stats.top_decile_region_share)} of accesses",
    ]
    if stats.vma_shares:
        rows = [
            [
                entry.name,
                entry.accesses,
                report.percent(entry.share),
                entry.touched_pages,
                entry.regions,
            ]
            for entry in stats.vma_shares
        ]
        lines.append(
            report.format_table(
                ["VMA", "Accesses", "Share", "Pages", "Regions"], rows
            )
        )
    return "\n".join(lines)
