"""Plain-text rendering of experiment results.

Every benchmark prints the same rows/series the paper's tables and
figures report; these helpers keep the formatting consistent: aligned
columns, percentages with one decimal, speedups with two.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Monospace table with left-aligned first column."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(_row(headers, widths))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(_row(row, widths))
    return "\n".join(lines)


def _row(cells: Sequence[str], widths: Sequence[int]) -> str:
    parts = []
    for i, (cell, width) in enumerate(zip(cells, widths)):
        parts.append(cell.ljust(width) if i == 0 else cell.rjust(width))
    return " | ".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def percent(value: float, decimals: int = 1) -> str:
    """0.153 -> '15.3%'."""
    return f"{value * 100:.{decimals}f}%"


def speedup(value: float) -> str:
    """1.28 -> '1.28x'."""
    return f"{value:.2f}x"


def series(label: str, values: Iterable[float], fmt: str = "{:.2f}") -> str:
    """One figure line: 'label: v0 v1 v2 ...'."""
    return f"{label}: " + " ".join(fmt.format(v) for v in values)


def bytes_human(count: int) -> str:
    """Approximate human-readable byte count."""
    value = float(count)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or unit == "TB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    raise AssertionError("unreachable")
