"""Reproduction of "Architectural Support for Optimizing Huge Page
Selection Within the OS" (Manocha et al., MICRO 2023).

The package implements the paper's Promotion Candidate Cache (PCC)
together with every substrate its evaluation rests on: a TLB hierarchy
and page-table-walker simulator, a simulated Linux-like kernel with
greedy THP, khugepaged, and HawkEye baselines, physical memory with
fragmentation and compaction, the eight evaluation workloads as
address-stream generators, and per-figure experiment harnesses.

Quickstart::

    from repro import quick_compare
    from repro.workloads import build_workload

    results = quick_compare(build_workload("BFS", scale=12))
    print(results["pcc"].walk_rate, results["baseline"].walk_rate)
"""

from repro.config import (
    OSConfig,
    PCCConfig,
    SystemConfig,
    TimingConfig,
    TLBConfig,
    TLBHierarchyConfig,
    WalkerConfig,
    paper_config,
    scaled_config,
    tiny_config,
)
from repro.core.pcc import PromotionCandidateCache
from repro.engine.simulation import SimulationResult, Simulator
from repro.engine.system import ProcessWorkload, ThreadWorkload
from repro.os.kernel import HugePagePolicy, KernelParams

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "TLBConfig",
    "TLBHierarchyConfig",
    "PCCConfig",
    "WalkerConfig",
    "TimingConfig",
    "OSConfig",
    "paper_config",
    "scaled_config",
    "tiny_config",
    "PromotionCandidateCache",
    "Simulator",
    "SimulationResult",
    "ProcessWorkload",
    "ThreadWorkload",
    "HugePagePolicy",
    "KernelParams",
    "quick_compare",
]


def quick_compare(workload, config=None, fragmentation: float = 0.0):
    """Run one workload under baseline / Linux THP / PCC / ideal.

    Returns a dict of policy name -> :class:`SimulationResult`; the
    minimal end-to-end demonstration of the co-design.
    """
    import copy

    from repro.config import scaled_config as _scaled

    config = config or _scaled()
    results = {}
    for key, policy in (
        ("baseline", HugePagePolicy.NONE),
        ("linux-thp", HugePagePolicy.LINUX_THP),
        ("pcc", HugePagePolicy.PCC),
        ("ideal", HugePagePolicy.IDEAL),
    ):
        sim = Simulator(config, policy=policy, fragmentation=fragmentation)
        results[key] = sim.run([copy.deepcopy(workload)])
    return results
