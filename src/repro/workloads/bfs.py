"""Breadth-First Search workload (GAP-style, push direction).

Runs real top-down BFS over the CSR graph and records every data
access the traversal performs: offsets reads for the frontier,
sequential neighbor-array scans, and the irregular ``parent`` gather on
each destination — the pointer-indirect pattern whose frequency tracks
vertex degree and makes graph analytics HUB-rich (§3.1).
"""

from __future__ import annotations

import numpy as np

from repro.engine.system import ProcessWorkload
from repro.trace.events import Trace
from repro.trace.recorder import TraceRecorder
from repro.workloads import gapbase
from repro.workloads.graph import CSRGraph


def bfs_trace(
    graph: CSRGraph,
    source: int = 0,
    prop_stride: int = 512,
    max_accesses: int | None = None,
    direction_optimizing: bool = False,
    bottom_up_threshold: float = 1 / 16,
    bottom_up_probe_cap: int = 4,
) -> tuple[Trace, gapbase.GraphLayout]:
    """Execute BFS from ``source`` and record its access stream.

    With ``direction_optimizing`` (what the real GAP implementation
    does), levels whose frontier exceeds ``bottom_up_threshold`` of the
    vertices switch to bottom-up: instead of pushing along the
    frontier's out-edges, the traversal sweeps every undiscovered
    vertex sequentially and probes a few of its neighbors for a parent
    (early exit, modelled by ``bottom_up_probe_cap``). The sweep is
    sequential over the property array — markedly more TLB-friendly —
    which is why DO-BFS is known to soften BFS's memory behaviour.
    """
    if not 0 <= source < graph.nodes:
        raise ValueError(f"source {source} outside vertex range")
    glayout = gapbase.place_graph(graph, properties=("parent",), prop_stride=prop_stride)
    recorder = TraceRecorder(f"bfs.{graph.name}", glayout.layout)

    parent = np.full(graph.nodes, -1, dtype=np.int64)
    parent[source] = source
    frontier = np.array([source], dtype=np.int64)
    while frontier.size > 0:
        bottom_up = (
            direction_optimizing
            and frontier.size > graph.nodes * bottom_up_threshold
        )
        if bottom_up:
            fresh = _record_bottom_up_level(
                recorder, glayout, graph, parent, frontier, bottom_up_probe_cap
            )
        else:
            edge_indices, targets = gapbase.expand_edges(graph, frontier)
            gapbase.record_frontier_expansion(
                recorder, glayout, frontier, edge_indices, targets, "parent"
            )
            fresh = targets[parent[targets] < 0]
        if fresh.size:
            # claim each newly discovered vertex once (stable first-wins)
            fresh = np.unique(fresh)
            parent[fresh] = 0
            recorder.record(glayout.prop_addr("parent", fresh))
        frontier = fresh.astype(np.int64)
        if max_accesses is not None and len(recorder) >= max_accesses:
            break
    trace = gapbase.make_trace(
        "bfs",
        recorder,
        graph,
        {"source": source, "direction_optimizing": direction_optimizing},
    )
    return trace, glayout


def _record_bottom_up_level(
    recorder: TraceRecorder,
    glayout: gapbase.GraphLayout,
    graph: CSRGraph,
    parent: np.ndarray,
    frontier: np.ndarray,
    probe_cap: int,
) -> np.ndarray:
    """One bottom-up step: sweep undiscovered vertices, probe neighbors.

    Returns the vertices discovered this level (those with any frontier
    neighbor among the capped probes — an approximation of GAP's
    early-exit scan that preserves the access shape).
    """
    unvisited = np.flatnonzero(parent < 0).astype(np.int64)
    if unvisited.size == 0:
        return np.empty(0, dtype=np.int64)
    # sequential sweep: every undiscovered vertex's parent and offsets
    recorder.record(glayout.prop_addr("parent", unvisited))
    recorder.record(glayout.offsets_addr(unvisited))
    starts = graph.offsets[unvisited]
    degrees = np.minimum(
        graph.offsets[unvisited + 1] - starts, probe_cap
    ).astype(np.int64)
    total = int(degrees.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    repeats = np.repeat(starts, degrees)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(degrees) - degrees, degrees
    )
    edge_indices = repeats + within
    probed = graph.neighbors[edge_indices].astype(np.int64)
    # the probe reads the neighbor id, then that neighbor's parent flag
    recorder.record(
        gapbase.interleave_streams(
            glayout.neighbors_addr(edge_indices),
            glayout.prop_addr("parent", probed),
        )
    )
    in_frontier = np.zeros(graph.nodes, dtype=bool)
    in_frontier[frontier] = True
    scanning = np.repeat(unvisited, degrees)
    found = np.unique(scanning[in_frontier[probed]])
    return found


def bfs_workload(
    graph: CSRGraph, source: int = 0, prop_stride: int = 512
) -> ProcessWorkload:
    """BFS as a single-thread process workload."""
    trace, glayout = bfs_trace(graph, source=source, prop_stride=prop_stride)
    return ProcessWorkload.single_thread(trace, glayout.layout)
