"""Multi-phase synthetic workload (§3.3.3, "Application Phases").

The paper observes that pages promoted before a phase change may stop
earning their huge frames, making demotion valuable — but its graph
workloads don't phase, so it leaves the study to future work. This
workload provides the missing stimulus: execution alternates between
two disjoint hot arenas (phase A hammers arena A while arena B idles,
then they swap), with a cold streamed region in the background so
contiguity stays scarce.

Under fragmentation, a promotion-only policy spends all frames on
phase A's regions and has nothing left when phase B begins; PCC-driven
demotion (§3.3.3) reclaims the now-cold frames and re-targets them.
"""

from __future__ import annotations

import numpy as np

from repro.engine.system import ProcessWorkload
from repro.trace import synthesis
from repro.trace.recorder import TraceRecorder
from repro.vm.layout import AddressSpaceLayout


def phased_workload(
    accesses_per_phase: int = 120_000,
    phases: int = 2,
    arena_bytes: int = 12 << 20,
    stream_bytes: int = 48 << 20,
    seed: int = 31,
) -> ProcessWorkload:
    """Alternating-hot-arena workload with a background stream.

    ``phases`` counts phase *switches* plus one: with the default 2,
    arena A is hot first, then arena B. Each phase mixes 80% hot-arena
    gathers with 20% background streaming.
    """
    if phases < 1:
        raise ValueError(f"need at least one phase, got {phases}")
    rng = np.random.default_rng(seed)
    layout = AddressSpaceLayout()
    arena_a = layout.allocate("arena_a", arena_bytes)
    arena_b = layout.allocate("arena_b", arena_bytes)
    stream = layout.allocate("stream", stream_bytes)
    recorder = TraceRecorder("phased", layout)

    stream_cursor = 0
    for phase in range(phases):
        arena = arena_a if phase % 2 == 0 else arena_b
        hot = synthesis.uniform_random(
            arena, accesses_per_phase * 4 // 5, rng, granularity=512
        )
        scan_count = accesses_per_phase - hot.size
        scan = synthesis.strided(
            stream, scan_count, stride=512, start=stream_cursor
        )
        stream_cursor = (stream_cursor + scan_count * 512) % stream_bytes
        # interleave hot gathers with the stream at fine grain
        ratio = max(1, hot.size // max(1, scan.size))
        recorder.record(_proportional_merge(hot, scan, ratio))
    return ProcessWorkload.single_thread(
        recorder.finish({"phases": phases}), layout
    )


def _proportional_merge(hot: np.ndarray, cold: np.ndarray, ratio: int
                        ) -> np.ndarray:
    """Merge ``ratio`` hot accesses per cold access, preserving order."""
    out = np.empty(hot.size + cold.size, dtype=np.uint64)
    hot_index = 0
    cold_index = 0
    position = 0
    while hot_index < hot.size or cold_index < cold.size:
        take = min(ratio, hot.size - hot_index)
        if take > 0:
            out[position : position + take] = hot[hot_index : hot_index + take]
            hot_index += take
            position += take
        if cold_index < cold.size:
            out[position] = cold[cold_index]
            cold_index += 1
            position += 1
    return out[:position]
