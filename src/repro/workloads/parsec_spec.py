"""PARSEC/SPEC workload proxies.

We cannot run the real SPEC CPU2017 and PARSEC binaries (no Pin, no
binaries), so each application is modelled as a synthetic address-
stream generator exercising the algorithmic access pattern the real
program is known for — the substitution DESIGN.md documents. Each
proxy's locality is calibrated qualitatively to Fig. 1's reported
behaviour:

* **canneal** — simulated-annealing element swaps: pairs of random
  netlist elements plus their neighbor lists. Highly irregular over a
  moderate footprint; clearly TLB-sensitive.
* **omnetpp** — discrete event simulation: a small hot event heap plus
  scattered module-state touches. Moderately TLB-sensitive.
* **xalancbmk** — XSLT/DOM processing: pointer chasing over a node pool
  in partially depth-first order plus a hot string table. Moderately
  TLB-sensitive.
* **dedup** — pipelined streaming compression: sequential chunk reads,
  a hash-table whose hot head absorbs most probes. TLB-friendly; the
  paper reports negligible huge-page sensitivity.
* **mcf** — network-simplex min-cost flow, cache-optimised layout:
  traversals over arcs with strong locality, small hot working set.
  Negligible TLB sensitivity.
"""

from __future__ import annotations

import numpy as np

from repro.engine.system import ProcessWorkload
from repro.trace import synthesis
from repro.trace.events import Trace
from repro.trace.recorder import TraceRecorder
from repro.vm.layout import AddressSpaceLayout

#: Default footprints (bytes), scaled ~1/8 of Table 1's figures to suit
#: the scaled TLB configuration benchmarks run with.
DEFAULT_FOOTPRINTS = {
    "canneal": 96 << 20,
    "omnetpp": 32 << 20,
    "xalancbmk": 48 << 20,
    "dedup": 96 << 20,
    "mcf": 72 << 20,
}


def canneal_trace(
    accesses: int = 600_000, footprint: int | None = None, seed: int = 21
) -> tuple[Trace, AddressSpaceLayout]:
    """Annealing swaps: random element pairs + neighbor-list reads."""
    footprint = footprint or DEFAULT_FOOTPRINTS["canneal"]
    rng = np.random.default_rng(seed)
    layout = AddressSpaceLayout()
    elements = layout.allocate("elements", footprint * 2 // 3)
    netlist = layout.allocate("netlist", footprint // 3)
    hot_nets = layout.allocate("hot_nets", 56 << 10)
    recorder = TraceRecorder("canneal", layout)
    # Annealing reads a hot set of contested nets continuously while
    # the swapped element pair is drawn from the whole netlist; the
    # random pair accesses are the TLB-sensitive minority (~12%).
    hot = synthesis.zipf_random(
        hot_nets, accesses * 7 // 8, rng, exponent=1.05, granularity=64
    )
    a = synthesis.uniform_random(elements, accesses // 16, rng, granularity=64)
    b = synthesis.uniform_random(netlist, accesses // 16, rng, granularity=256)
    recorder.record(_block_interleave(hot, _block_interleave(a, b, block=4), block=16))
    return recorder.finish({"kind": "parsec"}), layout


def omnetpp_trace(
    accesses: int = 500_000, footprint: int | None = None, seed: int = 22
) -> tuple[Trace, AddressSpaceLayout]:
    """Discrete event simulation: hot heap + scattered module state."""
    footprint = footprint or DEFAULT_FOOTPRINTS["omnetpp"]
    rng = np.random.default_rng(seed)
    layout = AddressSpaceLayout()
    heap = layout.allocate("event_heap", 56 << 10)
    modules = layout.allocate("modules", footprint - (56 << 10))
    recorder = TraceRecorder("omnetpp", layout)
    recorder.record(
        synthesis.hot_cold(
            heap, modules, accesses, rng, hot_probability=0.90, granularity=64
        )
    )
    return recorder.finish({"kind": "spec"}), layout


def xalancbmk_trace(
    accesses: int = 500_000, footprint: int | None = None, seed: int = 23
) -> tuple[Trace, AddressSpaceLayout]:
    """DOM traversal: pointer chase with periodic subtree restarts."""
    footprint = footprint or DEFAULT_FOOTPRINTS["xalancbmk"]
    rng = np.random.default_rng(seed)
    layout = AddressSpaceLayout()
    nodes = layout.allocate("dom_nodes", footprint * 3 // 4)
    strings = layout.allocate("string_table", footprint // 4)
    hot_subtree = layout.allocate("hot_subtree", 56 << 10)
    recorder = TraceRecorder("xalancbmk", layout)
    # Most traversal time stays within the working subtree; full-DOM
    # pointer chases (the TLB-hostile part) are the ~8% tail.
    subtree = synthesis.pointer_chase(
        hot_subtree, accesses * 3 // 4, rng, node_bytes=128, restart_every=256
    )
    wide_chase = synthesis.pointer_chase(
        nodes, accesses // 12, rng, node_bytes=128, restart_every=64
    )
    hot_strings = synthesis.zipf_random(
        strings, accesses - subtree.size - wide_chase.size, rng,
        exponent=1.3, granularity=32, hot_fraction=0.02,
    )
    mixed = _block_interleave(subtree, wide_chase, block=96)
    recorder.record(_block_interleave(mixed, hot_strings, block=64))
    return recorder.finish({"kind": "spec"}), layout


def dedup_trace(
    accesses: int = 500_000, footprint: int | None = None, seed: int = 24
) -> tuple[Trace, AddressSpaceLayout]:
    """Streaming dedup: sequential chunks + hot-headed hash probes."""
    footprint = footprint or DEFAULT_FOOTPRINTS["dedup"]
    rng = np.random.default_rng(seed)
    layout = AddressSpaceLayout()
    stream = layout.allocate("stream", footprint * 3 // 4)
    hashtable = layout.allocate("hash_table", footprint // 4)
    recorder = TraceRecorder("dedup", layout)
    scan = synthesis.sequential(stream, accesses * 7 // 8, stride=64)
    probes = synthesis.zipf_random(
        hashtable, accesses - scan.size, rng, exponent=1.4,
        granularity=64, hot_fraction=0.05,
    )
    recorder.record(_block_interleave(scan, probes, block=512))
    return recorder.finish({"kind": "parsec"}), layout


def mcf_trace(
    accesses: int = 500_000, footprint: int | None = None, seed: int = 25
) -> tuple[Trace, AddressSpaceLayout]:
    """Network simplex with cache-optimised layout: hot arc set."""
    footprint = footprint or DEFAULT_FOOTPRINTS["mcf"]
    rng = np.random.default_rng(seed)
    layout = AddressSpaceLayout()
    arcs = layout.allocate("arcs", footprint * 4 // 5)
    tree = layout.allocate("spanning_tree", footprint // 5)
    recorder = TraceRecorder("mcf", layout)
    # pricing sweeps are sequential; pivots touch a small hot tree
    sweep = synthesis.sequential(arcs, accesses * 3 // 4, stride=64)
    pivots = synthesis.zipf_random(
        tree, accesses - sweep.size, rng, exponent=1.3,
        granularity=64, hot_fraction=0.03,
    )
    recorder.record(_block_interleave(sweep, pivots, block=256))
    return recorder.finish({"kind": "spec"}), layout


def _block_interleave(a: np.ndarray, b: np.ndarray, block: int) -> np.ndarray:
    """Merge two streams in alternating blocks, preserving each order."""
    if a.size == 0:
        return b.copy()
    if b.size == 0:
        return a.copy()
    # Per block of `a`, splice in a proportional slice of `b`.
    out: list[np.ndarray] = []
    b_per_block = max(1, int(b.size / max(1, a.size / block)))
    ai = bi = 0
    while ai < a.size or bi < b.size:
        if ai < a.size:
            out.append(a[ai : ai + block])
            ai += block
        if bi < b.size:
            out.append(b[bi : bi + b_per_block])
            bi += b_per_block
    return np.concatenate(out)


def proxy_workload(name: str, accesses: int = 500_000, seed: int | None = None
                   ) -> ProcessWorkload:
    """Build one of the five proxies as a process workload."""
    builders = {
        "canneal": canneal_trace,
        "omnetpp": omnetpp_trace,
        "xalancbmk": xalancbmk_trace,
        "dedup": dedup_trace,
        "mcf": mcf_trace,
    }
    if name not in builders:
        raise KeyError(f"unknown proxy workload {name!r}; have {sorted(builders)}")
    kwargs = {"accesses": accesses}
    if seed is not None:
        kwargs["seed"] = seed
    trace, layout = builders[name](**kwargs)
    return ProcessWorkload.single_thread(trace, layout)
