"""Workload models: the paper's 8 applications as address-stream generators."""

from repro.workloads.graph import CSRGraph, GraphSpec, kronecker, social, web
from repro.workloads.registry import (
    WorkloadSpec,
    build_workload,
    graph_workload_names,
    workload_names,
)

__all__ = [
    "CSRGraph",
    "GraphSpec",
    "kronecker",
    "social",
    "web",
    "WorkloadSpec",
    "build_workload",
    "workload_names",
    "graph_workload_names",
]
