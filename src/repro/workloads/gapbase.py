"""Shared machinery for the GAP-style graph workloads.

Each graph workload lays out the CSR arrays plus its per-vertex
property arrays in a fresh address space, runs the real algorithm over
the graph, and emits the virtual addresses of the data its inner loop
touches — offsets reads, neighbor-array gathers, and the irregular
per-vertex property accesses that constitute the paper's HUBs.

Property arrays use a configurable byte stride per vertex. A stride of
64 (a cacheline, as produced by padding or by interleaved property
structs) inflates the *virtual* footprint to the multi-region scale the
PCC needs to discriminate, without inflating host memory: addresses are
computed, never dereferenced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.events import Trace
from repro.trace.recorder import TraceRecorder
from repro.vm.layout import AddressSpaceLayout
from repro.workloads.graph import CSRGraph

#: Element sizes mirroring GAP's data structures. Neighbor and weight
#: entries default to fat 512-byte records so that — as in the paper's
#: multi-GB datasets — the *streamed* edge data dominates the footprint
#: and the hot per-vertex property arrays are a few percent of it,
#: while the trace stays short enough for pure-Python simulation.
OFFSET_BYTES = 8
NEIGHBOR_BYTES = 512
WEIGHT_BYTES = 512


@dataclass
class GraphLayout:
    """CSR + property arrays placed into an address space."""

    layout: AddressSpaceLayout
    offsets_base: int
    neighbors_base: int
    prop_bases: dict[str, int]
    prop_stride: int
    neighbor_stride: int = NEIGHBOR_BYTES

    def offsets_addr(self, vertices: np.ndarray) -> np.ndarray:
        """Addresses of the CSR offsets entries for ``vertices``."""
        return np.uint64(self.offsets_base) + vertices.astype(np.uint64) * np.uint64(
            OFFSET_BYTES
        )

    def neighbors_addr(self, edge_indices: np.ndarray) -> np.ndarray:
        """Addresses of the neighbor-array entries at ``edge_indices``."""
        return np.uint64(self.neighbors_base) + edge_indices.astype(
            np.uint64
        ) * np.uint64(self.neighbor_stride)

    def prop_addr(self, name: str, vertices: np.ndarray) -> np.ndarray:
        """Addresses of property ``name`` for ``vertices`` (the HUBs)."""
        return np.uint64(self.prop_bases[name]) + vertices.astype(
            np.uint64
        ) * np.uint64(self.prop_stride)


def place_graph(
    graph: CSRGraph,
    properties: tuple[str, ...],
    prop_stride: int = 512,
    neighbor_stride: int = NEIGHBOR_BYTES,
    extra: dict[str, int] | None = None,
) -> GraphLayout:
    """Allocate the workload's VMAs deterministically."""
    layout = AddressSpaceLayout()
    offsets = layout.allocate("offsets", (graph.nodes + 1) * OFFSET_BYTES)
    neighbors = layout.allocate(
        "neighbors", max(1, graph.edges) * neighbor_stride
    )
    prop_bases: dict[str, int] = {}
    for name in properties:
        vma = layout.allocate(f"prop.{name}", graph.nodes * prop_stride)
        prop_bases[name] = vma.start
    for name, length in (extra or {}).items():
        layout.allocate(name, length)
    return GraphLayout(
        layout=layout,
        offsets_base=offsets.start,
        neighbors_base=neighbors.start,
        prop_bases=prop_bases,
        prop_stride=prop_stride,
        neighbor_stride=neighbor_stride,
    )


def expand_edges(graph: CSRGraph, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Edge indices and neighbor vertices for a frontier's out-edges.

    Vectorized gather of every (edge index, destination) pair reached
    from ``frontier`` — the unit of work per BFS/SSSP round.
    """
    starts = graph.offsets[frontier]
    stops = graph.offsets[frontier + 1]
    degrees = stops - starts
    total = int(degrees.sum())
    if total == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int32),
        )
    # Edge indices: concatenation of [starts[i], stops[i]) ranges.
    repeats = np.repeat(stops - degrees, degrees)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(degrees) - degrees, degrees
    )
    edge_indices = repeats + within
    return edge_indices, graph.neighbors[edge_indices]


def interleave_streams(*streams: np.ndarray) -> np.ndarray:
    """Alternate equally-long address streams element-wise.

    ``interleave_streams(n, p)`` yields ``n0 p0 n1 p1 ...`` — the order
    a real inner loop issues them (load the neighbor id, then gather
    that neighbor's property), which is what keeps HUB walks present in
    every PCC measurement interval rather than arriving in one batch.
    """
    if not streams:
        return np.empty(0, dtype=np.uint64)
    length = streams[0].size
    for stream in streams:
        if stream.size != length:
            raise ValueError("interleaved streams must have equal length")
    stacked = np.empty((length, len(streams)), dtype=np.uint64)
    for column, stream in enumerate(streams):
        stacked[:, column] = stream
    return stacked.ravel()


def record_frontier_expansion(
    recorder: TraceRecorder,
    glayout: GraphLayout,
    frontier: np.ndarray,
    edge_indices: np.ndarray,
    targets: np.ndarray,
    prop_name: str,
    extra_streams: tuple[np.ndarray, ...] = (),
) -> None:
    """Emit the canonical push-style access pattern for one round:
    offsets reads for the frontier, then the per-edge inner loop — a
    sequential neighbor-array read interleaved with the irregular
    property gather on the edge's destination (plus any extra per-edge
    streams, e.g. SSSP's weight reads)."""
    recorder.record(glayout.offsets_addr(frontier))
    recorder.record(
        interleave_streams(
            glayout.neighbors_addr(edge_indices),
            *extra_streams,
            glayout.prop_addr(prop_name, targets),
        )
    )


def make_trace(
    name: str,
    recorder: TraceRecorder,
    graph: CSRGraph,
    extra_metadata: dict | None = None,
) -> Trace:
    """Finalize a workload's recorder with standard graph metadata."""
    metadata = {
        "graph": graph.name,
        "nodes": graph.nodes,
        "edges": graph.edges,
    }
    metadata.update(extra_metadata or {})
    return recorder.finish(metadata=metadata)
