"""Workload registry: Table 1's application matrix by name.

``build_workload("BFS", dataset="kronecker", scale=14)`` yields a ready
:class:`~repro.engine.system.ProcessWorkload`; the registry also knows
each workload's qualitative TLB sensitivity, used by tests to assert
the expected ordering of results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.system import ProcessWorkload
from repro.workloads import graph as graphs
from repro.workloads.bfs import bfs_workload
from repro.workloads.pagerank import pagerank_workload
from repro.workloads.parsec_spec import proxy_workload
from repro.workloads.sssp import sssp_workload

#: dataset name -> generator
DATASETS = {
    "kronecker": graphs.kronecker,
    "social": graphs.social,
    "web": graphs.web,
}

GRAPH_WORKLOADS = ("BFS", "SSSP", "PR")
PROXY_WORKLOADS = ("canneal", "omnetpp", "xalancbmk", "dedup", "mcf")
#: extension workloads beyond Table 1 (phase-change and 1GB studies)
EXTENDED_WORKLOADS = ("phased", "giant-span")


@dataclass(frozen=True)
class WorkloadSpec:
    """Description of a runnable workload configuration."""

    name: str
    is_graph: bool
    #: qualitative TLB sensitivity per Fig. 1: high / medium / low
    tlb_sensitivity: str


SPECS = {
    "BFS": WorkloadSpec("BFS", True, "high"),
    "SSSP": WorkloadSpec("SSSP", True, "high"),
    "PR": WorkloadSpec("PR", True, "high"),
    "canneal": WorkloadSpec("canneal", False, "medium"),
    "omnetpp": WorkloadSpec("omnetpp", False, "medium"),
    "xalancbmk": WorkloadSpec("xalancbmk", False, "medium"),
    "dedup": WorkloadSpec("dedup", False, "low"),
    "mcf": WorkloadSpec("mcf", False, "low"),
}


def workload_names() -> list[str]:
    """All 8 applications, in the paper's figure order."""
    return ["BFS", "SSSP", "PR", "canneal", "omnetpp", "xalancbmk", "dedup", "mcf"]


def graph_workload_names() -> list[str]:
    return list(GRAPH_WORKLOADS)


def build_graph(dataset: str = "kronecker", scale: int = 14, sorted_dbg: bool = False,
                **kwargs) -> graphs.CSRGraph:
    """Build (and optionally DBG-reorder) one of the dataset families."""
    if dataset not in DATASETS:
        raise KeyError(f"unknown dataset {dataset!r}; have {sorted(DATASETS)}")
    graph = DATASETS[dataset](scale=scale, **kwargs)
    if sorted_dbg:
        graph = graphs.degree_based_grouping(graph)
    return graph


def build_workload(
    name: str,
    dataset: str = "kronecker",
    scale: int = 14,
    sorted_dbg: bool = False,
    accesses: int = 500_000,
    prop_stride: int = 512,
    seed: int | None = None,
) -> ProcessWorkload:
    """Instantiate a workload by Table 1 name.

    ``seed`` varies the dataset (graph apps) or the access stream
    (proxies) for run-to-run variance studies; ``None`` keeps each
    workload's fixed default seed for reproducibility.
    """
    if name in GRAPH_WORKLOADS:
        graph_kwargs = {} if seed is None else {"seed": seed}
        graph = build_graph(
            dataset, scale=scale, sorted_dbg=sorted_dbg, **graph_kwargs
        )
        if name == "BFS":
            return bfs_workload(graph, prop_stride=prop_stride)
        if name == "SSSP":
            return sssp_workload(graph, prop_stride=prop_stride)
        return pagerank_workload(graph, prop_stride=prop_stride)
    if name in PROXY_WORKLOADS:
        return proxy_workload(name, accesses=accesses, seed=seed)
    if name == "phased":
        from repro.workloads.phased import phased_workload

        return phased_workload(accesses_per_phase=max(1, accesses // 2))
    if name == "giant-span":
        from repro.experiments.ablations import giant_span_workload

        return giant_span_workload(accesses=accesses)
    raise KeyError(
        f"unknown workload {name!r}; have "
        f"{workload_names() + list(EXTENDED_WORKLOADS)}"
    )
