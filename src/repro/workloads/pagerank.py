"""PageRank workload (pull-style iterations).

Each iteration sweeps all vertices in order — sequential offsets and
neighbor-array reads — while gathering ``rank[neighbor]`` for every
edge. The gather's irregularity follows the graph's degree skew: a
high-in-degree vertex's rank is read once per in-edge, giving the
sharply bimodal reuse structure for which the paper reports the PCC's
largest advantage over HawkEye (PageRank identifies HUBs "faster and
better", §5.1).
"""

from __future__ import annotations

import numpy as np

from repro.engine.system import ProcessWorkload
from repro.trace.events import Trace
from repro.trace.recorder import TraceRecorder
from repro.workloads import gapbase
from repro.workloads.graph import CSRGraph


def pagerank_trace(
    graph: CSRGraph,
    iterations: int = 3,
    prop_stride: int = 512,
) -> tuple[Trace, gapbase.GraphLayout]:
    """Run ``iterations`` pull-style PageRank sweeps, recording accesses."""
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    glayout = gapbase.place_graph(
        graph, properties=("rank", "next_rank"), prop_stride=prop_stride
    )
    recorder = TraceRecorder(f"pagerank.{graph.name}", glayout.layout)

    all_vertices = np.arange(graph.nodes, dtype=np.int64)
    rank = np.full(graph.nodes, 1.0 / max(1, graph.nodes))
    out_degree = np.maximum(graph.degrees(), 1)
    edge_indices = np.arange(graph.edges, dtype=np.int64)
    for _it in range(iterations):
        # Sweep: offsets are read sequentially for every vertex.
        recorder.record(glayout.offsets_addr(all_vertices))
        # Inner loop: stream the neighbor array while gathering the
        # rank of each edge's endpoint (the irregular HUB accesses).
        recorder.record(
            gapbase.interleave_streams(
                glayout.neighbors_addr(edge_indices),
                glayout.prop_addr("rank", graph.neighbors.astype(np.int64)),
            )
        )
        # Sequential writes of the new ranks.
        recorder.record(glayout.prop_addr("next_rank", all_vertices))
        contributions = rank / out_degree
        sums = np.zeros(graph.nodes)
        sources = np.repeat(all_vertices, graph.degrees())
        np.add.at(sums, graph.neighbors, contributions[sources])
        rank = 0.15 / max(1, graph.nodes) + 0.85 * sums
    trace = gapbase.make_trace(
        "pagerank", recorder, graph, {"iterations": iterations}
    )
    return trace, glayout


def pagerank_workload(
    graph: CSRGraph, iterations: int = 3, prop_stride: int = 512
) -> ProcessWorkload:
    """PageRank as a single-thread process workload."""
    trace, glayout = pagerank_trace(graph, iterations=iterations, prop_stride=prop_stride)
    return ProcessWorkload.single_thread(trace, glayout.layout)
