"""Graph substrate for the GAP-style workloads.

Provides a CSR (compressed sparse row) graph container, the three
dataset families Table 1 evaluates — synthetic power-law (Kronecker),
social-network-like, and web-crawl-like — generated with R-MAT style
recursive edge sampling at laptop scale, and degree-based grouping
(DBG) reordering, the preprocessing step whose sorted/unsorted variants
the paper averages over.

Generation is fully deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GraphSpec:
    """Recipe for one synthetic dataset."""

    name: str
    scale: int  # number of vertices = 2**scale
    degree: int  # average out-degree
    #: R-MAT quadrant probabilities (a, b, c); d = 1 - a - b - c
    rmat: tuple[float, float, float] = (0.57, 0.19, 0.19)
    seed: int = 7

    @property
    def nodes(self) -> int:
        """Vertex count (2**scale)."""
        return 1 << self.scale

    @property
    def edges(self) -> int:
        """Edges to sample before dedup."""
        return self.nodes * self.degree


@dataclass
class CSRGraph:
    """Compressed-sparse-row adjacency with degree helpers."""

    offsets: np.ndarray  # int64, len = nodes + 1
    neighbors: np.ndarray  # int32, len = edges
    name: str = "graph"

    def __post_init__(self) -> None:
        self.offsets = np.ascontiguousarray(self.offsets, dtype=np.int64)
        self.neighbors = np.ascontiguousarray(self.neighbors, dtype=np.int32)
        if self.offsets.ndim != 1 or self.offsets.size < 1:
            raise ValueError("offsets must be a non-empty 1-D array")
        if self.offsets[0] != 0 or self.offsets[-1] != self.neighbors.size:
            raise ValueError("offsets must start at 0 and end at the edge count")
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")

    @property
    def nodes(self) -> int:
        """Vertex count."""
        return self.offsets.size - 1

    @property
    def edges(self) -> int:
        """Directed edge count."""
        return int(self.neighbors.size)

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.offsets)

    def neighbors_of(self, vertex: int) -> np.ndarray:
        """Neighbor ids of one vertex (a CSR row)."""
        start, stop = self.offsets[vertex], self.offsets[vertex + 1]
        return self.neighbors[start:stop]

    def validate(self) -> None:
        """Raise when neighbor ids fall outside the vertex range."""
        if self.edges and (
            self.neighbors.min() < 0 or self.neighbors.max() >= self.nodes
        ):
            raise ValueError("neighbor ids out of range")


def _rmat_edges(spec: GraphSpec, rng: np.random.Generator) -> np.ndarray:
    """Sample ``spec.edges`` directed edges by recursive quadrant descent."""
    a, b, c = spec.rmat
    if not 0 < a + b + c < 1:
        raise ValueError(f"R-MAT probabilities must leave room for d: {spec.rmat}")
    count = spec.edges
    src = np.zeros(count, dtype=np.int64)
    dst = np.zeros(count, dtype=np.int64)
    for _bit in range(spec.scale):
        draws = rng.random(count)
        right = draws >= a + b  # falls in quadrant c or d -> dst high bit... no:
        # quadrants: a = (0,0), b = (0,1), c = (1,0), d = (1,1)
        src_bit = draws >= a + b
        dst_bit = ((draws >= a) & (draws < a + b)) | (draws >= a + b + c)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
        del right
    return np.stack([src, dst], axis=1)


def _edges_to_csr(edges: np.ndarray, nodes: int, name: str) -> CSRGraph:
    """Build CSR from an edge list, dropping self-loops and duplicates."""
    src, dst = edges[:, 0], edges[:, 1]
    keep = src != dst
    src, dst = src[keep], dst[keep]
    keys = src * nodes + dst
    unique = np.unique(keys)
    src = (unique // nodes).astype(np.int64)
    dst = (unique % nodes).astype(np.int32)
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=nodes)
    offsets = np.zeros(nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return CSRGraph(offsets=offsets, neighbors=dst, name=name)


def kronecker(scale: int = 16, degree: int = 16, seed: int = 7) -> CSRGraph:
    """Synthetic power-law network, the GAP 'Kronecker' analogue."""
    spec = GraphSpec(name=f"kron{scale}", scale=scale, degree=degree, seed=seed)
    rng = np.random.default_rng(spec.seed)
    return _edges_to_csr(_rmat_edges(spec, rng), spec.nodes, spec.name)


def social(scale: int = 16, degree: int = 20, seed: int = 11) -> CSRGraph:
    """Social-network-like graph (Twitter stand-in): heavier skew."""
    spec = GraphSpec(
        name=f"social{scale}",
        scale=scale,
        degree=degree,
        rmat=(0.65, 0.15, 0.15),
        seed=seed,
    )
    rng = np.random.default_rng(spec.seed)
    return _edges_to_csr(_rmat_edges(spec, rng), spec.nodes, spec.name)


def web(scale: int = 16, degree: int = 14, seed: int = 13) -> CSRGraph:
    """Web-crawl-like graph (Sd1 stand-in): milder skew, more locality."""
    spec = GraphSpec(
        name=f"web{scale}",
        scale=scale,
        degree=degree,
        rmat=(0.52, 0.23, 0.23),
        seed=seed,
    )
    rng = np.random.default_rng(spec.seed)
    graph = _edges_to_csr(_rmat_edges(spec, rng), spec.nodes, spec.name)
    return _localize(graph, window=256)


def _localize(graph: CSRGraph, window: int) -> CSRGraph:
    """Pull a fraction of each vertex's neighbors near its own id,
    emulating the host-locality structure of web crawls."""
    neighbors = graph.neighbors.copy()
    nodes = graph.nodes
    degrees = graph.degrees()
    src = np.repeat(np.arange(nodes, dtype=np.int64), degrees)
    local = np.arange(neighbors.size) % 3 == 0  # every third edge is local
    jitter = (np.arange(neighbors.size) * 2654435761) % (2 * window) - window
    neighbors[local] = np.clip(src[local] + jitter[local], 0, nodes - 1).astype(
        np.int32
    )
    return CSRGraph(offsets=graph.offsets, neighbors=neighbors, name=graph.name)


def degree_based_grouping(graph: CSRGraph) -> CSRGraph:
    """DBG reordering (Faldu et al.): renumber vertices so similar-degree
    vertices are adjacent, hottest (highest-degree) first.

    Groups are power-of-two degree classes; within a class the original
    order is preserved — the lightweight, stable reordering the paper's
    "sorted" dataset variants use.
    """
    degrees = graph.degrees()
    classes = np.zeros(graph.nodes, dtype=np.int64)
    nonzero = degrees > 0
    classes[nonzero] = np.floor(np.log2(degrees[nonzero])).astype(np.int64) + 1
    # Sort by class descending, stable within class.
    order = np.argsort(-classes, kind="stable")
    rank = np.empty(graph.nodes, dtype=np.int64)
    rank[order] = np.arange(graph.nodes)
    new_degrees = degrees[order]
    offsets = np.zeros(graph.nodes + 1, dtype=np.int64)
    np.cumsum(new_degrees, out=offsets[1:])
    neighbors = np.empty(graph.edges, dtype=np.int32)
    for new_id, old_id in enumerate(order):
        start, stop = graph.offsets[old_id], graph.offsets[old_id + 1]
        renamed = rank[graph.neighbors[start:stop]]
        neighbors[offsets[new_id] : offsets[new_id + 1]] = renamed
    return CSRGraph(
        offsets=offsets, neighbors=neighbors, name=f"{graph.name}-dbg"
    )
