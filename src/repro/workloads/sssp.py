"""Single-Source Shortest Paths workload (Bellman-Ford rounds).

SSSP repeats frontier relaxations until distances converge, touching —
beyond BFS's structures — a per-edge weight array and a wider
``dist`` property. Its footprint is therefore roughly double BFS's on
the same graph, matching Table 1's SSSP-vs-BFS footprint ratio, and
vertices are revisited across rounds, raising reuse at the 2MB level.
"""

from __future__ import annotations

import numpy as np

from repro.engine.system import ProcessWorkload
from repro.trace.events import Trace
from repro.trace.recorder import TraceRecorder
from repro.vm.address import PageSize
from repro.workloads import gapbase
from repro.workloads.graph import CSRGraph


def sssp_trace(
    graph: CSRGraph,
    source: int = 0,
    prop_stride: int = 512,
    max_rounds: int = 12,
    seed: int = 5,
) -> tuple[Trace, gapbase.GraphLayout]:
    """Execute frontier-based Bellman-Ford and record its accesses."""
    if not 0 <= source < graph.nodes:
        raise ValueError(f"source {source} outside vertex range")
    glayout = gapbase.place_graph(
        graph,
        properties=("dist",),
        prop_stride=prop_stride,
        extra={"weights": max(1, graph.edges) * gapbase.WEIGHT_BYTES},
    )
    weights_base = glayout.layout["weights"].start
    recorder = TraceRecorder(f"sssp.{graph.name}", glayout.layout)

    rng = np.random.default_rng(seed)
    weights = rng.integers(1, 16, size=max(1, graph.edges)).astype(np.int64)
    dist = np.full(graph.nodes, np.iinfo(np.int64).max // 2, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    for _round in range(max_rounds):
        if frontier.size == 0:
            break
        edge_indices, targets = gapbase.expand_edges(graph, frontier)
        # weight reads run in lockstep with the neighbor reads
        weight_addrs = np.uint64(weights_base) + edge_indices.astype(
            np.uint64
        ) * np.uint64(gapbase.WEIGHT_BYTES)
        gapbase.record_frontier_expansion(
            recorder, glayout, frontier, edge_indices, targets, "dist",
            extra_streams=(weight_addrs,),
        )
        if edge_indices.size == 0:
            break
        sources = np.repeat(frontier, np.diff(graph.offsets)[frontier])
        proposals = dist[sources] + weights[edge_indices]
        improved_mask = proposals < dist[targets]
        improved = targets[improved_mask]
        if improved.size:
            # scatter-min: np.minimum.at handles duplicate targets
            np.minimum.at(dist, targets, proposals)
            improved = np.unique(improved)
            recorder.record(glayout.prop_addr("dist", improved))
        frontier = np.unique(improved).astype(np.int64)
    trace = gapbase.make_trace("sssp", recorder, graph, {"source": source})
    return trace, glayout


def sssp_workload(
    graph: CSRGraph, source: int = 0, prop_stride: int = 512
) -> ProcessWorkload:
    """SSSP as a single-thread process workload."""
    trace, glayout = sssp_trace(graph, source=source, prop_stride=prop_stride)
    return ProcessWorkload.single_thread(trace, glayout.layout)
