"""Promotion Candidate Cache (PCC) — §3.2 of the paper.

A small, fully-associative structure placed after the last-level TLB.
Each entry pairs a huge-page-aligned virtual address prefix (40-bit tag
for 2MB regions, 31-bit for 1GB) with an N-bit saturating page-table-
walk frequency counter:

* **Access** (one per admitted page table walk): on a hit the counter
  increments; when any counter saturates, *all* counters halve,
  preserving relative order while aging stale candidates. On a miss the
  LFU entry (LRU as tiebreaker) is evicted if the cache is full and the
  new prefix is inserted with frequency 0.
* **Dump**: the OS periodically reads the contents ranked by frequency
  (highest first) — the PCC's priority list of promotion candidates.
* **Invalidate**: TLB shootdowns (promotion, migration) remove the
  affected region, so no stale candidate survives a promotion (§3.3).

The same class implements both the per-core 2MB PCC and the smaller
1GB PCC; only the tag granularity differs, which the owner controls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PCCConfig


@dataclass
class PCCStats:
    """Operational counters for one PCC instance."""

    accesses: int = 0
    hits: int = 0
    insertions: int = 0
    evictions: int = 0
    decays: int = 0
    invalidations: int = 0

    @property
    def misses(self) -> int:
        """Accesses that inserted a new tag."""
        return self.accesses - self.hits


@dataclass
class PCCEntry:
    """One candidate: region tag, frequency, LRU timestamp, provenance."""

    tag: int
    frequency: int
    last_use: int
    #: whether the walks hitting this entry came from an already-promoted
    #: leaf (2MB/1GB) — the demotion/1GB-promotion signal of §3.3.3
    promoted_leaf: bool = False


class PromotionCandidateCache:
    """Fully-associative candidate tracker with saturating counters."""

    def __init__(self, config: PCCConfig, capacity: int | None = None) -> None:
        self.config = config
        self.capacity = config.entries if capacity is None else capacity
        if self.capacity <= 0:
            raise ValueError(f"PCC capacity must be positive, got {self.capacity}")
        self._counter_max = config.counter_max
        self._lfu = config.replacement == "lfu"
        # Set-associative variant (ablation): conflict evictions happen
        # within a tag's set. associativity 0 or capacity-wide = the
        # paper's fully-associative design.
        ways = config.associativity or self.capacity
        ways = min(ways, self.capacity)
        self._sets = max(1, self.capacity // ways)
        self._ways = ways
        self._entries: dict[int, PCCEntry] = {}
        self._set_fill: dict[int, int] = {}
        self._tick = 0
        self.stats = PCCStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, tag: int) -> bool:
        return tag in self._entries

    @property
    def full(self) -> bool:
        """Whether every entry slot is occupied."""
        return len(self._entries) >= self.capacity

    def access(self, tag: int, promoted_leaf: bool = False) -> PCCEntry:
        """Record one admitted page-table walk for region ``tag``.

        Implements the right side of Fig. 3: hit increments (with
        halve-all on saturation); miss evicts the replacement victim if
        full and inserts the tag with frequency 0.
        """
        self._tick += 1
        self.stats.accesses += 1
        entry = self._entries.get(tag)
        if entry is not None:
            self.stats.hits += 1
            entry.last_use = self._tick
            entry.promoted_leaf = entry.promoted_leaf or promoted_leaf
            if entry.frequency >= self._counter_max:
                self._decay()
            entry.frequency += 1
            return entry
        set_index = tag % self._sets
        if self._set_fill.get(set_index, 0) >= self._ways:
            victim = self._select_victim(set_index)
            del self._entries[victim.tag]
            self._set_fill[set_index] -= 1
            self.stats.evictions += 1
        entry = PCCEntry(
            tag=tag, frequency=0, last_use=self._tick, promoted_leaf=promoted_leaf
        )
        self._entries[tag] = entry
        self._set_fill[set_index] = self._set_fill.get(set_index, 0) + 1
        self.stats.insertions += 1
        return entry

    def access_many(self, events: list[tuple[int, bool]]) -> None:
        """Record a batch of admitted walks in order.

        Semantically ``for tag, promoted in events: self.access(tag,
        promoted)`` with the per-call overhead hoisted. The columnar
        engine tier defers a whole epoch's PCC events into one call per
        structure (the 2MB and 1GB PCCs are independent, so per-
        structure order is the only order that matters); the deferral
        is exact because nothing between an epoch's walks reads the PCC
        — the OS only consumes it at tick boundaries, which the epoch
        never spans.
        """
        entries = self._entries
        stats = self.stats
        counter_max = self._counter_max
        tick = self._tick
        n_hits = 0
        for tag, promoted_leaf in events:
            tick += 1
            entry = entries.get(tag)
            if entry is not None:
                n_hits += 1
                entry.last_use = tick
                entry.promoted_leaf = entry.promoted_leaf or promoted_leaf
                if entry.frequency >= counter_max:
                    self._decay()
                entry.frequency += 1
                continue
            set_index = tag % self._sets
            if self._set_fill.get(set_index, 0) >= self._ways:
                victim = self._select_victim(set_index)
                del entries[victim.tag]
                self._set_fill[set_index] -= 1
                stats.evictions += 1
            entries[tag] = PCCEntry(
                tag=tag, frequency=0, last_use=tick,
                promoted_leaf=promoted_leaf,
            )
            self._set_fill[set_index] = self._set_fill.get(set_index, 0) + 1
            stats.insertions += 1
        self._tick = tick
        stats.accesses += len(events)
        stats.hits += n_hits

    def _decay(self) -> None:
        """Halve every counter, maintaining relative order (§3.2.1)."""
        for entry in self._entries.values():
            entry.frequency >>= 1
        self.stats.decays += 1

    def _select_victim(self, set_index: int) -> PCCEntry:
        """Replacement victim within one set: LFU with LRU tiebreak, or
        plain LRU (the whole structure is one set when fully
        associative)."""
        if self._sets == 1:
            candidates = self._entries.values()
        else:
            candidates = (
                entry
                for entry in self._entries.values()
                if entry.tag % self._sets == set_index
            )
        if self._lfu:
            return min(candidates, key=lambda e: (e.frequency, e.last_use))
        return min(candidates, key=lambda e: e.last_use)

    def invalidate(self, tag: int) -> bool:
        """Drop ``tag`` on a TLB shootdown of its region."""
        if tag in self._entries:
            del self._entries[tag]
            self._set_fill[tag % self._sets] -= 1
            self.stats.invalidations += 1
            return True
        return False

    def ranked(self) -> list[PCCEntry]:
        """Entries ordered as the PCC's priority list: frequency
        descending, recency as tiebreaker (most recent first)."""
        return sorted(
            self._entries.values(), key=lambda e: (-e.frequency, -e.last_use)
        )

    def frequency_of(self, tag: int) -> int | None:
        """Current counter value for ``tag``, or None if absent."""
        entry = self._entries.get(tag)
        return entry.frequency if entry is not None else None

    def flush(self) -> list[PCCEntry]:
        """Dump-and-clear: the CPU writes PCC contents to the designated
        memory region and the structure starts afresh (Fig. 4 step A)."""
        ranked = self.ranked()
        self._entries.clear()
        self._set_fill.clear()
        return ranked

    def storage_bits(self, tag_bits: int) -> int:
        """Hardware storage the structure requires, for overhead checks.

        With the paper's parameters (128 entries, 40-bit tags, 8-bit
        counters) this is 768 bytes for the 2MB PCC.
        """
        return self.capacity * (tag_bits + self.config.counter_bits)
