"""The PCC-to-OS handoff region (Fig. 4).

Hardware periodically writes the PCC's ranked contents into a small
designated physical memory region and raises a software interrupt; the
OS reads candidate records from that region instead of scanning
gigabytes of ``struct page`` metadata. :class:`DumpRegion` models that
region as a bounded buffer of :class:`CandidateRecord`, preserving the
priority order the PCC wrote.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pcc import PCCEntry
from repro.vm.address import PageSize


@dataclass(frozen=True)
class CandidateRecord:
    """One candidate as the OS sees it: who, where, how hot."""

    pid: int
    core: int
    tag: int
    frequency: int
    page_size: PageSize = PageSize.HUGE
    promoted_leaf: bool = False

    @property
    def vaddr(self) -> int:
        """Base virtual address of the candidate region."""
        return self.tag << self.page_size.value


@dataclass
class DumpRegion:
    """Bounded buffer the hardware dumps ranked candidates into."""

    capacity_records: int = 4096
    _records: list[CandidateRecord] = field(default_factory=list)
    dropped: int = 0

    def write(
        self,
        entries: list[PCCEntry],
        pid: int,
        core: int,
        page_size: PageSize = PageSize.HUGE,
    ) -> int:
        """Append one PCC's ranked entries; returns records written."""
        written = 0
        for entry in entries:
            if len(self._records) >= self.capacity_records:
                self.dropped += len(entries) - written
                break
            self._records.append(
                CandidateRecord(
                    pid=pid,
                    core=core,
                    tag=entry.tag,
                    frequency=entry.frequency,
                    page_size=page_size,
                    promoted_leaf=entry.promoted_leaf,
                )
            )
            written += 1
        return written

    def read_all(self) -> list[CandidateRecord]:
        """Drain the region (the OS interrupt handler's read)."""
        records = self._records
        self._records = []
        return records

    def __len__(self) -> int:
        return len(self._records)
