"""The paper's primary contribution: the Promotion Candidate Cache."""

from repro.core.pcc import PCCEntry, PCCStats, PromotionCandidateCache
from repro.core.dump import CandidateRecord, DumpRegion

__all__ = [
    "PromotionCandidateCache",
    "PCCEntry",
    "PCCStats",
    "CandidateRecord",
    "DumpRegion",
]
