"""Four-level radix page table with per-level accessed bits.

The table models what the PCC's surrounding hardware observes: which
granularity each virtual page is mapped at, and the Intel-style accessed
bits that the walker checks at the PUD (1GB) and PMD (2MB) levels to
filter cold TLB misses out of the PCC (§3.2, Fig. 3 steps 3 and 6).

Mappings are stored sparsely — per-VPN dictionaries rather than a radix
tree — because only translation results and level accessed bits affect
simulation behaviour. Promotion collapses the 512 PTEs of a 2MB region
into one PMD leaf; demotion splits it back, exactly mirroring Linux's
THP collapse/split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.vm.address import (
    BASE_PAGE_SHIFT,
    GIGA_PAGE_SHIFT,
    HUGE_PAGE_SHIFT,
    HUGE_PER_GIGA,
    PAGES_PER_HUGE,
    PageSize,
    giga_prefix,
    huge_prefix,
    vpn,
)


class Mapping(NamedTuple):
    """Result of one translation: the leaf entry backing an address.

    A ``NamedTuple`` rather than a dataclass: one is created per page
    walk on the simulator's hottest path, and tuple construction is
    several times cheaper than frozen-dataclass ``__init__``.
    """

    page_size: PageSize
    #: region number at ``page_size`` granularity (the TLB tag)
    tag: int
    #: physical frame token assigned by the OS (opaque to the TLB)
    frame: int


@dataclass
class PageTableStats:
    """Counters exposed for tests and reports."""

    faults: int = 0
    promotions: int = 0
    demotions: int = 0
    giga_promotions: int = 0


class PageTableError(Exception):
    """Raised on invalid page-table manipulation (e.g. double promote)."""


@dataclass
class _HugeRegionState:
    """Book-keeping for one 2MB-aligned virtual region."""

    promoted: bool = False
    frame: int = -1
    #: PMD-level accessed bit (set when any constituent page is touched)
    accessed: bool = False


class PageTable:
    """Sparse 4-level page table for one process."""

    def __init__(self, pid: int = 0) -> None:
        self.pid = pid
        self.stats = PageTableStats()
        #: 4KB mappings: vpn -> frame token
        self._ptes: dict[int, int] = {}
        #: PTE-level accessed bits
        self._pte_accessed: set[int] = set()
        #: per-2MB-region state (promotion + PMD accessed bit)
        self._huge: dict[int, _HugeRegionState] = {}
        #: promoted 1GB regions: giga prefix -> frame token
        self._giga: dict[int, int] = {}
        #: PUD-level accessed bits
        self._pud_accessed: set[int] = set()
        #: live 4KB PTEs per 2MB region — lets fault/promotion paths
        #: answer "does this region hold base pages?" without scanning
        #: all 512 candidate VPNs
        self._base_count: dict[int, int] = {}
        #: distinct accessed PTEs per 2MB region since the last
        #: :meth:`clear_accessed_bits` (HawkEye's coverage metric)
        self._accessed_count: dict[int, int] = {}

    # ------------------------------------------------------------------
    # population

    def is_mapped(self, vaddr: int) -> bool:
        """Whether ``vaddr`` has any backing mapping."""
        if giga_prefix(vaddr) in self._giga:
            return True
        region = self._huge.get(huge_prefix(vaddr))
        if region is not None and region.promoted:
            return True
        return vpn(vaddr) in self._ptes

    def map_base(self, vaddr: int, frame: int) -> None:
        """Install a 4KB PTE backing the page containing ``vaddr``."""
        page = vpn(vaddr)
        prefix = huge_prefix(vaddr)
        region = self._huge.get(prefix)
        if region is not None and region.promoted:
            raise PageTableError(
                f"page {page:#x} already covered by promoted 2MB region"
            )
        if page in self._ptes:
            raise PageTableError(f"page {page:#x} already mapped")
        self._ptes[page] = frame
        self._base_count[prefix] = self._base_count.get(prefix, 0) + 1
        self.stats.faults += 1

    def map_base_bulk(self, pages, frames) -> None:
        """Install many 4KB PTEs in one pass (array-batched faults).

        ``pages`` and ``frames`` are aligned integer arrays of distinct,
        currently-unmapped VPNs in fault order. Equivalent to calling
        :meth:`map_base` once per page — same PTEs, same per-region live
        counts, same fault counter — without 512 dict probes' worth of
        per-call overhead. Raises the same :class:`PageTableError` as
        the scalar path for a page inside a promoted region or an
        already-mapped page (callers pre-filter with :meth:`is_mapped`,
        so these are defensive tripwires, not expected paths).
        """
        n = len(pages)
        if n == 0:
            return
        prefixes, counts = np.unique(
            np.asarray(pages) >> (HUGE_PAGE_SHIFT - BASE_PAGE_SHIFT),
            return_counts=True,
        )
        for prefix in prefixes.tolist():
            region = self._huge.get(prefix)
            if region is not None and region.promoted:
                page = next(
                    p for p in pages.tolist()
                    if p >> (HUGE_PAGE_SHIFT - BASE_PAGE_SHIFT) == prefix
                )
                raise PageTableError(
                    f"page {page:#x} already covered by promoted 2MB region"
                )
        ptes = self._ptes
        for page in pages.tolist():
            if page in ptes:
                raise PageTableError(f"page {page:#x} already mapped")
        before = len(ptes)
        ptes.update(zip(pages.tolist(), frames.tolist()))
        if len(ptes) - before != n:
            raise PageTableError("bulk map repeated a page within the batch")
        base_count = self._base_count
        for prefix, count in zip(prefixes.tolist(), counts.tolist()):
            base_count[prefix] = base_count.get(prefix, 0) + count
        self.stats.faults += n

    def map_huge(self, vaddr: int, frame: int) -> None:
        """Install a 2MB leaf for the region containing ``vaddr``.

        Used by greedy THP fault-time allocation: the region must not
        hold any 4KB mappings yet (those go through :meth:`promote`).
        """
        prefix = huge_prefix(vaddr)
        state = self._huge.setdefault(prefix, _HugeRegionState())
        if state.promoted:
            raise PageTableError(f"2MB region {prefix:#x} already promoted")
        if self._base_count.get(prefix):
            raise PageTableError(
                f"2MB region {prefix:#x} holds base pages; use promote()"
            )
        state.promoted = True
        state.frame = frame
        self.stats.faults += 1

    # ------------------------------------------------------------------
    # translation

    def translate(self, vaddr: int) -> Mapping | None:
        """Leaf mapping backing ``vaddr``, or ``None`` if unmapped."""
        giga = giga_prefix(vaddr)
        giga_frame = self._giga.get(giga)
        if giga_frame is not None:
            return Mapping(PageSize.GIGA, giga, giga_frame)
        prefix = huge_prefix(vaddr)
        region = self._huge.get(prefix)
        if region is not None and region.promoted:
            return Mapping(PageSize.HUGE, prefix, region.frame)
        frame = self._ptes.get(vpn(vaddr))
        if frame is None:
            return None
        return Mapping(PageSize.BASE, vpn(vaddr), frame)

    def walk(self, vaddr: int) -> tuple[Mapping, bool, bool]:
        """Hardware walk: translate and update accessed bits.

        Returns ``(mapping, pud_was_accessed, pmd_was_accessed)`` where
        the booleans report whether the respective level's accessed bit
        was *already set before this walk* — the signal the walker uses
        to admit regions into the 1GB / 2MB PCCs (cold-miss filter).

        Translation is inlined rather than delegated to
        :meth:`translate` so each walk computes the level prefixes only
        once (as plain shifts, not the address-helper calls) — this
        method sits on the simulator's hot TLB-miss path.
        """
        giga = vaddr >> GIGA_PAGE_SHIFT
        giga_frame = self._giga.get(giga)
        if giga_frame is not None:
            pud_was_accessed = giga in self._pud_accessed
            self._pud_accessed.add(giga)
            # the PUD entry is the leaf; there is no PMD level
            return Mapping(PageSize.GIGA, giga, giga_frame), pud_was_accessed, False
        prefix = vaddr >> HUGE_PAGE_SHIFT
        state = self._huge.get(prefix)
        page = -1
        if state is not None and state.promoted:
            mapping = Mapping(PageSize.HUGE, prefix, state.frame)
        else:
            page = vaddr >> BASE_PAGE_SHIFT
            frame = self._ptes.get(page)
            if frame is None:
                raise PageTableError(f"walk of unmapped address {vaddr:#x}")
            mapping = Mapping(PageSize.BASE, page, frame)
        pud_was_accessed = giga in self._pud_accessed
        self._pud_accessed.add(giga)
        if state is None:
            state = self._huge[prefix] = _HugeRegionState()
        pmd_was_accessed = state.accessed
        state.accessed = True
        if page >= 0 and page not in self._pte_accessed:
            self._pte_accessed.add(page)
            self._accessed_count[prefix] = self._accessed_count.get(prefix, 0) + 1
        return mapping, pud_was_accessed, pmd_was_accessed

    # ------------------------------------------------------------------
    # promotion / demotion

    def mapped_pages_in_region(self, prefix: int) -> list[int]:
        """VPNs of 4KB pages currently mapped inside 2MB region ``prefix``."""
        if not self._base_count.get(prefix):
            return []
        return [page for page in self._region_pages(prefix) if page in self._ptes]

    def region_base_pages(self, prefix: int) -> int:
        """Count of 4KB pages mapped inside 2MB region ``prefix`` (O(1)).

        Prefer this over ``mapped_pages_in_region`` when only the count
        (or emptiness) matters: it avoids scanning 512 candidate VPNs on
        every fault and khugepaged pass.
        """
        return self._base_count.get(prefix, 0)

    def is_promoted(self, prefix: int) -> bool:
        """Whether 2MB region ``prefix`` is backed by a huge page."""
        state = self._huge.get(prefix)
        return state is not None and state.promoted

    def is_giga_promoted(self, giga: int) -> bool:
        """Whether 1GB region ``giga`` is backed by a giga page."""
        return giga in self._giga

    def promote(self, prefix: int, frame: int) -> int:
        """Collapse 2MB region ``prefix``'s PTEs into one huge leaf.

        Returns the number of 4KB pages that were remapped (the paper
        zero-fills the rest of the region, which we charge in timing).
        """
        state = self._huge.setdefault(prefix, _HugeRegionState())
        if state.promoted:
            raise PageTableError(f"2MB region {prefix:#x} already promoted")
        remapped = self.mapped_pages_in_region(prefix)
        if not remapped:
            raise PageTableError(
                f"2MB region {prefix:#x} has no mapped pages to promote"
            )
        for page in remapped:
            del self._ptes[page]
        self._base_count[prefix] = 0
        state.promoted = True
        state.frame = frame
        self.stats.promotions += 1
        return len(remapped)

    def demote(self, prefix: int, frames: list[int] | None = None) -> None:
        """Split promoted region ``prefix`` back into 512 base PTEs."""
        state = self._huge.get(prefix)
        if state is None or not state.promoted:
            raise PageTableError(f"2MB region {prefix:#x} is not promoted")
        pages = list(self._region_pages(prefix))
        if frames is None:
            frames = [state.frame * PAGES_PER_HUGE + i for i in range(len(pages))]
        if len(frames) != len(pages):
            raise PageTableError(
                f"demotion of region {prefix:#x} needs {len(pages)} frames, "
                f"got {len(frames)}"
            )
        for page, frame in zip(pages, frames):
            self._ptes[page] = frame
        self._base_count[prefix] = PAGES_PER_HUGE
        state.promoted = False
        state.frame = -1
        self.stats.demotions += 1

    def promote_giga(self, giga: int, frame: int) -> int:
        """Collapse 1GB region ``giga`` into a single giga leaf.

        Both 4KB-mapped and already-2MB-promoted constituents are
        absorbed, per §3.2.3 ("the entire region is collectively
        promoted"). Returns the count of absorbed leaf mappings.
        """
        if giga in self._giga:
            raise PageTableError(f"1GB region {giga:#x} already promoted")
        absorbed = 0
        first_huge = giga * HUGE_PER_GIGA
        for prefix in range(first_huge, first_huge + HUGE_PER_GIGA):
            state = self._huge.get(prefix)
            if state is not None and state.promoted:
                state.promoted = False
                state.frame = -1
                absorbed += 1
            for page in self.mapped_pages_in_region(prefix):
                del self._ptes[page]
                absorbed += 1
            self._base_count[prefix] = 0
        if absorbed == 0:
            raise PageTableError(f"1GB region {giga:#x} has nothing to promote")
        self._giga[giga] = frame
        self.stats.giga_promotions += 1
        return absorbed

    # ------------------------------------------------------------------
    # accessed-bit maintenance

    def clear_accessed_bits(self) -> None:
        """Reset all accessed bits (HawkEye-style interval scanning)."""
        self._pte_accessed.clear()
        self._pud_accessed.clear()
        self._accessed_count.clear()
        for state in self._huge.values():
            state.accessed = False

    def clear_region_accessed(self, prefix: int) -> None:
        """Reset one 2MB region's PMD accessed bit (idle probing)."""
        state = self._huge.get(prefix)
        if state is not None:
            state.accessed = False

    def accessed_pages_in_region(self, prefix: int) -> int:
        """Count of PTE accessed bits set inside 2MB region ``prefix``.

        This is HawkEye's access-coverage metric (§2.2). Maintained as
        a running per-region counter on the walk path, so the lookup is
        O(1). Bits go stale exactly like the set they mirror: promotion
        and demotion leave them untouched until the next
        :meth:`clear_accessed_bits` sweep.
        """
        return self._accessed_count.get(prefix, 0)

    def region_accessed(self, prefix: int) -> bool:
        """PMD accessed bit of 2MB region ``prefix``."""
        state = self._huge.get(prefix)
        return state is not None and state.accessed

    # ------------------------------------------------------------------
    # inventory

    def promoted_regions(self) -> list[int]:
        """2MB region numbers currently promoted (sorted)."""
        return sorted(p for p, s in self._huge.items() if s.promoted)

    def giga_promoted_regions(self) -> list[int]:
        """1GB region numbers currently promoted (sorted)."""
        return sorted(self._giga)

    def mapped_base_page_count(self) -> int:
        """Number of live 4KB PTEs."""
        return len(self._ptes)

    def touched_huge_regions(self) -> list[int]:
        """2MB regions holding any mapping (base or huge), sorted.

        Derived from the per-region live-PTE counts rather than the PTE
        dict itself: khugepaged calls this every scan interval, and the
        region count dict is ~512x smaller than the page dict.
        """
        regions = {p for p, c in self._base_count.items() if c}
        regions.update(p for p, s in self._huge.items() if s.promoted)
        return sorted(regions)

    @staticmethod
    def _region_pages(prefix: int) -> range:
        start = prefix * PAGES_PER_HUGE
        return range(start, start + PAGES_PER_HUGE)
