"""Virtual address arithmetic for the x86-64 page hierarchy.

All simulators in this package agree on the x86-64 page organization:
4KB base pages, 2MB huge pages (512 base pages, one PMD leaf) and 1GB
giga pages (512 huge pages, one PUD leaf). Addresses are plain Python
ints (or numpy ``uint64`` arrays for the vectorized helpers); nothing
here allocates memory proportional to the address values, so simulated
footprints can exceed host RAM freely.
"""

from __future__ import annotations

import enum

import numpy as np

#: Bits and sizes of the three x86-64 page granularities.
BASE_PAGE_SHIFT = 12
BASE_PAGE_SIZE = 1 << BASE_PAGE_SHIFT  # 4 KiB
HUGE_PAGE_SHIFT = 21
HUGE_PAGE_SIZE = 1 << HUGE_PAGE_SHIFT  # 2 MiB
GIGA_PAGE_SHIFT = 30
GIGA_PAGE_SIZE = 1 << GIGA_PAGE_SHIFT  # 1 GiB

#: Canonical x86-64 virtual addresses span 48 bits.
VA_BITS = 48
VA_LIMIT = 1 << VA_BITS

#: Number of 4KB pages per 2MB region / 2MB regions per 1GB region.
PAGES_PER_HUGE = HUGE_PAGE_SIZE // BASE_PAGE_SIZE  # 512
HUGE_PER_GIGA = GIGA_PAGE_SIZE // HUGE_PAGE_SIZE  # 512


class PageSize(enum.IntEnum):
    """Page granularity a virtual address can be mapped at.

    The integer values are the page-offset shifts, so ``1 << size``
    yields the page size in bytes and comparisons order by coverage.
    """

    BASE = BASE_PAGE_SHIFT
    HUGE = HUGE_PAGE_SHIFT
    GIGA = GIGA_PAGE_SHIFT

    @property
    def bytes(self) -> int:
        """Size of one page of this granularity in bytes."""
        return 1 << self.value

    @property
    def base_pages(self) -> int:
        """Number of 4KB base pages covered by one page of this size."""
        return 1 << (self.value - BASE_PAGE_SHIFT)


def vpn(vaddr: int) -> int:
    """Virtual page number (4KB granularity) of ``vaddr``."""
    return vaddr >> BASE_PAGE_SHIFT


def huge_prefix(vaddr: int) -> int:
    """2MB-region number of ``vaddr`` (the PCC's 2MB tag)."""
    return vaddr >> HUGE_PAGE_SHIFT


def giga_prefix(vaddr: int) -> int:
    """1GB-region number of ``vaddr`` (the PCC's 1GB tag)."""
    return vaddr >> GIGA_PAGE_SHIFT


def region_prefix(vaddr: int, size: PageSize) -> int:
    """Region number of ``vaddr`` at an arbitrary page granularity."""
    return vaddr >> size.value


def page_base(vaddr: int, size: PageSize) -> int:
    """First byte address of the page of ``size`` containing ``vaddr``."""
    return (vaddr >> size.value) << size.value


def align_down(vaddr: int, size: PageSize | int) -> int:
    """Round ``vaddr`` down to a page boundary of ``size``."""
    granularity = size.bytes if isinstance(size, PageSize) else int(size)
    return vaddr - (vaddr % granularity)


def align_up(vaddr: int, size: PageSize | int) -> int:
    """Round ``vaddr`` up to a page boundary of ``size``."""
    granularity = size.bytes if isinstance(size, PageSize) else int(size)
    return -(-vaddr // granularity) * granularity


def is_aligned(vaddr: int, size: PageSize | int) -> bool:
    """Whether ``vaddr`` sits exactly on a page boundary of ``size``."""
    granularity = size.bytes if isinstance(size, PageSize) else int(size)
    return vaddr % granularity == 0


def pages_in_huge(huge_region: int) -> range:
    """Range of 4KB VPNs composing 2MB region number ``huge_region``."""
    start = huge_region * PAGES_PER_HUGE
    return range(start, start + PAGES_PER_HUGE)


def pages_in_region(region: int, size: PageSize) -> range:
    """Range of 4KB VPNs composing ``region`` at granularity ``size``."""
    span = size.base_pages
    start = region * span
    return range(start, start + span)


def huge_regions_of(vaddr_start: int, length: int) -> range:
    """2MB region numbers overlapped by ``[vaddr_start, vaddr_start+length)``."""
    if length <= 0:
        return range(0)
    first = huge_prefix(vaddr_start)
    last = huge_prefix(vaddr_start + length - 1)
    return range(first, last + 1)


def vpns_of(addresses: np.ndarray) -> np.ndarray:
    """Vectorized 4KB VPNs for a ``uint64`` address array."""
    return addresses >> np.uint64(BASE_PAGE_SHIFT)


def huge_prefixes_of(addresses: np.ndarray) -> np.ndarray:
    """Vectorized 2MB region numbers for a ``uint64`` address array."""
    return addresses >> np.uint64(HUGE_PAGE_SHIFT)


def check_canonical(vaddr: int) -> None:
    """Raise ``ValueError`` for addresses outside the 48-bit space."""
    if not 0 <= vaddr < VA_LIMIT:
        raise ValueError(
            f"address {vaddr:#x} outside the {VA_BITS}-bit virtual address space"
        )
