"""Deterministic virtual address space layout.

Workload models allocate their data structures through an
:class:`AddressSpaceLayout`, the simulation's equivalent of ``mmap``
with ``randomize_va_space=0`` (the paper sets that kernel parameter so
that addresses recorded during offline PCC simulation match the live
run). Allocations are placed at deterministic, 2MB-aligned, ascending
addresses, so identical workloads produce identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.address import (
    HUGE_PAGE_SIZE,
    VA_LIMIT,
    PageSize,
    align_up,
    check_canonical,
    huge_prefix,
)

#: Where the simulated heap begins; mirrors a typical x86-64 mmap base.
DEFAULT_HEAP_BASE = 0x5555_5540_0000

#: Pad between VMAs so adjacent allocations never share a 2MB region,
#: keeping per-region statistics attributable to one data structure.
DEFAULT_GUARD_BYTES = HUGE_PAGE_SIZE


@dataclass(frozen=True)
class VMA:
    """One virtual memory area: a named, contiguous allocation."""

    name: str
    start: int
    length: int

    @property
    def end(self) -> int:
        """First byte past the area."""
        return self.start + self.length

    @property
    def huge_regions(self) -> range:
        """2MB region numbers overlapped by this area."""
        return range(huge_prefix(self.start), huge_prefix(self.end - 1) + 1)

    def contains(self, vaddr: int) -> bool:
        """Whether ``vaddr`` falls inside the area."""
        return self.start <= vaddr < self.end

    def address_of(self, offset: int) -> int:
        """Virtual address of byte ``offset`` into the area."""
        if not 0 <= offset < self.length:
            raise IndexError(
                f"offset {offset} outside VMA {self.name!r} of length {self.length}"
            )
        return self.start + offset


class AddressSpaceLayout:
    """Allocates non-overlapping, deterministic VMAs for one process."""

    def __init__(
        self,
        heap_base: int = DEFAULT_HEAP_BASE,
        guard_bytes: int = DEFAULT_GUARD_BYTES,
    ) -> None:
        check_canonical(heap_base)
        if heap_base % HUGE_PAGE_SIZE != 0:
            raise ValueError(f"heap base {heap_base:#x} must be 2MB-aligned")
        self._next = heap_base
        self._guard = guard_bytes
        self._vmas: dict[str, VMA] = {}

    @classmethod
    def from_vmas(cls, vmas: dict[str, tuple[int, int]]) -> "AddressSpaceLayout":
        """Rebuild a layout from recorded ``name -> (start, length)``
        pairs (the metadata a :class:`~repro.trace.recorder.TraceRecorder`
        stores), e.g. when loading a cached trace from disk."""
        layout = cls()
        for name, (start, length) in vmas.items():
            if length <= 0:
                raise ValueError(f"VMA {name!r} has invalid length {length}")
            layout._vmas[name] = VMA(name=name, start=int(start), length=int(length))
        if layout._vmas:
            layout._next = align_up(
                max(v.end for v in layout._vmas.values()) + DEFAULT_GUARD_BYTES,
                PageSize.HUGE,
            )
        return layout

    def allocate(self, name: str, length: int, align: PageSize = PageSize.HUGE) -> VMA:
        """Reserve ``length`` bytes under ``name`` and return the VMA."""
        if length <= 0:
            raise ValueError(f"allocation {name!r} must be positive, got {length}")
        if name in self._vmas:
            raise ValueError(f"VMA name already in use: {name!r}")
        start = align_up(self._next, align)
        end = start + length
        if end > VA_LIMIT:
            raise MemoryError(f"virtual address space exhausted allocating {name!r}")
        vma = VMA(name=name, start=start, length=length)
        self._vmas[name] = vma
        self._next = align_up(end + self._guard, PageSize.HUGE)
        return vma

    def __getitem__(self, name: str) -> VMA:
        return self._vmas[name]

    def __contains__(self, name: str) -> bool:
        return name in self._vmas

    def __iter__(self):
        return iter(self._vmas.values())

    def __len__(self) -> int:
        return len(self._vmas)

    def find(self, vaddr: int) -> VMA | None:
        """VMA containing ``vaddr``, or ``None``."""
        for vma in self._vmas.values():
            if vma.contains(vaddr):
                return vma
        return None

    @property
    def footprint_bytes(self) -> int:
        """Total bytes allocated across all VMAs (excluding guards)."""
        return sum(vma.length for vma in self._vmas.values())

    @property
    def huge_region_count(self) -> int:
        """Number of distinct 2MB regions touched by any VMA."""
        regions: set[int] = set()
        for vma in self._vmas.values():
            regions.update(vma.huge_regions)
        return len(regions)
