"""Virtual memory substrate: addressing, address-space layout, page tables."""

from repro.vm.address import (
    BASE_PAGE_SHIFT,
    BASE_PAGE_SIZE,
    GIGA_PAGE_SHIFT,
    GIGA_PAGE_SIZE,
    HUGE_PAGE_SHIFT,
    HUGE_PAGE_SIZE,
    PageSize,
    align_down,
    align_up,
    giga_prefix,
    huge_prefix,
    is_aligned,
    pages_in_huge,
    pages_in_region,
    region_prefix,
    vpn,
)
from repro.vm.layout import AddressSpaceLayout, VMA
from repro.vm.pagetable import Mapping, PageTable, PageTableStats

__all__ = [
    "BASE_PAGE_SHIFT",
    "BASE_PAGE_SIZE",
    "HUGE_PAGE_SHIFT",
    "HUGE_PAGE_SIZE",
    "GIGA_PAGE_SHIFT",
    "GIGA_PAGE_SIZE",
    "PageSize",
    "vpn",
    "huge_prefix",
    "giga_prefix",
    "region_prefix",
    "align_up",
    "align_down",
    "is_aligned",
    "pages_in_huge",
    "pages_in_region",
    "AddressSpaceLayout",
    "VMA",
    "Mapping",
    "PageTable",
    "PageTableStats",
]
