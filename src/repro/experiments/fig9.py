"""Figure 9: multiprocess case studies.

Two single-threaded applications run side by side on two cores, each
with its own PCC, competing for system-wide huge pages under either OS
policy. Case (a) pairs TLB-sensitive PageRank with insensitive mcf;
case (b) pairs two sensitive apps, PageRank and SSSP. Both panels of
each case are reproduced: per-app speedup and per-app THP count as the
combined-footprint budget grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import report
from repro.engine.simulation import Simulator
from repro.experiments.common import (
    ExperimentScale,
    QUICK,
    build_named_workload,
    clone_workload,
    config_for,
)
from repro.experiments.parallel import fan_out, resolve_jobs
from repro.resilience.journal import journal_from_env
from repro.os.kernel import HugePagePolicy, KernelParams

BUDGETS = (1, 2, 4, 8, 16, 32, 64, 100)


@dataclass
class Fig9Series:
    """Per-app series across budget points under one policy."""

    policy: str
    budgets: tuple[int, ...]
    speedups: dict[str, list[float]] = field(default_factory=dict)
    huge_pages: dict[str, list[int]] = field(default_factory=dict)


@dataclass
class Fig9Case:
    apps: tuple[str, str]
    frequency: Fig9Series
    round_robin: Fig9Series
    ideal: dict[str, float]


def _case_task(task: tuple):
    """One grid point: (apps, scale fields, kind, policy_id, percent).

    Workers rebuild the workload pair through the trace cache, so the
    pair's traces are generated once for the whole grid.
    """
    app_a, app_b, graph_scale, proxy_accesses, kind, policy_id, percent = task
    workload_a = build_named_workload(
        app_a, graph_scale=graph_scale, proxy_accesses=proxy_accesses
    )
    workload_b = build_named_workload(
        app_b, graph_scale=graph_scale, proxy_accesses=proxy_accesses
    )
    workload_b.pid = 2
    config = config_for(workload_a, workload_b).with_(cores=2)
    if kind == "baseline":
        policy, params = HugePagePolicy.NONE, None
    elif kind == "ideal":
        policy, params = HugePagePolicy.IDEAL, None
    else:
        total_regions = (
            workload_a.footprint_huge_regions()
            + workload_b.footprint_huge_regions()
        )
        budget = (
            None
            if percent >= 100
            else max(1, int(round(total_regions * percent / 100.0)))
        )
        policy = HugePagePolicy.PCC
        params = KernelParams(
            regions_to_promote=config.os.regions_to_promote,
            promotion_policy=policy_id,
            promotion_budget_regions=budget,
        )
    sim = Simulator(config, policy=policy, params=params)
    return sim.run([clone_workload(workload_a), clone_workload(workload_b)])


def run_case(
    app_a: str,
    app_b: str,
    scale: ExperimentScale = QUICK,
    budgets: tuple[int, ...] = BUDGETS,
    jobs: int | None = None,
    resume: bool = False,
) -> Fig9Case:
    """The (policy x budget) grid plus references, optionally fanned out."""
    common = (app_a, app_b, scale.graph_scale, scale.proxy_accesses)
    tasks = [common + ("baseline", 0, 0), common + ("ideal", 0, 0)]
    for policy_id in (1, 0):  # 1 = highest frequency, 0 = round robin
        for percent in budgets:
            tasks.append(common + ("pcc", policy_id, percent))
    if resolve_jobs(jobs) > 1:
        from repro.experiments.common import (
            RunSpec,
            parallel_cache_dir,
            prewarm_trace_cache,
        )

        cache_dir = parallel_cache_dir()
        prewarm_trace_cache(
            [
                RunSpec(app=app, policy=HugePagePolicy.NONE.value,
                        graph_scale=scale.graph_scale,
                        proxy_accesses=scale.proxy_accesses)
                for app in (app_a, app_b)
            ],
            cache_dir,
        )
        results = fan_out(_case_task, tasks, jobs=jobs, cache_dir=cache_dir,
                          journal=journal_from_env(), resume=resume)
    else:
        results = fan_out(_case_task, tasks, jobs=1,
                          journal=journal_from_env(), resume=resume)

    baseline, ideal = results[0], results[1]
    base_by_app = {
        p.name: _proc_cycles(baseline, p.pid) for p in baseline.processes
    }
    ideal_speedups = {
        p.name: base_by_app[p.name] / _proc_cycles(ideal, p.pid)
        for p in ideal.processes
    }

    series = {}
    grid = results[2:]
    for index, (policy_id, label) in enumerate(
        ((1, "highest-frequency"), (0, "round-robin"))
    ):
        entry = Fig9Series(policy=label, budgets=budgets)
        for result in grid[index * len(budgets) : (index + 1) * len(budgets)]:
            final_hp = (
                result.huge_page_timeline[-1] if result.huge_page_timeline else {}
            )
            for proc in result.processes:
                entry.speedups.setdefault(proc.name, []).append(
                    base_by_app[proc.name] / _proc_cycles(result, proc.pid)
                )
                entry.huge_pages.setdefault(proc.name, []).append(
                    final_hp.get(proc.pid, proc.huge_pages)
                )
        series[policy_id] = entry
    return Fig9Case(
        apps=(baseline.processes[0].name, baseline.processes[1].name),
        frequency=series[1],
        round_robin=series[0],
        ideal=ideal_speedups,
    )


def _proc_cycles(result, pid: int) -> int:
    """Cycles attributable to one process: its core's breakdown.

    Each process is single-threaded and statically pinned, so core
    index equals position in the process list.
    """
    for index, proc in enumerate(result.processes):
        if proc.pid == pid:
            return result.per_core[index].total
    raise KeyError(f"pid {pid} not in result")


def render(case: Fig9Case) -> str:
    lines = [
        f"Fig. 9 — multiprocess: {case.apps[0]} + {case.apps[1]} "
        f"(budget % of combined footprint: {' '.join(map(str, case.frequency.budgets))})"
    ]
    for series in (case.frequency, case.round_robin):
        lines.append(f"[{series.policy}]")
        for app, speedups in series.speedups.items():
            lines.append("  " + report.series(f"speedup {app:14s}", speedups))
        for app, counts in series.huge_pages.items():
            lines.append(
                "  " + report.series(f"#THPs   {app:14s}", counts, fmt="{:d}")
            )
    lines.append(
        "ideal: "
        + " ".join(f"{app}={report.speedup(s)}" for app, s in case.ideal.items())
    )
    return "\n".join(lines)
