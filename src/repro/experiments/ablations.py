"""Ablations for the design choices §3.2 and §5.4 discuss.

* **Replacement policy** (§3.2.1): LFU-with-LRU-tiebreak vs plain LRU
  eviction in the PCC. The paper found no significant difference at
  adequate PCC sizes; the ablation quantifies that at several sizes.
* **Page-walk caches** (§5.4.1): walker with and without PWCs — PWCs
  shorten walks (fewer references per walk) but cannot remove TLB
  misses, which is why the PCC is not redundant with them.
* **1GB PCC** (§3.2.3): a synthetic giant-span workload whose hot set
  exceeds 2MB-entry TLB reach; the 1GB PCC identifies the 1GB region
  and collective promotion removes the residual walks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis import report
from repro.analysis.utility import budget_regions_for
from repro.config import PCCConfig, WalkerConfig
from repro.engine.system import ProcessWorkload
from repro.experiments.common import (
    ExperimentScale,
    QUICK,
    build_named_workload,
    config_for,
    run_policy,
)
from repro.experiments.parallel import fan_out, resolve_jobs
from repro.os.kernel import HugePagePolicy
from repro.trace import synthesis
from repro.trace.recorder import TraceRecorder
from repro.vm.layout import AddressSpaceLayout


@dataclass
class ReplacementRow:
    app: str
    pcc_entries: int
    speedup_lfu: float
    speedup_lru: float


def _replacement_task(task: tuple):
    """One run of the replacement grid: (app, scale fields, size, policy).

    ``size == 0`` is the app's 4KB baseline.
    """
    app, graph_scale, proxy_accesses, size, policy = task
    workload = build_named_workload(
        app, graph_scale=graph_scale, proxy_accesses=proxy_accesses
    )
    base_config = config_for(workload)
    if size == 0:
        return run_policy(workload, HugePagePolicy.NONE, base_config)
    config = base_config.with_(pcc=PCCConfig(entries=size, replacement=policy))
    budget = budget_regions_for(workload, 32)
    return run_policy(workload, HugePagePolicy.PCC, config, budget_regions=budget)


def run_replacement(
    scale: ExperimentScale = QUICK,
    apps: tuple[str, ...] = ("BFS", "PR"),
    sizes: tuple[int, ...] = (8, 32, 128),
    jobs: int | None = None,
    resume: bool = False,
) -> list[ReplacementRow]:
    """Replacement-policy ablation grid (``jobs > 1`` fans out)."""
    from repro.resilience.journal import journal_from_env

    apps = tuple(apps)
    tasks = []
    for app in apps:
        tasks.append((app, scale.graph_scale, scale.proxy_accesses, 0, ""))
        for size in sizes:
            for policy in ("lfu", "lru"):
                tasks.append(
                    (app, scale.graph_scale, scale.proxy_accesses, size, policy)
                )
    if resolve_jobs(jobs) > 1:
        from repro.experiments.common import parallel_cache_dir

        results = fan_out(
            _replacement_task, tasks, jobs=jobs, cache_dir=parallel_cache_dir(),
            journal=journal_from_env(), resume=resume,
        )
    else:
        results = fan_out(_replacement_task, tasks, jobs=1,
                          journal=journal_from_env(), resume=resume)

    rows = []
    stride = 1 + 2 * len(sizes)
    for index, app in enumerate(apps):
        block = results[stride * index : stride * (index + 1)]
        baseline = block[0]
        for offset, size in enumerate(sizes):
            lfu, lru = block[1 + 2 * offset], block[2 + 2 * offset]
            rows.append(
                ReplacementRow(
                    app=app,
                    pcc_entries=size,
                    speedup_lfu=baseline.total_cycles / lfu.total_cycles,
                    speedup_lru=baseline.total_cycles / lru.total_cycles,
                )
            )
    return rows


def render_replacement(rows: list[ReplacementRow]) -> str:
    return report.format_table(
        ["App", "PCC entries", "LFU+LRU", "LRU"],
        [
            [r.app, r.pcc_entries, report.speedup(r.speedup_lfu),
             report.speedup(r.speedup_lru)]
            for r in rows
        ],
        title="Ablation — PCC replacement policy (§3.2.1)",
    )


@dataclass
class PWCRow:
    app: str
    refs_per_walk_pwc: float
    refs_per_walk_no_pwc: float
    speedup_pwc_only: float
    speedup_pcc_on_top: float


def run_pwc(scale: ExperimentScale = QUICK, apps: tuple[str, ...] = ("BFS",)
            ) -> list[PWCRow]:
    """PWC shortens walks; the PCC removes them — complementary."""
    import copy

    from repro.engine.simulation import Simulator

    rows = []
    for app in apps:
        workload = scale.workload(app)
        config = config_for(workload)
        no_pwc_config = config.with_(walker=WalkerConfig(pwc_enabled=False))

        def run_with(cfg, policy):
            sim = Simulator(cfg, policy=policy)
            result = sim.run([copy.deepcopy(workload)])
            return sim, result

        sim_no_pwc, no_pwc = run_with(no_pwc_config, HugePagePolicy.NONE)
        sim_pwc, with_pwc = run_with(config, HugePagePolicy.NONE)
        _, pcc = run_with(config, HugePagePolicy.PCC)
        rows.append(
            PWCRow(
                app=app,
                refs_per_walk_pwc=_refs_per_walk(with_pwc),
                refs_per_walk_no_pwc=_refs_per_walk(no_pwc),
                speedup_pwc_only=no_pwc.total_cycles / with_pwc.total_cycles,
                speedup_pcc_on_top=with_pwc.total_cycles / pcc.total_cycles,
            )
        )
    return rows


def _refs_per_walk(result) -> float:
    # translation cycles per walk as a proxy for refs/walk in reports
    translation = sum(b.translation for b in result.per_core)
    return translation / result.walks if result.walks else 0.0


def render_pwc(rows: list[PWCRow]) -> str:
    return report.format_table(
        ["App", "walk cycles (PWC)", "walk cycles (no PWC)",
         "PWC speedup", "PCC on top"],
        [
            [r.app, f"{r.refs_per_walk_pwc:.0f}", f"{r.refs_per_walk_no_pwc:.0f}",
             report.speedup(r.speedup_pwc_only),
             report.speedup(r.speedup_pcc_on_top)]
            for r in rows
        ],
        title="Ablation — page-walk caches vs the PCC (§5.4.1)",
    )


def giant_span_workload(
    giga_regions: int = 3, accesses: int = 200_000, seed: int = 9
) -> ProcessWorkload:
    """Synthetic workload whose hot set spans several 1GB regions.

    Virtual footprints cost nothing, so the trace sprays Zipf-ish
    accesses across multiple 1GB-aligned areas — the regime where even
    2MB entries thrash the TLB and §3.2.3's 1GB promotion pays off.
    """
    from repro.vm.address import PageSize

    rng = np.random.default_rng(seed)
    layout = AddressSpaceLayout()
    recorder = TraceRecorder("giant-span", layout)
    vmas = [
        layout.allocate(f"arena{i}", 1 << 30, align=PageSize.GIGA)
        for i in range(giga_regions)
    ]
    per_arena = accesses // giga_regions
    streams = [
        synthesis.uniform_random(vma, per_arena, rng, granularity=1 << 16)
        for vma in vmas
    ]
    recorder.record(np.stack(streams, axis=1).ravel())
    return ProcessWorkload.single_thread(recorder.finish(), layout)
