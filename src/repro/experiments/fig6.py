"""Figure 6: PCC size sensitivity.

Graph applications on the Kronecker network, PCC sized from 4 to 1024
entries (powers of two), promotion footprint capped at 32% of the
application footprint. The paper finds speedup rising steeply to 32
entries and the knee — the bulk of achievable gains — at 128 entries
at its scale; the scaled reproduction exhibits the same saturating
shape with the knee at the point where the PCC covers the HUB set.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis import report
from repro.analysis.utility import budget_regions_for
from repro.config import PCCConfig
from repro.experiments.common import (
    ExperimentScale,
    QUICK,
    build_named_workload,
    config_for,
    run_policy,
)
from repro.experiments.parallel import fan_out, resolve_jobs
from repro.resilience.journal import journal_from_env
from repro.os.kernel import HugePagePolicy

DEFAULT_SIZES = (4, 8, 16, 32, 64, 128, 256, 512, 1024)
#: the paper caps the promotion footprint at 32% for this sweep
BUDGET_PERCENT = 32


@dataclass
class Fig6App:
    app: str
    sizes: tuple[int, ...]
    speedups: list[float] = field(default_factory=list)
    ideal: float = 1.0


def _base_config(workload):
    # few promotion intervals, so the PCC's per-interval candidate
    # bandwidth is the binding resource the sweep varies
    return config_for(
        workload,
        promote_every_accesses=max(5_000, workload.total_accesses // 4),
    )


def _task(task: tuple):
    """One cell of the sweep: (app, graph_scale, accesses, kind, size)."""
    app, graph_scale, proxy_accesses, kind, size = task
    workload = build_named_workload(
        app, graph_scale=graph_scale, proxy_accesses=proxy_accesses
    )
    base_config = _base_config(workload)
    if kind == "baseline":
        return run_policy(workload, HugePagePolicy.NONE, base_config)
    if kind == "ideal":
        return run_policy(workload, HugePagePolicy.IDEAL, base_config)
    # §3.3.1: the OS promotes C regions per interval where C is the
    # PCC size — the sweep therefore varies both capacity and
    # promotion bandwidth, as in the paper
    config = base_config.with_(
        pcc=PCCConfig(entries=size),
        os=replace(base_config.os, regions_to_promote=size),
    )
    budget = budget_regions_for(workload, BUDGET_PERCENT)
    return run_policy(workload, HugePagePolicy.PCC, config, budget_regions=budget)


def run(
    scale: ExperimentScale = QUICK,
    apps: tuple[str, ...] = ("BFS", "SSSP", "PR"),
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    jobs: int | None = None,
    resume: bool = False,
) -> list[Fig6App]:
    # The knee's position scales with the HUB-set size: with a small
    # footprint the promotion budget binds before PCC capacity can.
    # Run this sweep two graph scales up so per-interval candidate
    # bandwidth is the limiting resource across the swept sizes.
    scale = replace(scale, graph_scale=scale.graph_scale + 2)
    apps = tuple(apps)
    tasks = []
    for app in apps:
        tasks.append((app, scale.graph_scale, scale.proxy_accesses, "baseline", 0))
        for size in sizes:
            tasks.append((app, scale.graph_scale, scale.proxy_accesses, "pcc", size))
        tasks.append((app, scale.graph_scale, scale.proxy_accesses, "ideal", 0))
    if resolve_jobs(jobs) > 1:
        from repro.experiments.common import (
            RunSpec,
            parallel_cache_dir,
            prewarm_trace_cache,
        )

        cache_dir = parallel_cache_dir()
        prewarm_trace_cache(
            [
                RunSpec(app=app, policy=HugePagePolicy.NONE.value,
                        graph_scale=scale.graph_scale,
                        proxy_accesses=scale.proxy_accesses)
                for app in apps
            ],
            cache_dir,
        )
        results = fan_out(_task, tasks, jobs=jobs, cache_dir=cache_dir,
                          journal=journal_from_env(), resume=resume)
    else:
        results = fan_out(_task, tasks, jobs=1,
                          journal=journal_from_env(), resume=resume)

    out = []
    stride = len(sizes) + 2
    for index, app in enumerate(apps):
        block = results[stride * index : stride * (index + 1)]
        baseline, ideal = block[0], block[-1]
        entry = Fig6App(app=app, sizes=sizes)
        for run_result in block[1:-1]:
            entry.speedups.append(baseline.total_cycles / run_result.total_cycles)
        entry.ideal = baseline.total_cycles / ideal.total_cycles
        out.append(entry)
    return out


def render(apps: list[Fig6App]) -> str:
    lines = [
        "Fig. 6 — PCC size sensitivity (32% budget), sizes: "
        + " ".join(str(s) for s in apps[0].sizes)
    ]
    for app in apps:
        lines.append(
            "  " + report.series(f"{app.app:5s}", app.speedups)
            + f"   ideal={report.speedup(app.ideal)}"
        )
    return "\n".join(lines)
