"""Reproduction scorecard: collate archived benchmark renderings.

Every benchmark archives its rendering under ``benchmarks/results/``;
this module assembles them into a single scorecard document — the
quickest way to review a full reproduction run, and the source for
EXPERIMENTS.md's measured numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

#: canonical ordering of the archive files in the scorecard
SECTIONS: tuple[tuple[str, str], ...] = (
    ("fig1_motivation", "Figure 1 — motivation"),
    ("fig2_reuse", "Figure 2 — reuse-distance characterization"),
    ("table1_workloads", "Tables 1 & 2 — workloads and system"),
    ("fig5_utility", "Figure 5 — utility curves"),
    ("fig6_pcc_size", "Figure 6 — PCC size sensitivity"),
    ("fig7_fragmentation", "Figure 7 — 90% fragmentation"),
    ("fig8_multithread", "Figure 8 — multithread"),
    ("fig9a_pr_mcf", "Figure 9a — PR + mcf"),
    ("fig9b_pr_sssp", "Figure 9b — PR + SSSP"),
    ("ablation_replacement", "Ablation — replacement policy"),
    ("ablation_pwc", "Ablation — page-walk caches"),
    ("ablation_1gb_pcc", "Ablation — 1GB PCC"),
    ("ablation_oracle", "Ablation — static vs dynamic"),
    ("ablation_associativity", "Ablation — associativity"),
    ("shared_pcc", "Design alternative — per-core vs shared PCC"),
    ("sensitivity_counter_bits", "Sensitivity — counter width"),
    ("sensitivity_interval", "Sensitivity — promotion interval"),
    ("sensitivity_admission", "Sensitivity — admission filter"),
    ("memory_bloat", "Memory bloat"),
    ("demotion_phases", "Demotion under phase change"),
    ("dataset_matrix", "Dataset matrix"),
    ("do_bfs", "Direction-optimizing BFS"),
)


@dataclass
class Scorecard:
    """Assembled scorecard plus bookkeeping about missing sections."""

    text: str
    present: list[str]
    missing: list[str]

    @property
    def complete(self) -> bool:
        """Whether every registered section was found."""
        return not self.missing


def default_results_dir() -> Path:
    """The repository's benchmarks/results directory."""
    return Path(__file__).parents[3] / "benchmarks" / "results"


def build(results_dir: Path | str | None = None) -> Scorecard:
    """Assemble the scorecard from one results directory."""
    directory = Path(results_dir) if results_dir else default_results_dir()
    blocks: list[str] = [
        "PCC reproduction scorecard",
        "=" * 60,
    ]
    present: list[str] = []
    missing: list[str] = []
    for stem, title in SECTIONS:
        path = directory / f"{stem}.txt"
        if not path.exists():
            missing.append(stem)
            continue
        present.append(stem)
        blocks.append(f"\n## {title}\n")
        blocks.append(path.read_text().rstrip())
    if missing:
        blocks.append(
            "\n(missing sections: " + ", ".join(missing)
            + " — run `pytest benchmarks/ --benchmark-only`)"
        )
    return Scorecard(
        text="\n".join(blocks), present=present, missing=missing
    )


def write(path: Path | str, results_dir: Path | str | None = None) -> Scorecard:
    """Build the scorecard and write it to ``path``."""
    scorecard = build(results_dir)
    output = Path(path)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(scorecard.text + "\n")
    return scorecard
