"""Figure 7: graph applications with 90%-fragmented memory.

Five bars per application: the 4KB baseline, HawkEye, Linux's greedy
THP, the PCC approach, and the PCC with demotion enabled. The paper
reports the PCC winning (1.22x over baseline, 1.15x over HawkEye,
1.16x over Linux for the geomean) and demotion adding essentially
nothing because the early candidates stay hot for the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import report
from repro.experiments.common import ExperimentScale, QUICK, RunSpec, run_specs
from repro.os.kernel import HugePagePolicy

FRAGMENTATION = 0.9


@dataclass
class Fig7Row:
    app: str
    hawkeye: float
    linux: float
    pcc: float
    pcc_demote: float


def run(
    scale: ExperimentScale = QUICK,
    apps: tuple[str, ...] = ("BFS", "SSSP", "PR"),
    fragmentation: float = FRAGMENTATION,
    jobs: int | None = None,
    resume: bool = False,
    tlb_replacement: str = "lru",
) -> list[Fig7Row]:
    """Five independent runs per app (``jobs > 1`` fans them out;
    ``resume`` skips journal-committed specs after a kill).

    ``tlb_replacement`` is the hardware-faithfulness ablation axis:
    ``"plru"`` reruns every bar with tree-PLRU TLB victim selection
    (what Ariane-class hardware implements) instead of true LRU, so the
    figure can be compared across replacement policies.
    """
    apps = tuple(apps)
    specs = []
    for app in apps:
        specs.append(
            RunSpec.for_scale(
                scale, app, HugePagePolicy.NONE,
                tlb_replacement=tlb_replacement,
            )
        )
        for policy in (HugePagePolicy.HAWKEYE, HugePagePolicy.LINUX_THP,
                       HugePagePolicy.PCC):
            specs.append(
                RunSpec.for_scale(
                    scale, app, policy, fragmentation=fragmentation,
                    tlb_replacement=tlb_replacement,
                )
            )
        specs.append(
            RunSpec.for_scale(
                scale, app, HugePagePolicy.PCC,
                fragmentation=fragmentation, demotion=True,
                tlb_replacement=tlb_replacement,
            )
        )
    results = run_specs(specs, jobs, resume=resume)
    rows = []
    for index, app in enumerate(apps):
        baseline, hawkeye, linux, pcc, pcc_demote = (
            results[5 * index : 5 * index + 5]
        )

        def rel(result, base=baseline) -> float:
            return base.total_cycles / result.total_cycles

        rows.append(
            Fig7Row(
                app=app,
                hawkeye=rel(hawkeye),
                linux=rel(linux),
                pcc=rel(pcc),
                pcc_demote=rel(pcc_demote),
            )
        )
    return rows


def geomeans(rows: list[Fig7Row]) -> dict[str, float]:
    def geo(values: list[float]) -> float:
        product = 1.0
        for value in values:
            product *= value
        return product ** (1.0 / len(values)) if values else 0.0

    return {
        "hawkeye": geo([r.hawkeye for r in rows]),
        "linux": geo([r.linux for r in rows]),
        "pcc": geo([r.pcc for r in rows]),
        "pcc_demote": geo([r.pcc_demote for r in rows]),
    }


def render(
    rows: list[Fig7Row],
    fragmentation: float = FRAGMENTATION,
    tlb_replacement: str = "lru",
) -> str:
    policy_note = "" if tlb_replacement == "lru" else (
        f", {tlb_replacement.upper()} TLBs"
    )
    table = report.format_table(
        ["App", "HawkEye", "Linux THP", "PCC", "PCC+Demote"],
        [
            [r.app, report.speedup(r.hawkeye), report.speedup(r.linux),
             report.speedup(r.pcc), report.speedup(r.pcc_demote)]
            for r in rows
        ],
        title=(
            f"Fig. 7 — speedup over 4KB baseline with "
            f"{fragmentation:.0%} fragmented memory{policy_note}"
        ),
    )
    means = geomeans(rows)
    return (
        f"{table}\n"
        f"geomean: PCC {report.speedup(means['pcc'])} "
        f"(vs HawkEye {means['pcc'] / means['hawkeye']:.2f}x, "
        f"vs Linux {means['pcc'] / means['linux']:.2f}x)"
    )
