"""Table 1 (workload inventory) and Table 2 (system parameters).

Table 1 reports each workload's dataset statistics and memory
footprint at the reproduction's scale; Table 2 renders the simulated
machine's parameters, whose defaults mirror the paper's evaluation
system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import report
from repro.config import SystemConfig, paper_config
from repro.experiments.common import ExperimentScale, QUICK
from repro.workloads.registry import (
    GRAPH_WORKLOADS,
    PROXY_WORKLOADS,
    build_graph,
    workload_names,
)


@dataclass
class Table1Row:
    app: str
    dataset: str
    nodes: int
    edges: int
    footprint_bytes: int
    accesses: int


def run_table1(scale: ExperimentScale = QUICK) -> list[Table1Row]:
    rows = []
    for app in workload_names():
        if app in GRAPH_WORKLOADS:
            datasets = ("kronecker", "social", "web")
        else:
            datasets = ("native",)
        for dataset in datasets:
            if app in GRAPH_WORKLOADS:
                graph = build_graph(dataset, scale=scale.graph_scale)
                workload = scale.workload(app, dataset=dataset)
                nodes, edges = graph.nodes, graph.edges
            else:
                workload = scale.workload(app)
                nodes = edges = 0
            rows.append(
                Table1Row(
                    app=app,
                    dataset=dataset,
                    nodes=nodes,
                    edges=edges,
                    footprint_bytes=workload.footprint_bytes,
                    accesses=workload.total_accesses,
                )
            )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    return report.format_table(
        ["App", "Input", "Nodes", "Edges", "Footprint", "Accesses"],
        [
            [
                r.app,
                r.dataset,
                r.nodes or "-",
                r.edges or "-",
                report.bytes_human(r.footprint_bytes),
                r.accesses,
            ]
            for r in rows
        ],
        title="Table 1 — evaluation applications and inputs (reproduction scale)",
    )


def render_table2(config: SystemConfig | None = None) -> str:
    config = config or paper_config()
    tlb = config.tlb
    rows = [
        ["L1 D-TLB 4KB", f"{tlb.l1_base.entries} entries, {tlb.l1_base.ways}-way"],
        ["L1 D-TLB 2MB", f"{tlb.l1_huge.entries} entries, {tlb.l1_huge.ways}-way"],
        ["L1 D-TLB 1GB", f"{tlb.l1_giga.entries} entries, {tlb.l1_giga.ways}-way"],
        ["L2 TLB (4KB+2MB)", f"{tlb.l2.entries} entries, {tlb.l2.ways}-way"],
        ["2MB PCC", f"{config.pcc.entries} entries, fully associative"],
        ["PCC counters", f"{config.pcc.counter_bits}-bit saturating"],
        ["1GB PCC", f"{config.pcc.giga_entries} entries"],
        ["Promotions/interval", str(config.os.regions_to_promote)],
        ["Promotion interval", f"{config.os.promote_every_accesses} accesses"],
        ["Memory", report.bytes_human(config.memory_bytes)],
        ["Cores", str(config.cores)],
    ]
    return report.format_table(
        ["Parameter", "Value"], rows, title="Table 2 — system parameters"
    )
