"""Process-pool fan-out for independent simulation runs.

The figure sweeps run many (workload x policy x parameter)
configurations that share nothing but the deterministic input traces.
:func:`fan_out` executes such a task list across worker processes:

* ``jobs <= 1`` (the default) runs serially in-process, bit-identical
  to the historical behaviour;
* ``jobs > 1`` spawns a pool, points every worker at the shared
  content-addressed trace cache (:mod:`repro.trace.cache`) so no
  worker regenerates a trace another configuration already produced,
  and preserves task order in the returned list.

Workers return plain :class:`~repro.engine.simulation.SimulationResult`
objects. Because each worker has its own process, its metrics-bus
publications never reach the parent's collectors; :func:`fan_out`
therefore republishes each returned result's ``metrics`` export in the
parent, keeping ``--metrics-out`` and the benchmark session aggregate
complete regardless of ``jobs``.

Task functions must be module-level (picklable) and take one argument.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from repro.metrics import publish_run

#: Environment default for the pool width (CLI ``--jobs`` overrides).
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None) -> int:
    """Effective pool width: explicit value, $REPRO_JOBS, or 1."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        jobs = int(env) if env else 1
    if jobs <= 0:  # 0 / negative = "use every core"
        jobs = os.cpu_count() or 1
    return jobs


def _pool_context():
    """Fork when available (fast, shares imported modules), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_init(cache_dir: str | None) -> None:
    """Point a worker at the shared trace cache directory."""
    from repro.trace.cache import CACHE_DIR_ENV

    if cache_dir is not None:
        os.environ[CACHE_DIR_ENV] = cache_dir


def _republish(results) -> None:
    """Feed worker-side metrics exports to the parent's collectors."""
    for result in results:
        metrics = getattr(result, "metrics", None)
        if metrics is not None:
            publish_run(metrics)


def fan_out(task_fn, tasks, jobs: int | None = None, cache_dir=None, republish: bool = True):
    """Run ``task_fn`` over ``tasks``, optionally across processes.

    Returns results in task order. ``cache_dir`` (a path) is exported
    to every worker as the trace-cache directory; pass the directory
    you pre-warmed so workers memory-map traces instead of rebuilding
    them. With ``republish`` (default), results carrying a ``metrics``
    export are re-published to the parent's metrics collectors.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [task_fn(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=_worker_init,
        initargs=(str(cache_dir) if cache_dir is not None else None,),
    ) as pool:
        results = list(pool.map(task_fn, tasks))
    if republish:
        _republish(results)
    return results
