"""Resilient process-pool fan-out for independent simulation runs.

The figure sweeps run many (workload x policy x parameter)
configurations that share nothing but the deterministic input traces.
:func:`fan_out` executes such a task list across worker processes:

* ``jobs <= 1`` (the default) runs serially in-process, bit-identical
  to the historical behaviour;
* ``jobs > 1`` spawns a pool, points every worker at the shared
  content-addressed trace cache (:mod:`repro.trace.cache`) so no
  worker regenerates a trace another configuration already produced,
  and preserves task order in the returned list.

Execution is **resilient**: tasks are governed by a
:class:`~repro.resilience.retry.RetryPolicy` giving each one a bounded
number of attempts with deterministic exponential-backoff delays and
an optional per-task timeout. A worker crash (``BrokenProcessPool``)
or a timed-out task recycles the pool — hung workers are terminated,
unfinished tasks are requeued, and the pool is rebuilt one worker
smaller; after ``max_pool_rebuilds`` deaths the remaining tasks fall
back to serial in-process execution. Tasks that keep failing are
quarantined with their identity and error history in a structured
:class:`FanOutReport`, and :func:`fan_out` raises :class:`FanOutError`
carrying that report rather than a context-free pickled traceback:
worker-side failures are wrapped in :class:`TaskError` naming the
task's spec. Retry/timeout/quarantine/pool events are counted on the
:mod:`repro.resilience.bus` and published to active metrics
collectors.

With a :class:`~repro.resilience.journal.RunJournal`, every completed
result is atomically committed as a shard; ``resume=True`` loads
committed shards instead of recomputing their tasks, which is what
backs the CLI's ``--resume`` after a killed sweep.

Workers return plain :class:`~repro.engine.simulation.SimulationResult`
objects. Because each worker has its own process, its metrics-bus
publications never reach the parent's collectors; :func:`fan_out`
therefore republishes each pool-computed (or journal-resumed) result's
``metrics`` export in the parent, keeping ``--metrics-out`` and the
benchmark session aggregate complete regardless of ``jobs``. Results
produced in-process (serial path, serial fallback) already published
at run time and are not republished.

Task functions must be module-level (picklable) and take one argument.
"""

from __future__ import annotations

import dataclasses
import logging
import multiprocessing
import os
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, CancelledError, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.metrics import publish_run
from repro.obs.log import get_logger, log_event
from repro.obs.observer import observation_requested
from repro.obs.progress import progress_scope, set_worker_label
from repro.obs.tracer import OWNER_ENV, active_tracer, span, worker_setup
from repro.resilience import bus
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy

#: Environment default for the pool width (CLI ``--jobs`` overrides).
JOBS_ENV = "REPRO_JOBS"

_LOG = get_logger("experiments.parallel")


def resolve_jobs(jobs: int | None) -> int:
    """Effective pool width: explicit value, $REPRO_JOBS, or 1.

    A non-integer ``$REPRO_JOBS`` logs a warning (naming the variable)
    and runs serially rather than crashing the sweep.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                log_event(
                    _LOG,
                    f"{JOBS_ENV}={env!r} is not an integer; running serially "
                    f"(set {JOBS_ENV} to a worker count, 0 for all cores)",
                    level=logging.WARNING,
                    env_value=env,
                )
                jobs = 1
        else:
            jobs = 1
    if jobs <= 0:  # 0 / negative = "use every core"
        jobs = os.cpu_count() or 1
    return jobs


def describe_task(task) -> str:
    """Human-readable identity of one task for error reports.

    Prefers an explicit ``label`` attribute (``RunSpec.label``), then a
    dataclass rendering of the spec's fields, then ``repr``.
    """
    label = getattr(task, "label", None)
    if isinstance(label, str) and label:
        return label
    if dataclasses.is_dataclass(task) and not isinstance(task, type):
        fields = ", ".join(
            f"{f.name}={getattr(task, f.name)!r}" for f in dataclasses.fields(task)
        )
        return f"{type(task).__name__}({fields})"[:300]
    return repr(task)[:300]


class TaskError(RuntimeError):
    """A task failed in a worker, with the task's identity attached.

    Raised worker-side around the real exception so the parent sees
    *which* spec failed (workload/policy/params) plus the original
    traceback text, instead of a context-free pickled traceback.
    """

    def __init__(self, task_desc: str, cause: str) -> None:
        super().__init__(f"task {task_desc} failed: {cause}")
        self.task_desc = task_desc
        self.cause = cause

    def __reduce__(self):
        """Pickle by (identity, cause) so worker->parent transport is safe."""
        return (type(self), (self.task_desc, self.cause))


@dataclass
class TaskFailure:
    """One quarantined task: identity, attempts, and error history."""

    index: int
    task: str
    attempts: int
    errors: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-safe form for reports and metrics meta."""
        return {
            "index": self.index,
            "task": self.task,
            "attempts": self.attempts,
            "errors": list(self.errors),
        }


@dataclass
class FanOutReport:
    """Structured account of one resilient :func:`fan_out` invocation."""

    tasks: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    serial_fallback: bool = False
    resumed: int = 0
    quarantined: list[TaskFailure] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-safe form for reports and metrics meta."""
        return {
            "tasks": self.tasks,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "serial_fallback": self.serial_fallback,
            "resumed": self.resumed,
            "quarantined": [failure.as_dict() for failure in self.quarantined],
        }

    @property
    def eventful(self) -> bool:
        """True when any resilience machinery actually engaged."""
        return bool(
            self.retries
            or self.timeouts
            or self.pool_rebuilds
            or self.serial_fallback
            or self.resumed
            or self.quarantined
        )


class FanOutError(RuntimeError):
    """Tasks remained failed after retries; carries the full report."""

    def __init__(self, report: FanOutReport) -> None:
        names = ", ".join(failure.task for failure in report.quarantined)
        super().__init__(
            f"{len(report.quarantined)} task(s) quarantined after retries: {names}"
        )
        self.report = report


class _TaskRunner:
    """Picklable task wrapper: fault hook plus identity-carrying errors.

    ``trace_parent`` is the parent process's ``fanout`` span id; it is
    pickled with the runner so a worker's task span links back across
    the process boundary (plus a flow-event arrow). Workers ship their
    span shard after every task — including failed ones — so a
    quarantined task's span still reaches the merged trace.
    """

    def __init__(self, task_fn, trace_parent: str | None = None) -> None:
        self.task_fn = task_fn
        self.trace_parent = trace_parent

    def __call__(self, indexed_task):
        index, task = indexed_task
        desc = describe_task(task)
        fault_point("worker.task", detail=desc)
        tracer = active_tracer()
        if tracer is None:
            return self._run(task, desc)
        try:
            with tracer.span(
                "fanout.task",
                cat="fanout",
                parent=self.trace_parent,
                task=desc,
                index=index,
            ):
                if self.trace_parent is not None:
                    tracer.flow_end(f"{self.trace_parent}:{index}")
                return self._run(task, desc)
        finally:
            if os.environ.get(OWNER_ENV) != str(os.getpid()):
                tracer.ship_shard()

    def _run(self, task, desc):
        try:
            return self.task_fn(task)
        except TaskError:
            raise
        except Exception as exc:
            trace = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
            raise TaskError(desc, trace.strip()) from None


def _pool_context():
    """Fork when available (fast, shares imported modules), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_init(cache_dir: str | None, progress_label: str | None = None) -> None:
    """Point a worker at the shared trace cache and set up tracing.

    ``worker_setup`` gives the worker its own tracer on the shared
    epoch when the parent advertised a span spool — and, crucially,
    defuses a parent tracer object inherited through ``fork`` so a
    worker can never re-report the parent's events.

    ``progress_label`` attributes this pool's progress snapshots (e.g.
    to a serve job id). It rides the per-pool initargs rather than the
    environment because two pools can exist concurrently in one parent
    (the serving daemon's executor threads) and env vars are process
    globals — initargs are the only per-pool channel.
    """
    from repro.obs.log import configure as configure_logging
    from repro.trace.cache import CACHE_DIR_ENV

    if cache_dir is not None:
        os.environ[CACHE_DIR_ENV] = cache_dir
    set_worker_label(progress_label)
    worker_setup()
    configure_logging(force=True)


def _republish(results) -> None:
    """Feed worker-side metrics exports to the parent's collectors."""
    for result in results:
        metrics = getattr(result, "metrics", None)
        if metrics is not None:
            publish_run(metrics)


class _FanOut:
    """One resilient execution of a task list (see :func:`fan_out`)."""

    def __init__(self, task_fn, tasks, jobs, cache_dir, policy, journal, resume,
                 trace_parent: str | None = None,
                 progress_label: str | None = None):
        self.task_fn = task_fn
        self.tasks = tasks
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.policy = policy
        self.journal = journal
        self.trace_parent = trace_parent
        self.progress_label = progress_label
        # Task wall-time distribution (submission to completion, parent
        # vantage) — recorded only on observed invocations so the
        # default path stays allocation-free.
        self.wall_hist = (
            bus.histogram("fanout.task_wall_us", unit="us")
            if observation_requested()
            else None
        )
        #: walls recorded by THIS invocation (the bus histogram is
        #: process-global and accumulates across fan_out calls)
        self.walls_recorded = 0
        self.report = FanOutReport(tasks=len(tasks))
        self.results: dict[int, object] = {}
        #: indices whose results came from a pool worker or the journal
        #: (their metrics were never published in this process)
        self.foreign: set[int] = set()
        self.attempts: dict[int, int] = {}
        self.errors: dict[int, list[str]] = {}
        self.not_before: dict[int, float] = {}
        self.keys: dict[int, str] = {}
        if journal is not None:
            self.keys = {i: journal.key_for(task_fn, t) for i, t in enumerate(tasks)}
        self.pending: list[int] = []
        for index in range(len(tasks)):
            if resume and journal is not None:
                loaded = journal.load(self.keys[index])
                if loaded is not None:
                    self.results[index] = loaded
                    self.foreign.add(index)
                    self.report.resumed += 1
                    continue
            self.pending.append(index)
            self.attempts[index] = 0
            self.errors[index] = []
            self.not_before[index] = 0.0

    # ------------------------------------------------------------------
    # shared bookkeeping

    def _commit(self, index: int, result) -> None:
        self.results[index] = result
        if self.journal is not None:
            self.journal.commit(self.keys[index], result)

    def _fail(self, index: int, message: str, queue: deque, *, timed_out: bool = False) -> bool:
        """Record one failed attempt; requeue or quarantine.

        Returns True when the task was quarantined.
        """
        self.attempts[index] += 1
        self.errors[index].append(message)
        if timed_out:
            self.report.timeouts += 1
            bus.counter("tasks.timeouts").add()
        if self.attempts[index] >= self.policy.max_attempts:
            self.report.quarantined.append(
                TaskFailure(
                    index=index,
                    task=describe_task(self.tasks[index]),
                    attempts=self.attempts[index],
                    errors=self.errors[index],
                )
            )
            bus.counter("tasks.quarantined").add()
            log_event(
                _LOG,
                "task quarantined after retries",
                level=logging.WARNING,
                task=describe_task(self.tasks[index]),
                attempts=self.attempts[index],
            )
            return True
        self.report.retries += 1
        bus.counter("tasks.retried").add()
        log_event(
            _LOG,
            "task failed; retrying",
            level=logging.WARNING,
            task=describe_task(self.tasks[index]),
            attempt=self.attempts[index],
            timed_out=timed_out,
        )
        self.not_before[index] = time.monotonic() + self.policy.delay(
            str(index), self.attempts[index]
        )
        queue.append(index)
        return False

    # ------------------------------------------------------------------
    # serial execution (jobs <= 1, and the fallback after pool deaths)

    def run_serial(self, indices) -> None:
        """Run tasks in-process with the same retry/quarantine rules."""
        runner = _TaskRunner(self.task_fn, trace_parent=self.trace_parent)
        queue = deque(indices)
        while queue:
            index = queue.popleft()
            delay = self.not_before[index] - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            begun = time.monotonic()
            try:
                result = runner((index, self.tasks[index]))
            except Exception as exc:
                self._fail(index, _message_of(exc), queue)
                continue
            self._note_wall(time.monotonic() - begun)
            self._commit(index, result)

    def _note_wall(self, seconds: float) -> None:
        if self.wall_hist is not None:
            self.wall_hist.record(seconds * 1e6)
            self.walls_recorded += 1

    # ------------------------------------------------------------------
    # pooled execution

    def run_pool(self) -> None:
        """Run pending tasks across a self-healing process pool."""
        runner = _TaskRunner(self.task_fn, trace_parent=self.trace_parent)
        tracer = active_tracer()
        queue = deque(self.pending)
        width = min(self.jobs, max(1, len(queue)))
        rebuilds = 0
        pool = self._make_pool(width)
        outstanding: dict = {}
        started: dict = {}
        try:
            while queue or outstanding:
                broken = False
                now = time.monotonic()
                while len(outstanding) < width and not broken:
                    index = self._pop_ready(queue, now)
                    if index is None:
                        break
                    try:
                        future = pool.submit(runner, (index, self.tasks[index]))
                    except (BrokenProcessPool, RuntimeError):
                        queue.appendleft(index)
                        broken = True
                        break
                    if tracer is not None and self.trace_parent is not None:
                        tracer.flow_start(f"{self.trace_parent}:{index}")
                    outstanding[future] = index
                    started[future] = time.monotonic()
                if not outstanding and not broken:
                    if not queue:
                        break
                    # everything left is backing off; sleep to the next
                    wake = min(self.not_before[i] for i in queue)
                    time.sleep(max(0.0, min(wake - time.monotonic(), 0.25)))
                    continue
                if outstanding:
                    done, _ = wait(
                        set(outstanding),
                        timeout=self._wait_timeout(queue, started),
                        return_when=FIRST_COMPLETED,
                    )
                    for future in done:
                        index = outstanding.pop(future)
                        begun = started.pop(future, None)
                        try:
                            result = future.result()
                        except BrokenProcessPool:
                            broken = True
                            self._fail(index, "worker process died (pool broken)", queue)
                        except CancelledError:
                            queue.appendleft(index)
                        except Exception as exc:
                            self._fail(index, _message_of(exc), queue)
                        else:
                            if begun is not None:
                                self._note_wall(time.monotonic() - begun)
                            self._commit(index, result)
                            self.foreign.add(index)
                    broken |= self._expire_overdue(outstanding, started, queue)
                if broken:
                    # requeue survivors without an attempt penalty: the
                    # pool is being recycled under them
                    for index in outstanding.values():
                        queue.appendleft(index)
                    outstanding.clear()
                    started.clear()
                    _terminate_pool(pool)
                    rebuilds += 1
                    self.report.pool_rebuilds += 1
                    bus.counter("pool.rebuilds").add()
                    if rebuilds > self.policy.max_pool_rebuilds:
                        self.report.serial_fallback = True
                        bus.counter("pool.serial_fallbacks").add()
                        self.run_serial(list(queue))
                        return
                    width = max(1, width - 1)
                    pool = self._make_pool(width)
        finally:
            _terminate_pool(pool)

    def _make_pool(self, width: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=width,
            mp_context=_pool_context(),
            initializer=_worker_init,
            initargs=(
                str(self.cache_dir) if self.cache_dir is not None else None,
                self.progress_label,
            ),
        )

    def _pop_ready(self, queue: deque, now: float):
        """Next index whose backoff delay has elapsed, or ``None``."""
        for _ in range(len(queue)):
            index = queue.popleft()
            if self.not_before[index] <= now:
                return index
            queue.append(index)
        return None

    def _wait_timeout(self, queue: deque, started: dict) -> float | None:
        """How long to block in ``wait()`` before rechecking deadlines."""
        candidates = []
        now = time.monotonic()
        if self.policy.timeout is not None and started:
            candidates.append(min(started.values()) + self.policy.timeout - now)
        if queue:
            candidates.append(min(self.not_before[i] for i in queue) - now)
        if not candidates:
            return None
        return max(0.02, min(candidates))

    def _expire_overdue(self, outstanding: dict, started: dict, queue: deque) -> bool:
        """Fail tasks past the per-task timeout; True if any expired."""
        if self.policy.timeout is None:
            return False
        now = time.monotonic()
        overdue = [
            future
            for future, begun in started.items()
            if future in outstanding and now - begun >= self.policy.timeout
        ]
        for future in overdue:
            index = outstanding.pop(future)
            started.pop(future, None)
            self._fail(
                index,
                f"task exceeded the {self.policy.timeout:g}s timeout",
                queue,
                timed_out=True,
            )
        return bool(overdue)


def _message_of(exc: Exception) -> str:
    if isinstance(exc, TaskError):
        return str(exc)
    return f"{type(exc).__name__}: {exc}"


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when its workers are hung or dead.

    ``shutdown(wait=False)`` alone would leave a hung worker sleeping
    for minutes; terminating the processes makes teardown prompt.
    """
    processes_by_pid = getattr(pool, "_processes", None)
    processes = list(processes_by_pid.values()) if isinstance(processes_by_pid, dict) else []
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except Exception:
            continue
    for process in processes:
        try:
            process.join(timeout=2.0)
        except Exception:
            continue


def fan_out(
    task_fn,
    tasks,
    jobs: int | None = None,
    cache_dir=None,
    republish: bool = True,
    policy: RetryPolicy | None = None,
    journal=None,
    resume: bool = False,
    progress_label: str | None = None,
):
    """Run ``task_fn`` over ``tasks``, optionally across processes.

    Returns results in task order. ``cache_dir`` (a path) is exported
    to every worker as the trace-cache directory; pass the directory
    you pre-warmed so workers memory-map traces instead of rebuilding
    them. With ``republish`` (default), results computed in workers (or
    loaded from the journal) have their ``metrics`` exports re-published
    to the parent's metrics collectors.

    ``policy`` governs retries/timeouts/pool rebuilds (default:
    :meth:`RetryPolicy.from_env`). ``journal`` (a
    :class:`~repro.resilience.journal.RunJournal`) checkpoint-commits
    every completed result; with ``resume=True`` previously committed
    results are loaded instead of recomputed. Raises
    :class:`FanOutError` if any task exhausts its attempts.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    policy = policy or RetryPolicy.from_env()
    with span("fanout", cat="fanout", tasks=len(tasks), jobs=jobs) as fanout_span:
        state = _FanOut(task_fn, tasks, jobs, cache_dir, policy, journal,
                        resume, trace_parent=fanout_span,
                        progress_label=progress_label)
        if state.pending:
            log_event(
                _LOG,
                "fan_out starting",
                tasks=len(tasks),
                pending=len(state.pending),
                resumed=state.report.resumed,
                jobs=jobs,
            )
            if jobs > 1 and len(state.pending) > 1:
                # pool workers get the label via initargs (_worker_init)
                state.run_pool()
            elif progress_label is not None:
                # serial path runs in this thread; scope the label so
                # in-process engine runs attribute their snapshots too
                with progress_scope(progress_label):
                    state.run_serial(state.pending)
            else:
                state.run_serial(state.pending)
        report = state.report
        if report.eventful or state.walls_recorded:
            bus.publish(meta={"report": report.as_dict()})
        if report.quarantined:
            raise FanOutError(report)
        ordered = [state.results[index] for index in range(len(tasks))]
        if republish:
            _republish(ordered[i] for i in sorted(state.foreign))
        return ordered
