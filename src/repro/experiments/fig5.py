"""Figure 5: single-thread utility curves, PCC vs HawkEye.

For each application, sweep the huge-page budget over {0,1,2,4,...,64,
~100}% of the footprint for the PCC and HawkEye policies; the Linux
THP results at 50% and 90% fragmentation and the all-huge ideal are
horizontal reference lines. The top panel is speedup, the bottom the
page-table-walk (PTW) rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import report
from repro.analysis.utility import BUDGET_PERCENTS, UtilityCurve, utility_curve
from repro.experiments.common import ExperimentScale, QUICK, config_for, run_policy
from repro.os.kernel import HugePagePolicy
from repro.workloads.registry import workload_names


@dataclass
class Fig5App:
    """One application's panel."""

    app: str
    pcc: UtilityCurve
    hawkeye: UtilityCurve
    linux_50: float
    linux_90: float
    ideal: float
    ideal_walk: float
    linux_50_walk: float
    linux_90_walk: float


@dataclass
class Fig5Result:
    apps: list[Fig5App] = field(default_factory=list)


def run(
    scale: ExperimentScale = QUICK,
    apps: list[str] | None = None,
    budgets: tuple[int, ...] = BUDGET_PERCENTS,
) -> Fig5Result:
    result = Fig5Result()
    for app in apps or workload_names():
        workload = scale.workload(app)
        config = config_for(workload)
        pcc = utility_curve(workload, config, HugePagePolicy.PCC, budgets=budgets)
        hawkeye = utility_curve(
            workload, config, HugePagePolicy.HAWKEYE, budgets=budgets
        )
        baseline_cycles = pcc.points[0].cycles
        ideal = run_policy(workload, HugePagePolicy.IDEAL, config)
        linux_50 = run_policy(
            workload, HugePagePolicy.LINUX_THP, config, fragmentation=0.5
        )
        linux_90 = run_policy(
            workload, HugePagePolicy.LINUX_THP, config, fragmentation=0.9
        )
        result.apps.append(
            Fig5App(
                app=app,
                pcc=pcc,
                hawkeye=hawkeye,
                linux_50=baseline_cycles / linux_50.total_cycles,
                linux_90=baseline_cycles / linux_90.total_cycles,
                ideal=baseline_cycles / ideal.total_cycles,
                ideal_walk=ideal.walk_rate,
                linux_50_walk=linux_50.walk_rate,
                linux_90_walk=linux_90.walk_rate,
            )
        )
    return result


def render(result: Fig5Result, plots: bool = True) -> str:
    from repro.analysis.plot import utility_plot

    lines = ["Fig. 5 — utility curves (budget % of footprint: "
             + " ".join(str(p.budget_percent) for p in result.apps[0].pcc.points)
             + ")"]
    for app in result.apps:
        lines.append(f"[{app.app}]")
        lines.append("  " + report.series("speedup  PCC    ", app.pcc.speedups()))
        lines.append("  " + report.series("speedup  HawkEye", app.hawkeye.speedups()))
        lines.append(
            f"  refs: ideal={report.speedup(app.ideal)} "
            f"linux@50%={report.speedup(app.linux_50)} "
            f"linux@90%={report.speedup(app.linux_90)}"
        )
        lines.append(
            "  " + report.series("PTW%     PCC    ",
                                 [w * 100 for w in app.pcc.walk_rates()])
        )
        lines.append(
            "  " + report.series("PTW%     HawkEye",
                                 [w * 100 for w in app.hawkeye.walk_rates()])
        )
        if plots:
            lines.append(
                utility_plot(
                    [app.pcc, app.hawkeye],
                    references={"ideal": app.ideal, "linux@50%": app.linux_50},
                )
            )
    return "\n".join(lines)
