"""Figure 5: single-thread utility curves, PCC vs HawkEye.

For each application, sweep the huge-page budget over {0,1,2,4,...,64,
~100}% of the footprint for the PCC and HawkEye policies; the Linux
THP results at 50% and 90% fragmentation and the all-huge ideal are
horizontal reference lines. The top panel is speedup, the bottom the
page-table-walk (PTW) rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import report
from repro.analysis.utility import (
    BUDGET_PERCENTS,
    UtilityCurve,
    UtilityPoint,
    budget_regions_for,
)
from repro.experiments.common import ExperimentScale, QUICK, RunSpec, run_specs
from repro.os.kernel import HugePagePolicy
from repro.workloads.registry import workload_names


@dataclass
class Fig5App:
    """One application's panel."""

    app: str
    pcc: UtilityCurve
    hawkeye: UtilityCurve
    linux_50: float
    linux_90: float
    ideal: float
    ideal_walk: float
    linux_50_walk: float
    linux_90_walk: float


@dataclass
class Fig5Result:
    apps: list[Fig5App] = field(default_factory=list)


def _curve(app: str, workload, policy: HugePagePolicy,
           budgets: tuple[int, ...], results) -> UtilityCurve:
    """Reassemble a utility curve from one budget point per result."""
    curve = UtilityCurve(workload=app, policy=policy.value)
    baseline_cycles: int | None = None
    for percent, result in zip(budgets, results):
        if baseline_cycles is None:
            baseline_cycles = result.total_cycles
        curve.points.append(
            UtilityPoint(
                budget_percent=percent,
                budget_regions=budget_regions_for(workload, percent),
                cycles=result.total_cycles,
                walk_rate=result.walk_rate,
                promotions=result.promotions,
                speedup=baseline_cycles / result.total_cycles,
            )
        )
    return curve


def run(
    scale: ExperimentScale = QUICK,
    apps: list[str] | None = None,
    budgets: tuple[int, ...] = BUDGET_PERCENTS,
    jobs: int | None = None,
    resume: bool = False,
) -> Fig5Result:
    """Every (app, policy, budget) point is an independent run, so the
    whole figure fans out across ``jobs`` workers; ``resume`` skips
    journal-committed specs after a kill."""
    apps = list(apps or workload_names())
    specs = []
    for app in apps:
        for policy in (HugePagePolicy.PCC, HugePagePolicy.HAWKEYE):
            for percent in budgets:
                specs.append(
                    RunSpec.for_scale(scale, app, policy, budget_percent=percent)
                )
        specs.append(RunSpec.for_scale(scale, app, HugePagePolicy.IDEAL))
        specs.append(
            RunSpec.for_scale(scale, app, HugePagePolicy.LINUX_THP,
                              fragmentation=0.5)
        )
        specs.append(
            RunSpec.for_scale(scale, app, HugePagePolicy.LINUX_THP,
                              fragmentation=0.9)
        )
    results = run_specs(specs, jobs, resume=resume)

    result = Fig5Result()
    stride = 2 * len(budgets) + 3
    for index, app in enumerate(apps):
        block = results[stride * index : stride * (index + 1)]
        workload = scale.workload(app)
        pcc = _curve(app, workload, HugePagePolicy.PCC,
                     budgets, block[: len(budgets)])
        hawkeye = _curve(app, workload, HugePagePolicy.HAWKEYE,
                         budgets, block[len(budgets) : 2 * len(budgets)])
        ideal, linux_50, linux_90 = block[2 * len(budgets) :]
        baseline_cycles = pcc.points[0].cycles
        result.apps.append(
            Fig5App(
                app=app,
                pcc=pcc,
                hawkeye=hawkeye,
                linux_50=baseline_cycles / linux_50.total_cycles,
                linux_90=baseline_cycles / linux_90.total_cycles,
                ideal=baseline_cycles / ideal.total_cycles,
                ideal_walk=ideal.walk_rate,
                linux_50_walk=linux_50.walk_rate,
                linux_90_walk=linux_90.walk_rate,
            )
        )
    return result


def render(result: Fig5Result, plots: bool = True) -> str:
    from repro.analysis.plot import utility_plot

    lines = ["Fig. 5 — utility curves (budget % of footprint: "
             + " ".join(str(p.budget_percent) for p in result.apps[0].pcc.points)
             + ")"]
    for app in result.apps:
        lines.append(f"[{app.app}]")
        lines.append("  " + report.series("speedup  PCC    ", app.pcc.speedups()))
        lines.append("  " + report.series("speedup  HawkEye", app.hawkeye.speedups()))
        lines.append(
            f"  refs: ideal={report.speedup(app.ideal)} "
            f"linux@50%={report.speedup(app.linux_50)} "
            f"linux@90%={report.speedup(app.linux_90)}"
        )
        lines.append(
            "  " + report.series("PTW%     PCC    ",
                                 [w * 100 for w in app.pcc.walk_rates()])
        )
        lines.append(
            "  " + report.series("PTW%     HawkEye",
                                 [w * 100 for w in app.hawkeye.walk_rates()])
        )
        if plots:
            lines.append(
                utility_plot(
                    [app.pcc, app.hawkeye],
                    references={"ideal": app.ideal, "linux@50%": app.linux_50},
                )
            )
    return "\n".join(lines)
