"""Sensitivity studies for design constants the paper fixes.

The paper chooses an 8-bit saturating counter, a 30-second promotion
interval, and the accessed-bit cold-miss admission filter without
sweeping them. These studies quantify each choice on the scaled
simulator:

* **Counter width** — narrower counters decay more often and lose
  ranking resolution; wider ones waste area. The study sweeps 2–16
  bits at a fixed small budget, where ranking quality matters most.
* **Promotion interval** — frequent intervals promote earlier (more
  walks saved) but each interval pays dump/scan/promotion overheads;
  rare intervals starve the run of huge pages.
* **Admission filter** — disabling the Fig. 3 accessed-bit check lets
  cold first-touch misses pollute the PCC, displacing genuine HUBs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis import report
from repro.analysis.utility import budget_regions_for
from repro.config import PCCConfig
from repro.experiments.common import ExperimentScale, QUICK, config_for, run_policy
from repro.os.kernel import HugePagePolicy

BUDGET_PERCENT = 8


@dataclass
class SweepResult:
    """One parametric sweep: x values and the speedups they produce."""

    app: str
    parameter: str
    values: list[object] = field(default_factory=list)
    speedups: list[float] = field(default_factory=list)


def counter_bits_sweep(
    scale: ExperimentScale = QUICK,
    app: str = "BFS",
    bits: tuple[int, ...] = (2, 4, 8, 12, 16),
) -> SweepResult:
    """Speedup at a tight budget as counter width varies."""
    workload = scale.workload(app)
    base_config = config_for(workload)
    budget = budget_regions_for(workload, BUDGET_PERCENT)
    baseline = run_policy(workload, HugePagePolicy.NONE, base_config)
    result = SweepResult(app=app, parameter="counter_bits")
    for width in bits:
        config = base_config.with_(
            pcc=PCCConfig(
                entries=base_config.pcc.entries, counter_bits=width
            )
        )
        run = run_policy(
            workload, HugePagePolicy.PCC, config, budget_regions=budget
        )
        result.values.append(width)
        result.speedups.append(baseline.total_cycles / run.total_cycles)
    return result


def interval_sweep(
    scale: ExperimentScale = QUICK,
    app: str = "BFS",
    divisors: tuple[int, ...] = (4, 12, 24, 48, 96),
) -> SweepResult:
    """Speedup as the promotion interval shrinks (more frequent ticks).

    ``divisors`` express the interval as trace_length/divisor, so
    larger divisors mean more promotion opportunities per run.
    """
    workload = scale.workload(app)
    result = SweepResult(app=app, parameter="intervals_per_run")
    for divisor in divisors:
        config = config_for(
            workload,
            promote_every_accesses=max(
                1_000, workload.total_accesses // divisor
            ),
        )
        baseline = run_policy(workload, HugePagePolicy.NONE, config)
        run = run_policy(
            workload,
            HugePagePolicy.PCC,
            config,
            budget_regions=budget_regions_for(workload, BUDGET_PERCENT),
        )
        result.values.append(divisor)
        result.speedups.append(baseline.total_cycles / run.total_cycles)
    return result


def admission_filter_study(
    scale: ExperimentScale = QUICK, app: str = "BFS"
) -> dict[str, float]:
    """PCC speedup with and without the cold-miss admission filter.

    The no-filter variant admits every post-L2-miss walk, so one-touch
    cold regions enter the PCC with nonzero frequency and compete with
    HUBs for capacity and promotion quota.
    """
    import repro.tlb.walker as walker_module

    workload = scale.workload(app)
    config = config_for(workload)
    budget = budget_regions_for(workload, BUDGET_PERCENT)
    baseline = run_policy(workload, HugePagePolicy.NONE, config)

    with_filter = run_policy(
        workload, HugePagePolicy.PCC, config, budget_regions=budget
    )

    original_walk = walker_module.PageTableWalker.walk

    def unfiltered_walk(self, vaddr, page_table):
        result = original_walk(self, vaddr, page_table)
        if result.pcc_2mb_candidate is None and (
            result.mapping.page_size.name != "GIGA"
        ):
            result = replace(
                result, pcc_2mb_candidate=vaddr >> 21
            )
        return result

    walker_module.PageTableWalker.walk = unfiltered_walk
    try:
        without_filter = run_policy(
            workload, HugePagePolicy.PCC, config, budget_regions=budget
        )
    finally:
        walker_module.PageTableWalker.walk = original_walk

    base = baseline.total_cycles
    return {
        "with_filter": base / with_filter.total_cycles,
        "without_filter": base / without_filter.total_cycles,
    }


def render_sweep(result: SweepResult) -> str:
    rows = [
        [value, report.speedup(speedup)]
        for value, speedup in zip(result.values, result.speedups)
    ]
    return report.format_table(
        [result.parameter, "Speedup"],
        rows,
        title=f"Sensitivity — {result.parameter} ({result.app}, "
        f"{BUDGET_PERCENT}% budget)",
    )
