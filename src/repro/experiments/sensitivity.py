"""Sensitivity studies for design constants the paper fixes.

The paper chooses an 8-bit saturating counter, a 30-second promotion
interval, and the accessed-bit cold-miss admission filter without
sweeping them. These studies quantify each choice on the scaled
simulator:

* **Counter width** — narrower counters decay more often and lose
  ranking resolution; wider ones waste area. The study sweeps 2–16
  bits at a fixed small budget, where ranking quality matters most.
* **Promotion interval** — frequent intervals promote earlier (more
  walks saved) but each interval pays dump/scan/promotion overheads;
  rare intervals starve the run of huge pages.
* **Admission filter** — disabling the Fig. 3 accessed-bit check lets
  cold first-touch misses pollute the PCC, displacing genuine HUBs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import report
from repro.analysis.utility import budget_regions_for
from repro.config import PCCConfig
from repro.experiments.common import (
    ExperimentScale,
    QUICK,
    build_named_workload,
    config_for,
    run_policy,
)
from repro.experiments.parallel import fan_out, resolve_jobs
from repro.os.kernel import HugePagePolicy

BUDGET_PERCENT = 8


def _run_tasks(task_fn, tasks, jobs, resume=False):
    """Serial or fanned-out execution of a sweep's task list."""
    from repro.resilience.journal import journal_from_env

    if resolve_jobs(jobs) > 1 and len(tasks) > 1:
        from repro.experiments.common import parallel_cache_dir

        return fan_out(task_fn, tasks, jobs=jobs, cache_dir=parallel_cache_dir(),
                       journal=journal_from_env(), resume=resume)
    return fan_out(task_fn, tasks, jobs=1,
                   journal=journal_from_env(), resume=resume)


@dataclass
class SweepResult:
    """One parametric sweep: x values and the speedups they produce."""

    app: str
    parameter: str
    values: list[object] = field(default_factory=list)
    speedups: list[float] = field(default_factory=list)


def _counter_bits_task(task: tuple):
    """One width point: (app, scale fields, width); width 0 = baseline."""
    app, graph_scale, proxy_accesses, width = task
    workload = build_named_workload(
        app, graph_scale=graph_scale, proxy_accesses=proxy_accesses
    )
    base_config = config_for(workload)
    if width == 0:
        return run_policy(workload, HugePagePolicy.NONE, base_config)
    config = base_config.with_(
        pcc=PCCConfig(entries=base_config.pcc.entries, counter_bits=width)
    )
    budget = budget_regions_for(workload, BUDGET_PERCENT)
    return run_policy(workload, HugePagePolicy.PCC, config, budget_regions=budget)


def counter_bits_sweep(
    scale: ExperimentScale = QUICK,
    app: str = "BFS",
    bits: tuple[int, ...] = (2, 4, 8, 12, 16),
    jobs: int | None = None,
    resume: bool = False,
) -> SweepResult:
    """Speedup at a tight budget as counter width varies."""
    tasks = [(app, scale.graph_scale, scale.proxy_accesses, width)
             for width in (0, *bits)]
    results = _run_tasks(_counter_bits_task, tasks, jobs, resume=resume)
    baseline = results[0]
    result = SweepResult(app=app, parameter="counter_bits")
    for width, run in zip(bits, results[1:]):
        result.values.append(width)
        result.speedups.append(baseline.total_cycles / run.total_cycles)
    return result


def _interval_task(task: tuple):
    """One divisor point: (app, scale fields, divisor, policy value)."""
    app, graph_scale, proxy_accesses, divisor, policy = task
    workload = build_named_workload(
        app, graph_scale=graph_scale, proxy_accesses=proxy_accesses
    )
    config = config_for(
        workload,
        promote_every_accesses=max(1_000, workload.total_accesses // divisor),
    )
    if policy == HugePagePolicy.NONE.value:
        return run_policy(workload, HugePagePolicy.NONE, config)
    return run_policy(
        workload,
        HugePagePolicy.PCC,
        config,
        budget_regions=budget_regions_for(workload, BUDGET_PERCENT),
    )


def interval_sweep(
    scale: ExperimentScale = QUICK,
    app: str = "BFS",
    divisors: tuple[int, ...] = (4, 12, 24, 48, 96),
    jobs: int | None = None,
    resume: bool = False,
) -> SweepResult:
    """Speedup as the promotion interval shrinks (more frequent ticks).

    ``divisors`` express the interval as trace_length/divisor, so
    larger divisors mean more promotion opportunities per run.
    """
    tasks = []
    for divisor in divisors:
        tasks.append((app, scale.graph_scale, scale.proxy_accesses, divisor,
                      HugePagePolicy.NONE.value))
        tasks.append((app, scale.graph_scale, scale.proxy_accesses, divisor,
                      HugePagePolicy.PCC.value))
    results = _run_tasks(_interval_task, tasks, jobs, resume=resume)
    result = SweepResult(app=app, parameter="intervals_per_run")
    for index, divisor in enumerate(divisors):
        baseline, run = results[2 * index], results[2 * index + 1]
        result.values.append(divisor)
        result.speedups.append(baseline.total_cycles / run.total_cycles)
    return result


def admission_filter_study(
    scale: ExperimentScale = QUICK, app: str = "BFS"
) -> dict[str, float]:
    """PCC speedup with and without the cold-miss admission filter.

    The no-filter variant admits every post-L2-miss walk, so one-touch
    cold regions enter the PCC with nonzero frequency and compete with
    HUBs for capacity and promotion quota.
    """
    import repro.tlb.walker as walker_module

    workload = scale.workload(app)
    config = config_for(workload)
    budget = budget_regions_for(workload, BUDGET_PERCENT)
    baseline = run_policy(workload, HugePagePolicy.NONE, config)

    with_filter = run_policy(
        workload, HugePagePolicy.PCC, config, budget_regions=budget
    )

    original_walk = walker_module.PageTableWalker.walk

    def unfiltered_walk(self, vaddr, page_table):
        result = original_walk(self, vaddr, page_table)
        if result.pcc_2mb_candidate is None and (
            result.mapping.page_size.name != "GIGA"
        ):
            result = result._replace(pcc_2mb_candidate=vaddr >> 21)
        return result

    walker_module.PageTableWalker.walk = unfiltered_walk
    try:
        without_filter = run_policy(
            workload, HugePagePolicy.PCC, config, budget_regions=budget
        )
    finally:
        walker_module.PageTableWalker.walk = original_walk

    base = baseline.total_cycles
    return {
        "with_filter": base / with_filter.total_cycles,
        "without_filter": base / without_filter.total_cycles,
    }


def render_sweep(result: SweepResult) -> str:
    rows = [
        [value, report.speedup(speedup)]
        for value, speedup in zip(result.values, result.speedups)
    ]
    return report.format_table(
        [result.parameter, "Speedup"],
        rows,
        title=f"Sensitivity — {result.parameter} ({result.app}, "
        f"{BUDGET_PERCENT}% budget)",
    )
