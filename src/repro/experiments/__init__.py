"""Per-figure experiment orchestrators.

Each module reproduces one table or figure from the paper's evaluation
(the index lives in DESIGN.md). Benchmarks and examples call these, so
scale knobs live in :mod:`repro.experiments.common`.
"""

from repro.experiments.common import (
    ExperimentScale,
    QUICK,
    FULL,
    build_named_workload,
    memory_for,
    run_policy,
)
from repro.experiments import (
    ablations,
    fig1,
    fig2,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    sensitivity,
    summary,
    tables,
)

__all__ = [
    "ExperimentScale",
    "QUICK",
    "FULL",
    "build_named_workload",
    "memory_for",
    "run_policy",
    "fig1",
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "tables",
    "ablations",
    "sensitivity",
    "summary",
]
