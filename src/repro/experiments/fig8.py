"""Figure 8: multithreaded graph applications, one PCC per core.

One process runs with 2/4/8 threads (one per core, per-core PCCs);
the OS merges candidates under either the highest-PCC-frequency policy
or round-robin. The paper finds frequency slightly ahead (load
imbalance makes some threads walk more), both below the single-thread
gains because shootdowns and atomic serialization scale with threads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import report
from repro.analysis.utility import budget_regions_for
from repro.engine.simulation import Simulator
from repro.engine.system import ProcessWorkload, partition_trace
from repro.experiments.common import (
    ExperimentScale,
    QUICK,
    cached_process_workload,
    clone_workload,
    config_for,
)
from repro.experiments.parallel import fan_out, resolve_jobs
from repro.os.kernel import HugePagePolicy, KernelParams
from repro.workloads.registry import build_graph
from repro.workloads.bfs import bfs_trace
from repro.workloads.pagerank import pagerank_trace
from repro.workloads.sssp import sssp_trace

#: extra cycles per access modelling atomic-op serialization (§5.2)
SERIALIZATION_PER_THREAD = 0.35

#: the paper quotes speedups when backing 1-4% of the footprint
BUDGET_PERCENT = 4


def _threaded_workload(app: str, scale: ExperimentScale, threads: int
                       ) -> ProcessWorkload:
    def build() -> ProcessWorkload:
        graph = build_graph("kronecker", scale=scale.graph_scale)
        trace_builders = {
            "BFS": bfs_trace, "SSSP": sssp_trace, "PR": pagerank_trace,
        }
        trace, glayout = trace_builders[app](graph)
        parts = partition_trace(trace, threads, glayout.layout)
        return ProcessWorkload.multi_thread(
            parts, glayout.layout, name=f"{app}x{threads}"
        )

    return cached_process_workload(
        f"{app}x{threads}",
        {"dataset": "kronecker", "scale": scale.graph_scale, "threads": threads},
        build,
    )


@dataclass
class Fig8Cell:
    """One (app, thread-count) measurement pair."""

    app: str
    threads: int
    speedup_frequency: float
    speedup_round_robin: float
    ideal: float


def _cell_task(task: tuple) -> Fig8Cell:
    """One (app, thread-count) cell: its four sims run in one worker."""
    app, graph_scale, proxy_accesses, threads, budget_percent = task
    scale = ExperimentScale(
        name="fig8", graph_scale=graph_scale, proxy_accesses=proxy_accesses
    )
    workload = _threaded_workload(app, scale, threads)
    config = config_for(workload).with_(cores=threads)
    serialization = SERIALIZATION_PER_THREAD * (threads - 1)
    budget = budget_regions_for(workload, budget_percent)

    def simulate(policy, params=None, frag=0.0):
        sim = Simulator(
            config,
            policy=policy,
            params=params,
            fragmentation=frag,
            serialization_cycles_per_access=serialization,
        )
        return sim.run([clone_workload(workload)])

    baseline = simulate(HugePagePolicy.NONE)
    ideal = simulate(HugePagePolicy.IDEAL)
    by_policy = {}
    for policy_id in (1, 0):  # 1 = highest frequency, 0 = round robin
        params = KernelParams(
            regions_to_promote=config.os.regions_to_promote,
            promotion_policy=policy_id,
            promotion_budget_regions=budget,
        )
        result = simulate(HugePagePolicy.PCC, params=params)
        by_policy[policy_id] = baseline.total_cycles / result.total_cycles
    return Fig8Cell(
        app=app,
        threads=threads,
        speedup_frequency=by_policy[1],
        speedup_round_robin=by_policy[0],
        ideal=baseline.total_cycles / ideal.total_cycles,
    )


def run(
    scale: ExperimentScale = QUICK,
    apps: tuple[str, ...] = ("BFS", "SSSP", "PR"),
    thread_counts: tuple[int, ...] = (2, 4, 8),
    budget_percent: int = BUDGET_PERCENT,
    jobs: int | None = None,
    resume: bool = False,
) -> list[Fig8Cell]:
    """One task per (app, thread-count) cell; cells fan out."""
    from repro.resilience.journal import journal_from_env

    tasks = [
        (app, scale.graph_scale, scale.proxy_accesses, threads, budget_percent)
        for app in apps
        for threads in thread_counts
    ]
    if resolve_jobs(jobs) > 1 and len(tasks) > 1:
        from repro.experiments.common import parallel_cache_dir

        return fan_out(
            _cell_task, tasks, jobs=jobs, cache_dir=parallel_cache_dir(),
            journal=journal_from_env(), resume=resume,
        )
    return fan_out(_cell_task, tasks, jobs=1,
                   journal=journal_from_env(), resume=resume)


def render(cells: list[Fig8Cell]) -> str:
    table = report.format_table(
        ["App", "Threads", "Highest-freq", "Round-robin", "Max w/ THPs"],
        [
            [c.app, c.threads, report.speedup(c.speedup_frequency),
             report.speedup(c.speedup_round_robin), report.speedup(c.ideal)]
            for c in cells
        ],
        title=(
            f"Fig. 8 — multithread speedups at {BUDGET_PERCENT}% footprint budget"
        ),
    )
    return table
