"""Figure 8: multithreaded graph applications, one PCC per core.

One process runs with 2/4/8 threads (one per core, per-core PCCs);
the OS merges candidates under either the highest-PCC-frequency policy
or round-robin. The paper finds frequency slightly ahead (load
imbalance makes some threads walk more), both below the single-thread
gains because shootdowns and atomic serialization scale with threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import report
from repro.analysis.utility import budget_regions_for
from repro.engine.simulation import Simulator
from repro.engine.system import ProcessWorkload, partition_trace
from repro.experiments.common import ExperimentScale, QUICK, config_for
from repro.os.kernel import HugePagePolicy, KernelParams
from repro.trace.events import Trace
from repro.workloads.registry import build_graph
from repro.workloads.bfs import bfs_trace
from repro.workloads.pagerank import pagerank_trace
from repro.workloads.sssp import sssp_trace

#: extra cycles per access modelling atomic-op serialization (§5.2)
SERIALIZATION_PER_THREAD = 0.35

#: the paper quotes speedups when backing 1-4% of the footprint
BUDGET_PERCENT = 4


def _threaded_workload(app: str, scale: ExperimentScale, threads: int
                       ) -> ProcessWorkload:
    graph = build_graph("kronecker", scale=scale.graph_scale)
    trace_builders = {"BFS": bfs_trace, "SSSP": sssp_trace, "PR": pagerank_trace}
    trace, glayout = trace_builders[app](graph)
    parts = partition_trace(trace, threads, glayout.layout)
    return ProcessWorkload.multi_thread(parts, glayout.layout, name=f"{app}x{threads}")


@dataclass
class Fig8Cell:
    """One (app, thread-count) measurement pair."""

    app: str
    threads: int
    speedup_frequency: float
    speedup_round_robin: float
    ideal: float


def run(
    scale: ExperimentScale = QUICK,
    apps: tuple[str, ...] = ("BFS", "SSSP", "PR"),
    thread_counts: tuple[int, ...] = (2, 4, 8),
    budget_percent: int = BUDGET_PERCENT,
) -> list[Fig8Cell]:
    cells = []
    for app in apps:
        for threads in thread_counts:
            workload = _threaded_workload(app, scale, threads)
            config = config_for(workload).with_(cores=threads)
            serialization = SERIALIZATION_PER_THREAD * (threads - 1)
            budget = budget_regions_for(workload, budget_percent)

            def simulate(policy, params=None, frag=0.0):
                sim = Simulator(
                    config,
                    policy=policy,
                    params=params,
                    fragmentation=frag,
                    serialization_cycles_per_access=serialization,
                )
                import copy

                return sim.run([copy.deepcopy(workload)])

            baseline = simulate(HugePagePolicy.NONE)
            ideal = simulate(HugePagePolicy.IDEAL)
            by_policy = {}
            for policy_id in (1, 0):  # 1 = highest frequency, 0 = round robin
                params = KernelParams(
                    regions_to_promote=config.os.regions_to_promote,
                    promotion_policy=policy_id,
                    promotion_budget_regions=budget,
                )
                result = simulate(HugePagePolicy.PCC, params=params)
                by_policy[policy_id] = baseline.total_cycles / result.total_cycles
            cells.append(
                Fig8Cell(
                    app=app,
                    threads=threads,
                    speedup_frequency=by_policy[1],
                    speedup_round_robin=by_policy[0],
                    ideal=baseline.total_cycles / ideal.total_cycles,
                )
            )
    return cells


def render(cells: list[Fig8Cell]) -> str:
    table = report.format_table(
        ["App", "Threads", "Highest-freq", "Round-robin", "Max w/ THPs"],
        [
            [c.app, c.threads, report.speedup(c.speedup_frequency),
             report.speedup(c.speedup_round_robin), report.speedup(c.ideal)]
            for c in cells
        ],
        title=(
            f"Fig. 8 — multithread speedups at {BUDGET_PERCENT}% footprint budget"
        ),
    )
    return table
