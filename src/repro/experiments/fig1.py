"""Figure 1: motivation — page sizes vs Linux THP under fragmentation.

For each of the 8 applications, compare TLB-miss percentage and
speedup for: 100% 4KB pages (baseline), 100% 2MB pages (the ideal
allocation), and Linux's greedy THP policy with 50% of memory
fragmented. The paper's headline: huge pages yield up to 2x (geomean
1.3x) but greedy THP at 50% fragmentation rarely beats base pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import report
from repro.experiments.common import ExperimentScale, QUICK, RunSpec, run_specs
from repro.os.kernel import HugePagePolicy
from repro.workloads.registry import workload_names


@dataclass
class Fig1Row:
    """One application's three configurations."""

    app: str
    miss_4k: float
    miss_2m: float
    miss_thp: float
    speedup_2m: float
    speedup_thp: float


def run(
    scale: ExperimentScale = QUICK,
    apps: list[str] | None = None,
    jobs: int | None = None,
    resume: bool = False,
) -> list[Fig1Row]:
    """Produce one row per application (``jobs > 1`` fans out;
    ``resume`` skips journal-committed specs after a kill)."""
    apps = list(apps or workload_names())
    specs = [
        RunSpec.for_scale(scale, app, policy, fragmentation=frag)
        for app in apps
        for policy, frag in (
            (HugePagePolicy.NONE, 0.0),
            (HugePagePolicy.IDEAL, 0.0),
            (HugePagePolicy.LINUX_THP, 0.5),
        )
    ]
    results = run_specs(specs, jobs, resume=resume)
    rows = []
    for index, app in enumerate(apps):
        baseline, ideal, thp = results[3 * index : 3 * index + 3]
        rows.append(
            Fig1Row(
                app=app,
                miss_4k=baseline.tlb_miss_rate,
                miss_2m=ideal.tlb_miss_rate,
                miss_thp=thp.tlb_miss_rate,
                speedup_2m=baseline.total_cycles / ideal.total_cycles,
                speedup_thp=baseline.total_cycles / thp.total_cycles,
            )
        )
    return rows


def render(rows: list[Fig1Row]) -> str:
    """The figure's two panels as tables."""
    geomean_2m = _geomean([r.speedup_2m for r in rows])
    table = report.format_table(
        ["App", "TLBmiss 4KB", "TLBmiss 2MB", "TLBmiss THP@50%",
         "Speedup 2MB", "Speedup THP@50%"],
        [
            [
                r.app,
                report.percent(r.miss_4k),
                report.percent(r.miss_2m),
                report.percent(r.miss_thp),
                report.speedup(r.speedup_2m),
                report.speedup(r.speedup_thp),
            ]
            for r in rows
        ],
        title="Fig. 1 — TLB miss rate and speedup: 4KB vs 2MB vs Linux THP (50% frag)",
    )
    return f"{table}\ngeomean 2MB speedup: {report.speedup(geomean_2m)}"


def _geomean(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0
