"""Figure 2: page-reuse-distance characterization of BFS on Kronecker.

Profiles every 4KB page's mean reuse distance against its enclosing
2MB region's, classifying pages into the paper's three categories
(TLB-friendly / HUB / low-reuse). The reproduction asserts the HUB
phenomenon: a substantial page population with high 4KB distance but
low 2MB distance, concentrated in the per-vertex property arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import report
from repro.analysis.reuse import AccessClass, PageReuseProfile, profile_trace
from repro.experiments.common import ExperimentScale, QUICK
from repro.workloads.bfs import bfs_trace
from repro.workloads.registry import build_graph


@dataclass
class Fig2Result:
    """Classification summary plus the raw profile for plotting."""

    profile: PageReuseProfile
    counts: dict[AccessClass, int]
    hub_region_count: int
    #: fraction of HUB pages living in per-vertex property VMAs
    hub_in_properties: float


def run(scale: ExperimentScale = QUICK, threshold: int = 1024) -> Fig2Result:
    graph = build_graph("kronecker", scale=scale.graph_scale)
    trace, glayout = bfs_trace(graph)
    profile = profile_trace(trace, threshold=threshold)
    counts = profile.class_counts()
    hub_regions = profile.hub_regions()

    prop_regions = set()
    for vma in glayout.layout:
        if vma.name.startswith("prop."):
            prop_regions.update(vma.huge_regions)
    in_props = sum(1 for r in hub_regions if r in prop_regions)
    return Fig2Result(
        profile=profile,
        counts=counts,
        hub_region_count=len(hub_regions),
        hub_in_properties=in_props / len(hub_regions) if hub_regions else 0.0,
    )


def render(result: Fig2Result) -> str:
    total = sum(result.counts.values())
    rows = [
        [cls.value, count, report.percent(count / total)]
        for cls, count in result.counts.items()
    ]
    table = report.format_table(
        ["Access class", "4KB pages", "Share"],
        rows,
        title="Fig. 2 — page classification by reuse distance (BFS/Kronecker)",
    )
    return (
        f"{table}\n"
        f"HUB regions: {result.hub_region_count} "
        f"({report.percent(result.hub_in_properties)} in property arrays)"
    )
