"""Shared scaffolding for the per-figure experiments.

All experiments run on the :func:`repro.config.scaled_config` machine,
with physical memory sized relative to each workload's footprint so the
fragmentation fractions of §5.1.1 stress huge-page availability the way
the paper's 10-38GB footprints stressed its 128GB testbed.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from functools import lru_cache

from repro.config import SystemConfig, scaled_config
from repro.engine.simulation import SimulationResult, Simulator
from repro.engine.system import ProcessWorkload
from repro.os.kernel import HugePagePolicy, KernelParams
from repro.workloads.registry import build_workload

#: memory = footprint x this factor in fragmentation experiments
MEMORY_HEADROOM = 1.3


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for runtime."""

    name: str
    graph_scale: int
    proxy_accesses: int
    pagerank_iterations: int = 2

    def workload(self, app: str, dataset: str = "kronecker", **kwargs) -> ProcessWorkload:
        return build_named_workload(
            app,
            dataset=dataset,
            graph_scale=self.graph_scale,
            proxy_accesses=self.proxy_accesses,
            **kwargs,
        )


#: Benchmark default: minutes for the full figure suite.
QUICK = ExperimentScale(name="quick", graph_scale=13, proxy_accesses=250_000)
#: Closer to the paper's regime; tens of minutes for the full suite.
FULL = ExperimentScale(name="full", graph_scale=15, proxy_accesses=600_000)


@lru_cache(maxsize=32)
def _cached_workload(app: str, dataset: str, graph_scale: int, proxy_accesses: int,
                     sorted_dbg: bool) -> ProcessWorkload:
    params = {
        "dataset": dataset,
        "scale": graph_scale,
        "accesses": proxy_accesses,
        "sorted_dbg": sorted_dbg,
    }
    disk = _disk_cache()
    if disk is not None:
        cached = disk.get(app, params)
        if cached is not None:
            from repro.vm.layout import AddressSpaceLayout

            layout = AddressSpaceLayout.from_vmas(cached.metadata["vmas"])
            return ProcessWorkload.single_thread(cached, layout, name=cached.name)
    workload = build_workload(
        app,
        dataset=dataset,
        scale=graph_scale,
        sorted_dbg=sorted_dbg,
        accesses=proxy_accesses,
    )
    if disk is not None and len(workload.threads) == 1:
        from repro.trace.events import Trace

        compressed = workload.threads[0].trace
        import numpy as np

        addresses = np.repeat(
            compressed.vpns.astype(np.uint64) << np.uint64(12),
            compressed.counts,
        )
        disk.put(
            app,
            params,
            Trace(
                name=workload.name,
                addresses=addresses,
                footprint_bytes=workload.footprint_bytes,
                metadata={
                    "vmas": {
                        vma.name: (vma.start, vma.length)
                        for vma in workload.layout
                    }
                },
            ),
        )
    return workload


def _disk_cache():
    """Opt-in on-disk trace cache, keyed by package version.

    Enabled by setting ``REPRO_TRACE_CACHE`` to a directory; cached
    page-level streams skip regeneration across benchmark invocations.
    (The page-granular round trip preserves all TLB-visible behaviour.)
    """
    import os

    directory = os.environ.get("REPRO_TRACE_CACHE")
    if not directory:
        return None
    import repro
    from repro.trace.cache import TraceCache
    from pathlib import Path

    return TraceCache(Path(directory) / repro.__version__)


def build_named_workload(
    app: str,
    dataset: str = "kronecker",
    graph_scale: int = 14,
    proxy_accesses: int = 400_000,
    sorted_dbg: bool = False,
) -> ProcessWorkload:
    """Cached workload construction (trace generation dominates setup)."""
    cached = _cached_workload(app, dataset, graph_scale, proxy_accesses, sorted_dbg)
    return copy.deepcopy(cached)


def memory_for(*workloads: ProcessWorkload) -> int:
    """Physical memory sized for the combined footprint.

    Sized by touched 2MB regions rather than raw bytes: an all-huge
    allocation (the ideal bound) needs one whole frame per region, so
    byte-level sizing would under-provision workloads whose VMAs only
    partially fill their last region.
    """
    regions = sum(w.footprint_huge_regions() for w in workloads)
    return max(8 << 21, int(regions * (2 << 20) * MEMORY_HEADROOM))


def config_for(*workloads: ProcessWorkload, **overrides) -> SystemConfig:
    """Machine sized for the workloads.

    The promotion interval adapts to trace length so every run spans
    roughly the paper's count of 30-second intervals (~20-40 per run),
    regardless of how far the trace was scaled down.
    """
    total_accesses = sum(w.total_accesses for w in workloads)
    overrides.setdefault(
        "promote_every_accesses",
        min(60_000, max(5_000, total_accesses // 24)),
    )
    return scaled_config(memory_bytes=memory_for(*workloads), **overrides)


def run_policy(
    workload: ProcessWorkload,
    policy: HugePagePolicy,
    config: SystemConfig | None = None,
    fragmentation: float = 0.0,
    budget_regions: int | None = None,
    params: KernelParams | None = None,
) -> SimulationResult:
    """One simulation run of one workload under one policy."""
    config = config or config_for(workload)
    if params is None and budget_regions is not None:
        params = KernelParams(
            regions_to_promote=config.os.regions_to_promote,
            promotion_policy=config.os.promotion_policy,
            scan_pages_per_interval=config.os.scan_pages_per_interval,
            promotion_budget_regions=budget_regions,
        )
    simulator = Simulator(
        config, policy=policy, params=params, fragmentation=fragmentation
    )
    return simulator.run([copy.deepcopy(workload)])


def demotion_params(config: SystemConfig, budget_regions: int | None = None
                    ) -> KernelParams:
    """Kernel parameters with PCC-driven demotion enabled (§3.3.3)."""
    return KernelParams(
        regions_to_promote=config.os.regions_to_promote,
        promotion_policy=config.os.promotion_policy,
        scan_pages_per_interval=config.os.scan_pages_per_interval,
        promotion_budget_regions=budget_regions,
        demotion_enabled=True,
    )
