"""Shared scaffolding for the per-figure experiments.

All experiments run on the :func:`repro.config.scaled_config` machine,
with physical memory sized relative to each workload's footprint so the
fragmentation fractions of §5.1.1 stress huge-page availability the way
the paper's 10-38GB footprints stressed its 128GB testbed.

Workload construction is cached at two levels. An in-process
``lru_cache`` holds each built :class:`ProcessWorkload` for the life of
the interpreter; every consumer receives a **defensive clone** (fresh
workload/thread/trace shells around the shared immutable trace arrays),
so a simulation run can never mutate the cached instance another run
will receive — the simulator writes ``pid`` and core bindings into the
workloads it is handed. Beneath that, an optional content-addressed
disk cache (:mod:`repro.trace.cache`) persists the compressed
``(vpns, counts)`` streams; parallel ``--jobs`` runs memory-map those
entries so no worker regenerates or re-pickles a trace another
configuration already produced.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.config import SystemConfig, scaled_config
from repro.engine.simulation import SimulationResult, Simulator
from repro.engine.system import ProcessWorkload, ThreadWorkload
from repro.obs.tracer import span
from repro.os.kernel import HugePagePolicy, KernelParams
from repro.trace.events import CompressedTrace
from repro.workloads.registry import build_workload

#: memory = footprint x this factor in fragmentation experiments
MEMORY_HEADROOM = 1.3


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for runtime."""

    name: str
    graph_scale: int
    proxy_accesses: int
    pagerank_iterations: int = 2

    def workload(self, app: str, dataset: str = "kronecker", **kwargs) -> ProcessWorkload:
        return build_named_workload(
            app,
            dataset=dataset,
            graph_scale=self.graph_scale,
            proxy_accesses=self.proxy_accesses,
            **kwargs,
        )


#: Benchmark default: minutes for the full figure suite.
QUICK = ExperimentScale(name="quick", graph_scale=13, proxy_accesses=250_000)
#: Closer to the paper's regime; tens of minutes for the full suite.
FULL = ExperimentScale(name="full", graph_scale=15, proxy_accesses=600_000)


# ----------------------------------------------------------------------
# workload construction: lru cache + content-addressed disk cache


def _disk_cache():
    """The content-addressed trace cache, or ``None`` when disabled.

    Enabled by ``REPRO_TRACE_CACHE`` (a directory, or unset-with-jobs
    for the default location); ``REPRO_TRACE_CACHE=off`` disables it.
    Entries are keyed by (workload, dataset, scale, seed, generator
    version), so bumping the generator version orphans stale entries.
    """
    from repro.trace.cache import TraceCache

    directory = os.environ.get("REPRO_TRACE_CACHE")
    if not directory or directory.strip().lower() in ("0", "off", "none"):
        return None
    return TraceCache(directory)


def _cache_params(dataset: str, graph_scale: int, proxy_accesses: int,
                  sorted_dbg: bool, seed: int | None) -> dict:
    return {
        "dataset": dataset,
        "scale": graph_scale,
        "accesses": proxy_accesses,
        "sorted_dbg": sorted_dbg,
        "seed": seed,
    }


def workload_to_entry(workload: ProcessWorkload) -> tuple[dict, dict]:
    """Serialize a workload to (arrays, meta) for the disk cache.

    The compressed per-thread ``(vpns, counts)`` streams are stored as
    individual ``.npy`` arrays (memory-mappable); everything else —
    layout VMAs, access totals, trace metadata — goes in the JSON meta
    record.
    """
    arrays: dict[str, np.ndarray] = {}
    threads = []
    for index, thread in enumerate(workload.threads):
        trace = thread.trace
        arrays[f"vpns{index}"] = trace.vpns
        arrays[f"counts{index}"] = trace.counts
        threads.append(
            {
                "name": trace.name,
                "total_accesses": trace.total_accesses,
                "footprint_bytes": trace.footprint_bytes,
                "metadata": _jsonable_meta(trace.metadata),
            }
        )
    meta = {
        "name": workload.name,
        "threads": threads,
        "vmas": {vma.name: (vma.start, vma.length) for vma in workload.layout},
    }
    return arrays, meta


def workload_from_entry(entry) -> ProcessWorkload:
    """Rebuild a workload from a cache entry (arrays may be mmapped)."""
    from repro.vm.layout import AddressSpaceLayout

    layout = AddressSpaceLayout.from_vmas(
        {name: tuple(span) for name, span in entry.meta["vmas"].items()}
    )
    threads = []
    for index, info in enumerate(entry.meta["threads"]):
        trace = CompressedTrace(
            name=info["name"],
            vpns=entry.arrays[f"vpns{index}"],
            counts=entry.arrays[f"counts{index}"],
            total_accesses=info["total_accesses"],
            footprint_bytes=info["footprint_bytes"],
            metadata=dict(info.get("metadata") or {}),
        )
        threads.append(ThreadWorkload(trace=trace))
    return ProcessWorkload(name=entry.meta["name"], layout=layout, threads=threads)


def _jsonable_meta(value):
    from repro.trace.io import _jsonable

    return _jsonable(value)


@lru_cache(maxsize=32)
def _cached_workload(app: str, dataset: str, graph_scale: int, proxy_accesses: int,
                     sorted_dbg: bool, seed: int | None) -> ProcessWorkload:
    """Build (or load) one workload; callers must clone before use."""
    from repro.resilience.faults import fault_point

    params = _cache_params(dataset, graph_scale, proxy_accesses, sorted_dbg, seed)
    disk = _disk_cache()
    if disk is not None:
        entry = disk.get_entry(app, params)
        if entry is not None:
            return workload_from_entry(entry)
    fault_point("workload.build", detail=app)
    with span("workload.build", cat="workload", app=app, dataset=dataset,
              scale=graph_scale, accesses=proxy_accesses):
        workload = build_workload(
            app,
            dataset=dataset,
            scale=graph_scale,
            sorted_dbg=sorted_dbg,
            accesses=proxy_accesses,
            seed=seed,
        )
    if disk is not None:
        arrays, meta = workload_to_entry(workload)
        disk.put_entry(app, params, arrays, meta)
    return workload


def clone_workload(workload: ProcessWorkload) -> ProcessWorkload:
    """Defensive copy sharing the immutable trace arrays.

    Simulation runs mutate the workload shell — ``pid`` assignment,
    thread-to-core binding — but never the compressed address arrays.
    Cloning rebuilds every mutable layer (workload, threads, traces,
    layout, metadata dicts) around the same ``vpns``/``counts`` arrays,
    so cached instances stay pristine and clones stay cheap even for
    multi-million-record traces.
    """
    threads = [
        ThreadWorkload(
            trace=CompressedTrace(
                name=t.trace.name,
                vpns=t.trace.vpns,
                counts=t.trace.counts,
                total_accesses=t.trace.total_accesses,
                footprint_bytes=t.trace.footprint_bytes,
                metadata=dict(t.trace.metadata),
            ),
            core=t.core,
        )
        for t in workload.threads
    ]
    return ProcessWorkload(
        name=workload.name,
        layout=copy.deepcopy(workload.layout),
        threads=threads,
        pid=workload.pid,
    )


def build_named_workload(
    app: str,
    dataset: str = "kronecker",
    graph_scale: int = 14,
    proxy_accesses: int = 400_000,
    sorted_dbg: bool = False,
    seed: int | None = None,
) -> ProcessWorkload:
    """Cached workload construction (trace generation dominates setup).

    Always returns a defensive clone of the cached instance — runs may
    freely mutate the result without aliasing other runs.
    """
    cached = _cached_workload(
        app, dataset, graph_scale, proxy_accesses, sorted_dbg, seed
    )
    return clone_workload(cached)


def cached_process_workload(name: str, params: dict, builder) -> ProcessWorkload:
    """Disk-cache an arbitrarily built workload (e.g. fig8's threaded
    partitions), bypassing the named-workload registry.

    ``builder()`` runs on a miss; the result is serialized through
    :func:`workload_to_entry` so later runs (and concurrent workers —
    writes are atomic, last-writer-wins on identical content)
    memory-map the stored arrays. A no-op pass-through when the disk
    cache is disabled.
    """
    disk = _disk_cache()
    if disk is not None:
        entry = disk.get_entry(name, params)
        if entry is not None:
            return workload_from_entry(entry)
    with span("workload.build", cat="workload", app=name):
        workload = builder()
    if disk is not None:
        arrays, meta = workload_to_entry(workload)
        disk.put_entry(name, params, arrays, meta)
    return workload


def ensure_workload_cached(
    app: str,
    dataset: str = "kronecker",
    graph_scale: int = 14,
    proxy_accesses: int = 400_000,
    sorted_dbg: bool = False,
    seed: int | None = None,
) -> None:
    """Make sure the disk cache holds this workload's trace entry.

    Used by the parallel runner to pre-warm the cache from the parent
    before farming configurations out, so workers memory-map one shared
    entry instead of racing to regenerate it. A no-op when the disk
    cache is disabled.
    """
    disk = _disk_cache()
    if disk is None:
        return
    params = _cache_params(dataset, graph_scale, proxy_accesses, sorted_dbg, seed)
    if disk.get_entry(app, params) is not None:
        return
    workload = _cached_workload(
        app, dataset, graph_scale, proxy_accesses, sorted_dbg, seed
    )
    arrays, meta = workload_to_entry(workload)
    disk.put_entry(app, params, arrays, meta)


# ----------------------------------------------------------------------
# machine sizing


def memory_for(*workloads: ProcessWorkload) -> int:
    """Physical memory sized for the combined footprint.

    Sized by touched 2MB regions rather than raw bytes: an all-huge
    allocation (the ideal bound) needs one whole frame per region, so
    byte-level sizing would under-provision workloads whose VMAs only
    partially fill their last region.
    """
    regions = sum(w.footprint_huge_regions() for w in workloads)
    return max(8 << 21, int(regions * (2 << 20) * MEMORY_HEADROOM))


def config_for(*workloads: ProcessWorkload, **overrides) -> SystemConfig:
    """Machine sized for the workloads.

    The promotion interval adapts to trace length so every run spans
    roughly the paper's count of 30-second intervals (~20-40 per run),
    regardless of how far the trace was scaled down.
    """
    total_accesses = sum(w.total_accesses for w in workloads)
    overrides.setdefault(
        "promote_every_accesses",
        min(60_000, max(5_000, total_accesses // 24)),
    )
    return scaled_config(memory_bytes=memory_for(*workloads), **overrides)


#: Named engine tiers mapped onto :class:`Simulator` switches. ``None``
#: (or ``columnar``) is the engine default; the ladder the serving
#: layer degrades along is columnar -> fast -> scalar, all of which are
#: bit-identical by the differential oracle's invariant.
ENGINE_TIER_SWITCHES: dict[str, dict[str, bool]] = {
    "scalar": {"fast_path": False, "batch": False, "columnar": False},
    "fast": {"fast_path": True, "batch": False, "columnar": False},
    "batch": {"fast_path": True, "batch": True, "columnar": False},
    "columnar": {"fast_path": True, "batch": True, "columnar": True},
}


def engine_tier_switches(tier: str | None) -> dict[str, bool]:
    """Simulator keyword switches for a named engine tier."""
    if tier is None:
        return {}
    try:
        return dict(ENGINE_TIER_SWITCHES[tier])
    except KeyError:
        raise ValueError(
            f"unknown engine tier {tier!r}; "
            f"choose from {sorted(ENGINE_TIER_SWITCHES)}"
        ) from None


def run_policy(
    workload: ProcessWorkload,
    policy: HugePagePolicy,
    config: SystemConfig | None = None,
    fragmentation: float = 0.0,
    budget_regions: int | None = None,
    params: KernelParams | None = None,
    engine_tier: str | None = None,
) -> SimulationResult:
    """One simulation run of one workload under one policy."""
    config = config or config_for(workload)
    if params is None and budget_regions is not None:
        params = KernelParams(
            regions_to_promote=config.os.regions_to_promote,
            promotion_policy=config.os.promotion_policy,
            scan_pages_per_interval=config.os.scan_pages_per_interval,
            promotion_budget_regions=budget_regions,
        )
    simulator = Simulator(
        config,
        policy=policy,
        params=params,
        fragmentation=fragmentation,
        **engine_tier_switches(engine_tier),
    )
    return simulator.run([clone_workload(workload)])


def demotion_params(config: SystemConfig, budget_regions: int | None = None
                    ) -> KernelParams:
    """Kernel parameters with PCC-driven demotion enabled (§3.3.3)."""
    return KernelParams(
        regions_to_promote=config.os.regions_to_promote,
        promotion_policy=config.os.promotion_policy,
        scan_pages_per_interval=config.os.scan_pages_per_interval,
        promotion_budget_regions=budget_regions,
        demotion_enabled=True,
    )


# ----------------------------------------------------------------------
# parallel fan-out of independent (workload x policy) configurations


@dataclass(frozen=True)
class RunSpec:
    """One self-contained simulation configuration.

    A spec carries everything a worker process needs to deterministically
    rebuild the workload (through the trace cache), size the machine,
    and run one policy — so sweeps fan out as plain picklable values.
    """

    app: str
    policy: str  # HugePagePolicy value
    dataset: str = "kronecker"
    graph_scale: int = 13
    proxy_accesses: int = 250_000
    fragmentation: float = 0.0
    #: promotion footprint budget as a percent of the app footprint
    budget_percent: int | None = None
    demotion: bool = False
    promote_every_accesses: int | None = None
    seed: int | None = None
    #: caller-side tag for reassembling sweep results
    label: str = ""
    #: engine tier override (``scalar``/``fast``/``batch``/``columnar``);
    #: ``None`` runs the engine default. Part of the spec so journal
    #: keys distinguish tiers — a degraded re-run never aliases a
    #: full-tier checkpoint.
    engine_tier: str | None = None
    #: TLB victim policy ablation axis (``lru``/``plru``). Part of the
    #: spec for the same journal-keying reason as ``engine_tier``: a
    #: plru sweep must never resume from an lru checkpoint.
    tlb_replacement: str = "lru"

    @classmethod
    def for_scale(cls, scale: ExperimentScale, app: str, policy: HugePagePolicy,
                  **kwargs) -> "RunSpec":
        return cls(
            app=app,
            policy=policy.value,
            graph_scale=scale.graph_scale,
            proxy_accesses=scale.proxy_accesses,
            **kwargs,
        )


def execute_spec(spec: RunSpec) -> SimulationResult:
    """Run one :class:`RunSpec` (the process-pool task function)."""
    from repro.analysis.utility import budget_regions_for

    workload = build_named_workload(
        spec.app,
        dataset=spec.dataset,
        graph_scale=spec.graph_scale,
        proxy_accesses=spec.proxy_accesses,
        seed=spec.seed,
    )
    overrides = {}
    if spec.promote_every_accesses is not None:
        overrides["promote_every_accesses"] = spec.promote_every_accesses
    config = config_for(workload, **overrides)
    if spec.tlb_replacement != "lru":
        config = config.with_tlb_replacement(spec.tlb_replacement)
    policy = HugePagePolicy(spec.policy)
    budget = None
    if spec.budget_percent is not None:
        budget = budget_regions_for(workload, spec.budget_percent)
        if budget == 0 and not spec.demotion:
            # A zero budget is the 4KB baseline: run it as NONE, the
            # same swap utility.run_budget_point performs.
            policy = HugePagePolicy.NONE
            budget = None
    params = demotion_params(config, budget) if spec.demotion else None
    return run_policy(
        workload,
        policy,
        config,
        fragmentation=spec.fragmentation,
        budget_regions=budget,
        params=params,
        engine_tier=spec.engine_tier,
    )


def parallel_cache_dir():
    """Trace-cache directory used for a parallel run.

    Honors ``REPRO_TRACE_CACHE`` when set to a directory; otherwise the
    default user cache location. Parallel runs always use a disk cache —
    it is the mechanism that keeps workers from regenerating traces.
    """
    from repro.trace.cache import cache_dir_from_env, default_cache_dir

    return cache_dir_from_env() or default_cache_dir()


def prewarm_trace_cache(specs, cache_dir=None) -> None:
    """Write every unique workload among ``specs`` to the disk cache.

    Before warming, tmp files orphaned by previously crashed writers
    are swept (:meth:`~repro.trace.cache.TraceCache.recover_stale`).
    Each warm-up is retried through a small bounded loop so a transient
    builder failure (including an injected one) never kills the sweep
    before it even fans out.
    """
    import time as _time

    from repro.trace.cache import CACHE_DIR_ENV, TraceCache

    cache_dir = cache_dir or parallel_cache_dir()
    TraceCache(cache_dir).recover_stale()
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(cache_dir)
    try:
        seen = set()
        for spec in specs:
            ident = (spec.app, spec.dataset, spec.graph_scale,
                     spec.proxy_accesses, spec.seed)
            if ident in seen:
                continue
            seen.add(ident)
            for attempt in range(3):
                try:
                    ensure_workload_cached(
                        spec.app,
                        dataset=spec.dataset,
                        graph_scale=spec.graph_scale,
                        proxy_accesses=spec.proxy_accesses,
                        seed=spec.seed,
                    )
                    break
                except Exception:
                    if attempt == 2:
                        raise
                    _time.sleep(0.05 * (attempt + 1))
    finally:
        if previous is None:
            del os.environ[CACHE_DIR_ENV]
        else:
            os.environ[CACHE_DIR_ENV] = previous


def run_specs(
    specs,
    jobs: int | None = None,
    resume: bool = False,
    journal=None,
    policy=None,
    progress_label: str | None = None,
) -> list[SimulationResult]:
    """Run many independent specs, serially or across a process pool.

    With ``jobs > 1`` the trace cache is pre-warmed from the parent
    (one write per unique workload) and every worker memory-maps the
    shared entries. Results come back in spec order and their metrics
    exports are republished to the parent's collectors, so serial and
    parallel runs are observationally identical.

    Execution is resilient (see :func:`repro.experiments.parallel.fan_out`):
    failed specs are retried with backoff, crashed or hung workers
    recycle the pool, and — when a journal is active (``journal``
    argument or ``$REPRO_JOURNAL``) — every completed spec's result is
    checkpoint-committed so ``resume=True`` skips it after a kill.
    """
    from repro.experiments.parallel import fan_out, resolve_jobs
    from repro.resilience.journal import journal_from_env

    specs = list(specs)
    if journal is None:
        journal = journal_from_env()
    cache_dir = None
    jobs_effective = 1
    if resolve_jobs(jobs) > 1 and len(specs) > 1:
        cache_dir = parallel_cache_dir()
        prewarm_trace_cache(specs, cache_dir)
        jobs_effective = jobs
    return fan_out(
        execute_spec,
        specs,
        jobs=jobs_effective,
        cache_dir=cache_dir,
        policy=policy,
        journal=journal,
        resume=resume,
        progress_label=progress_label,
    )
