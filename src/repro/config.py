"""System configuration for the PCC reproduction.

The defaults mirror Table 2 of the paper (Intel Xeon E5-2667 v3 TLB
organization, 128-entry fully-associative per-core PCC with 8-bit
frequency counters, up to 128 promotions per interval). Benchmarks use
:func:`scaled_config` — smaller TLBs and shorter intervals — so that
laptop-sized traces sit in the same footprint-to-TLB-coverage regime as
the paper's multi-GB workloads on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.vm.address import PageSize


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of one TLB structure.

    ``associativity=0`` denotes full associativity (one set spanning
    every entry), matching the paper's notation for the L1 2MB I-TLB.

    ``replacement`` selects the per-set victim policy: ``"lru"`` (true
    LRU, the model's historical default) or ``"plru"`` (tree
    pseudo-LRU, the policy real translation hardware such as Ariane's
    TLBs implements — see ``repro.tlb.plru``).
    """

    entries: int
    associativity: int
    page_sizes: tuple[PageSize, ...]
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError(f"TLB must have at least 1 entry, got {self.entries}")
        ways = self.entries if self.associativity == 0 else self.associativity
        if ways < 0:
            raise ValueError(f"negative associativity: {self.associativity}")
        if self.entries % ways != 0:
            raise ValueError(
                f"{self.entries} entries not divisible into {ways}-way sets"
            )
        if not self.page_sizes:
            raise ValueError("a TLB must serve at least one page size")
        if self.replacement not in ("lru", "plru"):
            raise ValueError(
                f"unknown TLB replacement policy: {self.replacement!r}"
            )

    @property
    def ways(self) -> int:
        """Effective associativity (full associativity resolved)."""
        return self.entries if self.associativity == 0 else self.associativity

    @property
    def sets(self) -> int:
        """Number of sets."""
        return self.entries // self.ways


@dataclass(frozen=True)
class TLBHierarchyConfig:
    """Two-level data-TLB hierarchy per Table 2 of the paper."""

    l1_base: TLBConfig = TLBConfig(64, 4, (PageSize.BASE,))
    l1_huge: TLBConfig = TLBConfig(32, 4, (PageSize.HUGE,))
    l1_giga: TLBConfig = TLBConfig(4, 4, (PageSize.GIGA,))
    l2: TLBConfig = TLBConfig(1024, 8, (PageSize.BASE, PageSize.HUGE))

    def coverage_bytes(self) -> int:
        """Upper-bound bytes the hierarchy can map with 4KB entries only."""
        return (self.l1_base.entries + self.l2.entries) * PageSize.BASE.bytes

    def with_replacement(self, replacement: str) -> "TLBHierarchyConfig":
        """Copy with every structure's replacement policy swapped.

        The hierarchy enforces one policy across all four structures —
        mixed-policy stacks are not a hardware design point we model.
        The page-walk caches are *not* governed by this knob: they stay
        LRU regardless (see ``repro.tlb.walker``).
        """
        return replace(
            self,
            l1_base=replace(self.l1_base, replacement=replacement),
            l1_huge=replace(self.l1_huge, replacement=replacement),
            l1_giga=replace(self.l1_giga, replacement=replacement),
            l2=replace(self.l2, replacement=replacement),
        )


@dataclass(frozen=True)
class PCCConfig:
    """Promotion candidate cache parameters (§3.2.1).

    The paper's PCC is fully associative with 40-bit 2MB tags and 8-bit
    saturating frequency counters; a smaller companion PCC tracks 1GB
    regions. ``replacement`` selects LFU-with-LRU-tiebreak (the paper's
    choice) or plain LRU (its simpler alternative, evaluated in the
    replacement ablation).
    """

    entries: int = 128
    counter_bits: int = 8
    giga_entries: int = 8
    giga_enabled: bool = False
    replacement: str = "lfu"  # "lfu" (LRU tiebreak) or "lru"
    #: 0 = fully associative (the paper's design: "the PCC can afford
    #: full associativity to avoid all conflict misses"); N > 0 builds
    #: an N-way set-associative variant for the ablation
    associativity: int = 0
    #: one global PCC shared by all cores instead of per-core PCCs —
    #: §3.2.2's design alternative. Only meaningful for single-process
    #: runs (a shared structure cannot attribute tags to processes
    #: without the extra complexity the paper argues against).
    shared: bool = False

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError(f"PCC needs at least 1 entry, got {self.entries}")
        if not 1 <= self.counter_bits <= 32:
            raise ValueError(f"counter_bits out of range: {self.counter_bits}")
        if self.giga_entries < 0:
            raise ValueError(f"negative giga_entries: {self.giga_entries}")
        if self.replacement not in ("lfu", "lru"):
            raise ValueError(f"unknown replacement policy: {self.replacement!r}")
        if self.associativity < 0:
            raise ValueError(f"negative associativity: {self.associativity}")
        if self.associativity > 0 and self.entries % self.associativity != 0:
            raise ValueError(
                f"{self.entries} entries not divisible into "
                f"{self.associativity}-way sets"
            )

    @property
    def counter_max(self) -> int:
        """Saturation value of the frequency counters."""
        return (1 << self.counter_bits) - 1


@dataclass(frozen=True)
class WalkerConfig:
    """Page-table walker and page-walk-cache parameters."""

    pwc_enabled: bool = True
    #: entries in each of the PML4/PUD/PMD partial-walk caches
    pwc_entries: int = 32
    #: cycles for one page-table memory reference during a walk
    memory_ref_cycles: int = 40
    #: cycles for a PWC hit replacing a memory reference
    pwc_hit_cycles: int = 2


@dataclass(frozen=True)
class TimingConfig:
    """Cycle model for runtime/speedup estimation (§4's real-system step).

    ``base_cycles_per_access`` stands in for all non-translation work
    (compute, cache hierarchy); translation overheads are added on top,
    so removing page walks produces the paper's speedup shape.
    """

    base_cycles_per_access: int = 14
    l1_tlb_hit_cycles: int = 0
    l2_tlb_hit_cycles: int = 7
    #: charged once per huge-page promotion (copy + mapping update)
    promotion_cycles: int = 60_000
    #: charged per core for each TLB shootdown broadcast
    shootdown_cycles: int = 4_000
    #: charged when greedy THP zeroes a 2MB page at fault time (512x 4KB)
    huge_zero_cycles: int = 25_000
    base_zero_cycles: int = 50
    #: charged per base page moved during memory compaction
    compaction_page_cycles: int = 300


@dataclass(frozen=True)
class OSConfig:
    """Kernel-side policy parameters (§3.3).

    ``promote_every_accesses`` is the simulation analogue of the paper's
    30-second promotion interval, which the authors calibrated from
    observed accesses per second.
    """

    promote_every_accesses: int = 500_000
    #: kernel parameter regions_to_promote: candidates promoted per interval
    regions_to_promote: int = 128
    #: kernel parameter promotion_policy: 0 = round robin, 1 = highest frequency
    promotion_policy: int = 1
    #: kernel parameter promotion_bias_process: pids to prioritize
    promotion_bias_processes: tuple[int, ...] = ()
    demotion_enabled: bool = False
    #: khugepaged-equivalent scan budget (pages per interval), per §5.1
    scan_pages_per_interval: int = 4096
    compaction_enabled: bool = True


@dataclass(frozen=True)
class SystemConfig:
    """Top-level bundle: one simulated machine."""

    tlb: TLBHierarchyConfig = field(default_factory=TLBHierarchyConfig)
    pcc: PCCConfig = field(default_factory=PCCConfig)
    walker: WalkerConfig = field(default_factory=WalkerConfig)
    timing: TimingConfig = field(default_factory=TimingConfig)
    os: OSConfig = field(default_factory=OSConfig)
    #: physical memory per NUMA node; frames are 2MB-aligned internally
    memory_bytes: int = 64 << 30
    cores: int = 1

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"need at least one core, got {self.cores}")
        if self.memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be positive: {self.memory_bytes}")

    def with_(self, **overrides) -> "SystemConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **overrides)

    def with_tlb_replacement(self, replacement: str) -> "SystemConfig":
        """Copy with the TLB hierarchy's replacement policy swapped."""
        return replace(self, tlb=self.tlb.with_replacement(replacement))


def paper_config() -> SystemConfig:
    """Table-2-faithful configuration of the evaluation machine."""
    return SystemConfig()


def scaled_config(
    *,
    cores: int = 1,
    pcc_entries: int = 32,
    memory_bytes: int = 768 << 20,
    promote_every_accesses: int = 60_000,
    regions_to_promote: int = 8,
) -> SystemConfig:
    """Laptop-scale configuration used by the benchmark harness.

    TLB reach shrinks by 8x relative to Table 2 so that workloads tens
    of MB in footprint exercise the same pressure regime as the paper's
    multi-GB inputs against 4MB of L2 TLB reach. The PCC shrinks by the
    same factor, preserving the PCC-capacity-to-footprint ratio.

    Kernel-work costs (promotion copies, zeroing, shootdowns) shrink
    with the run length: the paper's runs span minutes, so a 2MB copy
    is a vanishing fraction of runtime; scaled traces span ~10^7
    cycles, so the absolute constants must shrink to keep the
    *cost share* realistic.
    """
    tlb = TLBHierarchyConfig(
        l1_base=TLBConfig(16, 4, (PageSize.BASE,)),
        l1_huge=TLBConfig(8, 4, (PageSize.HUGE,)),
        l1_giga=TLBConfig(2, 2, (PageSize.GIGA,)),
        l2=TLBConfig(128, 8, (PageSize.BASE, PageSize.HUGE)),
    )
    timing = TimingConfig(
        promotion_cycles=5_000,
        shootdown_cycles=400,
        huge_zero_cycles=4_000,
        base_zero_cycles=10,
        compaction_page_cycles=40,
    )
    return SystemConfig(
        tlb=tlb,
        pcc=PCCConfig(entries=pcc_entries),
        timing=timing,
        os=OSConfig(
            promote_every_accesses=promote_every_accesses,
            regions_to_promote=regions_to_promote,
            # khugepaged/HawkEye scan budget shrinks with the PCC's
            # promotion quota, preserving the paper's scan-starved
            # software baselines (4096 pages/interval against multi-GB
            # footprints): one region per interval at this scale.
            scan_pages_per_interval=512,
        ),
        memory_bytes=memory_bytes,
        cores=cores,
    )


def tiny_config(**overrides) -> SystemConfig:
    """Minimal configuration for unit tests: tiny TLBs, tiny PCC."""
    tlb = TLBHierarchyConfig(
        l1_base=TLBConfig(4, 2, (PageSize.BASE,)),
        l1_huge=TLBConfig(2, 2, (PageSize.HUGE,)),
        l1_giga=TLBConfig(2, 2, (PageSize.GIGA,)),
        l2=TLBConfig(8, 2, (PageSize.BASE, PageSize.HUGE)),
    )
    config = SystemConfig(
        tlb=tlb,
        pcc=PCCConfig(entries=4, giga_entries=2),
        os=OSConfig(promote_every_accesses=64, regions_to_promote=4),
        memory_bytes=64 << 20,
    )
    return config.with_(**overrides) if overrides else config
