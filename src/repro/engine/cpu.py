"""One simulated core: TLB hierarchy + walker + per-core PCCs.

The core consumes page-granular trace records and produces translation
cycle costs. It is the hardware half of the co-design: everything here
runs "below" the OS, and the only southbound interface is the ranked
candidate dump; the only northbound one is the shootdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.core.pcc import PromotionCandidateCache
from repro.tlb.hierarchy import HitLevel, TLBHierarchy
from repro.tlb.walker import PageTableWalker
from repro.vm.address import BASE_PAGE_SHIFT, GIGA_PAGE_SHIFT, HUGE_PAGE_SHIFT
from repro.vm.pagetable import PageTable


@dataclass
class CoreStats:
    """Per-core access/translation counters."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    walks: int = 0
    translation_cycles: int = 0

    @property
    def walk_rate(self) -> float:
        """Fraction of accesses requiring a page table walk (PTW %)."""
        return self.walks / self.accesses if self.accesses else 0.0

    def as_metrics(self, prefix: str) -> dict[str, int]:
        """Counter readings for the metrics registry, under ``prefix``."""
        return {
            f"{prefix}.accesses": self.accesses,
            f"{prefix}.l1_hits": self.l1_hits,
            f"{prefix}.l2_hits": self.l2_hits,
            f"{prefix}.walks": self.walks,
            f"{prefix}.translation_cycles": self.translation_cycles,
        }


class Core:
    """TLBs, walker and PCCs for one hardware thread."""

    def __init__(
        self,
        config: SystemConfig,
        core_id: int = 0,
        shared_pcc: PromotionCandidateCache | None = None,
    ) -> None:
        self.config = config
        self.core_id = core_id
        self.tlb = TLBHierarchy(config.tlb)
        self.walker = PageTableWalker(config.walker)
        # §3.2.2: per-core PCCs by default; a single global structure
        # can be injected to model the shared design alternative.
        # (Explicit None-check: an empty PCC is falsy via __len__.)
        self.pcc = (
            shared_pcc
            if shared_pcc is not None
            else PromotionCandidateCache(config.pcc)
        )
        self.pcc_1gb = (
            PromotionCandidateCache(config.pcc, capacity=config.pcc.giga_entries)
            if config.pcc.giga_enabled and config.pcc.giga_entries > 0
            else None
        )
        self.stats = CoreStats()
        # Hot-path constants and bound methods hoisted out of the
        # config dataclasses / object graph: translate() runs per TLB
        # probe and each saved attribute chain is two dict lookups.
        self._l1_hit_cycles = config.timing.l1_tlb_hit_cycles
        self._l2_hit_cycles = config.timing.l2_tlb_hit_cycles
        self._tlb_lookup = self.tlb.lookup
        self._tlb_fill = self.tlb.fill
        self._walker_walk = self.walker.walk
        self._pcc_access = self.pcc.access
        self._pcc_1gb_access = (
            self.pcc_1gb.access if self.pcc_1gb is not None else None
        )

    def translate(self, vpn: int, page_table: PageTable, repeat: int = 1):
        """Simulate ``repeat`` consecutive accesses to 4KB page ``vpn``.

        Only the first access can miss (the rest hit the just-filled L1
        entry); the translation cycles returned cover all ``repeat``
        accesses. Base (non-translation) cycles are the timing model's
        concern, not the core's.

        Returns ``(cycles, level, page_size)``: the translation cycles,
        the :class:`~repro.tlb.hierarchy.HitLevel` that answered, and
        the effective :class:`~repro.vm.address.PageSize` of the
        translation (on a miss, the size the walk resolved and filled).
        The extra outputs let the translation pipeline maintain its
        fast-path hints without re-probing any structure.
        """
        stats = self.stats
        stats.accesses += repeat
        result = self._tlb_lookup(vpn)
        extra_hits = repeat - 1
        level = result.level
        if level is HitLevel.L1:
            stats.l1_hits += repeat
            return self._l1_hit_cycles * repeat, level, result.page_size
        if level is HitLevel.L2:
            stats.l2_hits += 1
            stats.l1_hits += extra_hits
            return (
                self._l2_hit_cycles + self._l1_hit_cycles * extra_hits,
                level,
                result.page_size,
            )

        # Full hierarchy miss: hardware walk + PCC admission (Fig. 3).
        vaddr = vpn << BASE_PAGE_SHIFT
        walk = self._walker_walk(vaddr, page_table)
        stats.walks += 1
        stats.l1_hits += extra_hits
        cycles = walk.cycles + self._l1_hit_cycles * extra_hits
        if walk.pcc_2mb_candidate is not None:
            self._pcc_access(
                walk.pcc_2mb_candidate, promoted_leaf=walk.leaf_is_promoted
            )
        if self._pcc_1gb_access is not None and walk.pcc_1gb_candidate is not None:
            self._pcc_1gb_access(
                walk.pcc_1gb_candidate, promoted_leaf=walk.leaf_is_promoted
            )
        page_size = walk.mapping.page_size
        self._tlb_fill(vpn, page_size)
        stats.translation_cycles += cycles
        return cycles, level, page_size

    def access_page(self, vpn: int, page_table: PageTable, repeat: int = 1) -> int:
        """Cycles for ``repeat`` accesses to ``vpn`` (see :meth:`translate`)."""
        return self.translate(vpn, page_table, repeat)[0]

    def shootdown(self, huge_region: int) -> None:
        """Invalidate a 2MB region everywhere on this core.

        Promotion-triggered shootdowns also invalidate the region from
        the PCC (§3.3), preventing stale candidates.
        """
        self.tlb.shootdown_region(huge_region)
        self.pcc.invalidate(huge_region)
        if self.pcc_1gb is not None:
            giga = huge_region >> (GIGA_PAGE_SHIFT - HUGE_PAGE_SHIFT)
            first = giga << (GIGA_PAGE_SHIFT - HUGE_PAGE_SHIFT)
            # only drop the 1GB entry if this was its last resident child;
            # conservatively keep it (hardware would), nothing depends on it
            del first

    def dump_pcc(self):
        """Ranked 2MB candidates without clearing (on-demand OS read)."""
        return self.pcc.ranked()

    def dump_pcc_1gb(self):
        """Ranked 1GB candidates (empty when the 1GB PCC is disabled)."""
        return self.pcc_1gb.ranked() if self.pcc_1gb is not None else []
