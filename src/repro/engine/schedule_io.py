"""Promotion-schedule persistence for the two-step methodology (§4).

The paper's offline simulation writes "the PCC candidate addresses as
well as the time when they are promoted ... in a trace file", which the
real-system step later consumes. These helpers provide that file
format: a JSON-lines document, one scheduled candidate per line, with a
small header establishing the format version.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.dump import CandidateRecord
from repro.engine.offline import PromotionSchedule, ScheduledPromotion
from repro.vm.address import PageSize

_FORMAT = "pcc-promotion-schedule"
_VERSION = 1


def save_schedule(schedule: PromotionSchedule, path: str | Path) -> Path:
    """Write a schedule as JSON lines (header line + one per entry)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        header = {"format": _FORMAT, "version": _VERSION,
                  "entries": len(schedule)}
        handle.write(json.dumps(header) + "\n")
        for entry in schedule.entries:
            record = entry.record
            handle.write(
                json.dumps(
                    {
                        "at": entry.at_access,
                        "pid": record.pid,
                        "core": record.core,
                        "tag": record.tag,
                        "freq": record.frequency,
                        "size": record.page_size.name,
                    }
                )
                + "\n"
            )
    return path


def load_schedule(path: str | Path) -> PromotionSchedule:
    """Read a schedule written by :func:`save_schedule`."""
    path = Path(path)
    schedule = PromotionSchedule()
    with path.open() as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path} is empty")
        header = json.loads(header_line)
        if header.get("format") != _FORMAT:
            raise ValueError(f"{path} is not a promotion schedule")
        if header.get("version") != _VERSION:
            raise ValueError(
                f"unsupported schedule version {header.get('version')!r}"
            )
        for line in handle:
            if not line.strip():
                continue
            raw = json.loads(line)
            schedule.entries.append(
                ScheduledPromotion(
                    at_access=int(raw["at"]),
                    record=CandidateRecord(
                        pid=int(raw["pid"]),
                        core=int(raw["core"]),
                        tag=int(raw["tag"]),
                        frequency=int(raw["freq"]),
                        page_size=PageSize[raw["size"]],
                    ),
                )
            )
    if len(schedule) != header["entries"]:
        raise ValueError(
            f"{path} truncated: header says {header['entries']} entries, "
            f"found {len(schedule)}"
        )
    return schedule
