"""Optional numba acceleration for the columnar engine kernels.

Activation requires **both** of:

1. ``REPRO_JIT=1`` (or ``true``/``on``/``yes``) in the environment, and
2. numba importable in the current interpreter.

When either is missing the engine silently uses the pure-numpy chase in
:mod:`repro.engine.columnar` — same inputs, bit-identical outputs, so
runs are reproducible across hosts with and without numba. The JIT'd
kernel is a direct sequential simulation of each set's true-LRU stack
over the grouped touch stream (sets are independent, so grouped order —
by set, program order within a set — is equivalent to program order),
which trades the chase's fixed vector-op overhead for compiled
per-touch work; it wins on epochs with many short runs and on hosts
where numpy dispatch dominates.

The first ``REPRO_JIT=1`` run pays one-time compilation (~1s, cached
on disk by numba thereafter). See docs/jit.md for when this matters.
"""

from __future__ import annotations

import os

import numpy as np

_TRUTHY = {"1", "true", "on", "yes"}

#: module-level caches: None = not yet resolved, False = unavailable.
_kernel_cache = None
_walk_kernel_cache = None


def requested() -> bool:
    """Whether the environment asks for the JIT path."""
    return os.environ.get("REPRO_JIT", "").strip().lower() in _TRUTHY


def available() -> bool:
    """Whether numba can be imported (without compiling anything)."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def enabled() -> bool:
    """Whether classification should try the compiled kernel."""
    return requested() and available()


def classify_kernel():
    """The compiled per-set LRU kernel, or None when unavailable.

    Signature: ``kernel(g_set: int64[:], g_tag: uint64[:], ways: int)
    -> bool_[:]`` over set-grouped touches (program order within each
    set); returns the per-touch hit mask in grouped coordinates.
    """
    global _kernel_cache
    if _kernel_cache is not None:
        return _kernel_cache or None
    try:
        from numba import njit
    except Exception:
        _kernel_cache = False
        return None

    @njit(cache=True)
    def _kernel(g_set, g_tag, ways):  # pragma: no cover - compiled
        n = g_set.shape[0]
        hits = np.zeros(n, dtype=np.bool_)
        stack = np.empty(ways, dtype=np.uint64)
        i = 0
        while i < n:
            j = i
            s = g_set[i]
            while j < n and g_set[j] == s:
                j += 1
            depth = 0
            for p in range(i, j):
                tag = g_tag[p]
                found = -1
                for w in range(depth):
                    if stack[w] == tag:
                        found = w
                        break
                if found >= 0:
                    hits[p] = True
                    for w in range(found, depth - 1):
                        stack[w] = stack[w + 1]
                    stack[depth - 1] = tag
                else:
                    if depth < ways:
                        stack[depth] = tag
                        depth += 1
                    else:
                        for w in range(ways - 1):
                            stack[w] = stack[w + 1]
                        stack[ways - 1] = tag
            i = j
        return hits

    try:
        # Force compilation now so a broken numba install degrades to
        # the numpy path instead of failing mid-run.
        _kernel(
            np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.uint64), 1
        )
    except Exception:
        _kernel_cache = False
        return None
    _kernel_cache = _kernel
    return _kernel


def walk_kernel():
    """The compiled PWC-level walk kernel, or None when unavailable.

    Runs one page-walk-cache level's epoch stream — the walker's
    last-tag memo in front of a set-associative true-LRU — and returns
    both the per-walk outcomes and the structure's end state, so the
    caller reconstructs instead of replaying. Signature::

        kernel(tags: int64[:], last_tag: int64,
               stack_tags: int64[:], stack_offsets: int64[:],
               nsets: int, ways: int)
            -> (outcomes: int8[:], stacks: int64[nsets, ways],
                depth: int64[nsets], evictions: int64, last: int64)

    ``stack_tags``/``stack_offsets`` flatten the initial per-set LRU
    stacks (LRU→MRU; set s occupies ``[offsets[s], offsets[s+1])``).
    Outcome codes: 0 memo hit, 1 LRU hit, 2 miss. Bit-identical to the
    pure-numpy path in :func:`repro.engine.residue.pwc_level_outcomes`.
    """
    global _walk_kernel_cache
    if _walk_kernel_cache is not None:
        return _walk_kernel_cache or None
    try:
        from numba import njit
    except Exception:
        _walk_kernel_cache = False
        return None

    @njit(cache=True)
    def _kernel(tags, last_tag, stack_tags, stack_offsets, nsets,
                ways):  # pragma: no cover - compiled
        n = tags.shape[0]
        outcomes = np.empty(n, dtype=np.int8)
        stacks = np.zeros((nsets, ways), dtype=np.int64)
        depth = np.zeros(nsets, dtype=np.int64)
        for s in range(nsets):
            lo = stack_offsets[s]
            d = stack_offsets[s + 1] - lo
            for k in range(d):
                stacks[s, k] = stack_tags[lo + k]
            depth[s] = d
        evictions = 0
        last = last_tag
        for i in range(n):
            tag = tags[i]
            if tag == last:
                outcomes[i] = 0
                continue
            last = tag
            s = tag % nsets
            d = depth[s]
            found = -1
            for w in range(d):
                if stacks[s, w] == tag:
                    found = w
                    break
            if found >= 0:
                outcomes[i] = 1
                for w in range(found, d - 1):
                    stacks[s, w] = stacks[s, w + 1]
                stacks[s, d - 1] = tag
            elif d < ways:
                outcomes[i] = 2
                stacks[s, d] = tag
                depth[s] = d + 1
            else:
                outcomes[i] = 2
                evictions += 1
                for w in range(ways - 1):
                    stacks[s, w] = stacks[s, w + 1]
                stacks[s, ways - 1] = tag
        return outcomes, stacks, depth, evictions, last

    try:
        _kernel(
            np.zeros(1, dtype=np.int64), -1,
            np.zeros(0, dtype=np.int64), np.zeros(2, dtype=np.int64), 1, 1,
        )
    except Exception:
        _walk_kernel_cache = False
        return None
    _walk_kernel_cache = _kernel
    return _kernel
