"""The online simulation facade.

Historically this module held the whole run loop; it is now a thin
facade over :class:`repro.engine.machine.Machine`, which decomposes the
engine into a thread scheduler, per-core translation pipelines, a fault
path, and an OS tick driver. :class:`Simulator` keeps the public
surface every experiment, benchmark, and subclass relies on —
construction arguments, ``run()``, ``kernel``/``dump_region``
attributes, and the overridable ``_promotion_tick`` hook — while the
machine does the work.

Threads are interleaved round-robin in fixed access quanta to model
concurrent execution; per-core cycle ledgers are kept separately and
the run's wall-clock proxy is the maximum per-core total plus the
serialization charge (§5.2's atomics effect). The OS promotion tick
fires every ``promote_every_accesses`` accesses — the simulation
analogue of the paper's 30-second interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.engine.machine import Machine
from repro.engine.system import ProcessWorkload
from repro.engine.timing import RuntimeBreakdown
from repro.os.kernel import HugePagePolicy, KernelParams


@dataclass
class ProcessResult:
    """Per-process outputs of one run."""

    pid: int
    name: str
    accesses: int
    walks: int
    huge_pages: int
    footprint_regions: int

    @property
    def walk_rate(self) -> float:
        """This process's page-table-walk rate."""
        return self.walks / self.accesses if self.accesses else 0.0


@dataclass
class SimulationResult:
    """Everything a run produced, ready for speedup/report computation."""

    policy: str
    total_cycles: int
    per_core: list[RuntimeBreakdown]
    processes: list[ProcessResult]
    accesses: int
    walks: int
    l1_hits: int
    l2_hits: int
    promotions: int
    demotions: int
    promotion_timeline: list[tuple[int, int]] = field(default_factory=list)
    #: (pid -> number of THPs) sampled at each interval, for Fig. 9
    huge_page_timeline: list[dict[int, int]] = field(default_factory=list)
    #: ``repro.metrics/v1`` export of every counter the run registered
    metrics: dict | None = None

    @property
    def walk_rate(self) -> float:
        """PTW %: fraction of accesses missing the whole TLB hierarchy."""
        return self.walks / self.accesses if self.accesses else 0.0

    @property
    def tlb_miss_rate(self) -> float:
        """Alias: the paper uses "TLB miss %" for the walk rate."""
        return self.walk_rate


class Simulator:
    """Online co-design simulation of one machine running workloads.

    A facade over :class:`~repro.engine.machine.Machine`. The tick
    indirection is deliberate: the machine calls back through
    ``self._promotion_tick`` at each interval, so subclasses (the
    offline replay's scheduled simulator) and monkeypatched ticks keep
    working exactly as they did against the monolithic loop.
    """

    def __init__(
        self,
        config: SystemConfig,
        policy: HugePagePolicy = HugePagePolicy.PCC,
        params: KernelParams | None = None,
        fragmentation: float = 0.0,
        thread_quantum: int = 2048,
        serialization_cycles_per_access: float = 0.0,
        fast_path: bool = True,
        batch: bool = True,
        columnar: bool = True,
        validate: bool = False,
        observe: bool | None = None,
    ) -> None:
        self.machine = Machine(
            config,
            policy=policy,
            params=params,
            fragmentation=fragmentation,
            thread_quantum=thread_quantum,
            serialization_cycles_per_access=serialization_cycles_per_access,
            fast_path=fast_path,
            batch=batch,
            columnar=columnar,
            validate=validate,
            observe=observe,
            # Late-bound so post-construction overrides of
            # ``_promotion_tick`` (subclass or monkeypatch) take effect.
            tick_fn=lambda cores, ledgers: self._promotion_tick(cores, ledgers),
        )

    # ------------------------------------------------------------------
    # delegated surface

    @property
    def config(self) -> SystemConfig:
        """The simulated system's configuration."""
        return self.machine.config

    @property
    def policy(self) -> HugePagePolicy:
        """The kernel's huge-page policy."""
        return self.machine.policy

    @property
    def kernel(self):
        """The simulated kernel (processes, page tables, policies)."""
        return self.machine.kernel

    @property
    def dump_region(self):
        """The PCC dump region the OS reads candidates from."""
        return self.machine.dump_region

    @property
    def thread_quantum(self) -> int:
        """Accesses per scheduling quantum."""
        return self.machine.thread_quantum

    @thread_quantum.setter
    def thread_quantum(self, value: int) -> None:
        self.machine.thread_quantum = value

    @property
    def serialization_cycles_per_access(self) -> float:
        """Multithread serialization charge per access (§5.2)."""
        return self.machine.serialization_cycles_per_access

    @serialization_cycles_per_access.setter
    def serialization_cycles_per_access(self, value: float) -> None:
        self.machine.serialization_cycles_per_access = value

    # ------------------------------------------------------------------

    def run(self, workloads: list[ProcessWorkload]) -> SimulationResult:
        """Simulate the workloads to completion and return the result."""
        return self.machine.run(workloads)

    def _promotion_tick(self, cores, ledgers):
        """Fig. 4: dump PCCs, let the kernel promote, apply shootdowns.

        Overridable: the machine routes every OS tick through here.
        """
        return self.machine.promotion_tick(cores, ledgers)

    def _pid_for_core(self, core_id: int) -> int | None:
        """Process whose thread runs on ``core_id`` (static pinning)."""
        return self.machine._pid_for_core(core_id)
