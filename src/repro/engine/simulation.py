"""The online simulation loop.

Drives one or more processes' compressed traces through per-core
hardware (TLBs, walker, PCCs) against a simulated kernel, with the OS
promotion tick firing every ``promote_every_accesses`` accesses —
the simulation analogue of the paper's 30-second interval. Faults are
taken on first touch (so greedy THP acts at the right moment), and
promotions performed by the kernel broadcast shootdowns that flow back
into the TLBs and PCCs, closing the co-design loop.

Threads are interleaved round-robin in fixed access quanta to model
concurrent execution; per-core cycle ledgers are kept separately and
the run's wall-clock proxy is the maximum per-core total plus the
serialization charge (§5.2's atomics effect).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.core.dump import CandidateRecord, DumpRegion
from repro.engine.cpu import Core
from repro.engine.system import ProcessWorkload
from repro.engine.timing import CycleAccounting, RuntimeBreakdown
from repro.os.kernel import HugePagePolicy, KernelParams, SimulatedKernel
from repro.vm.address import BASE_PAGE_SHIFT, PageSize


@dataclass
class ProcessResult:
    """Per-process outputs of one run."""

    pid: int
    name: str
    accesses: int
    walks: int
    huge_pages: int
    footprint_regions: int

    @property
    def walk_rate(self) -> float:
        """This process's page-table-walk rate."""
        return self.walks / self.accesses if self.accesses else 0.0


@dataclass
class SimulationResult:
    """Everything a run produced, ready for speedup/report computation."""

    policy: str
    total_cycles: int
    per_core: list[RuntimeBreakdown]
    processes: list[ProcessResult]
    accesses: int
    walks: int
    l1_hits: int
    l2_hits: int
    promotions: int
    demotions: int
    promotion_timeline: list[tuple[int, int]] = field(default_factory=list)
    #: (pid -> number of THPs) sampled at each interval, for Fig. 9
    huge_page_timeline: list[dict[int, int]] = field(default_factory=list)

    @property
    def walk_rate(self) -> float:
        """PTW %: fraction of accesses missing the whole TLB hierarchy."""
        return self.walks / self.accesses if self.accesses else 0.0

    @property
    def tlb_miss_rate(self) -> float:
        """Alias: the paper uses "TLB miss %" for the walk rate."""
        return self.walk_rate


class Simulator:
    """Online co-design simulation of one machine running workloads."""

    def __init__(
        self,
        config: SystemConfig,
        policy: HugePagePolicy = HugePagePolicy.PCC,
        params: KernelParams | None = None,
        fragmentation: float = 0.0,
        thread_quantum: int = 2048,
        serialization_cycles_per_access: float = 0.0,
    ) -> None:
        self.config = config
        self.policy = policy
        self.kernel = SimulatedKernel(
            config, policy=policy, params=params, fragmentation=fragmentation
        )
        self.thread_quantum = thread_quantum
        self.serialization_cycles_per_access = serialization_cycles_per_access
        self.dump_region = DumpRegion()

    # ------------------------------------------------------------------

    def run(self, workloads: list[ProcessWorkload]) -> SimulationResult:
        """Simulate the workloads to completion and return the result."""
        self._seen_vpns: dict[int, set[int]] = {}
        self._assign_ids(workloads)
        shared_pcc = None
        if self.config.pcc.shared:
            if len(workloads) > 1:
                raise ValueError(
                    "the shared-PCC design (§3.2.2) cannot attribute "
                    "candidates across processes; use per-core PCCs"
                )
            from repro.core.pcc import PromotionCandidateCache

            shared_pcc = PromotionCandidateCache(self.config.pcc)
        cores = [
            Core(self.config, core_id=i, shared_pcc=shared_pcc)
            for i in range(self.config.cores)
        ]
        ledgers = [CycleAccounting(self.config.timing) for _ in cores]
        threads = self._bind_threads(workloads, cores)

        interval = self.config.os.promote_every_accesses
        accesses_since_tick = 0
        promotions = 0
        demotions = 0
        promo_timeline: list[tuple[int, int]] = []
        hp_timeline: list[dict[int, int]] = []
        total_accesses_done = 0

        # Round-robin over threads in quanta of trace records whose
        # access counts sum to roughly the thread quantum.
        cursors = [0] * len(threads)
        live = [True] * len(threads)
        # Plain Python lists iterate several times faster than numpy
        # scalar indexing in this (unavoidably sequential) hot loop.
        as_lists = [
            (t.trace.vpns.tolist(), t.trace.counts.tolist()) for (t, _p, _c) in threads
        ]
        remaining = sum(len(t.trace.vpns) for (t, _pid, _core) in threads)
        while remaining > 0:
            for t_index, (thread, pid, core_id) in enumerate(threads):
                if not live[t_index]:
                    continue
                vpns, counts = as_lists[t_index]
                start = cursors[t_index]
                if start >= len(vpns):
                    live[t_index] = False
                    continue
                core = cores[core_id]
                ledger = ledgers[core_id]
                table = self.kernel.processes[pid].page_table
                # Once a VPN has faulted in it stays mapped (promotion
                # preserves mapped-ness), so a local seen-set avoids a
                # page-table probe per record.
                seen = self._seen_vpns.setdefault(pid, set())
                access_page = core.access_page
                handle_fault = self.kernel.handle_fault
                budget = self.thread_quantum
                i = start
                n = len(vpns)
                quantum_accesses = 0
                quantum_cycles = 0
                while budget > 0 and i < n:
                    vpn = vpns[i]
                    repeat = counts[i]
                    if vpn not in seen:
                        seen.add(vpn)
                        vaddr = vpn << BASE_PAGE_SHIFT
                        if not table.is_mapped(vaddr):
                            handle_fault(pid, vaddr)
                    quantum_cycles += access_page(vpn, table, repeat=repeat)
                    budget -= repeat
                    quantum_accesses += repeat
                    i += 1
                ledger.charge_translation(quantum_cycles)
                ledger.charge_accesses(quantum_accesses)
                accesses_since_tick += quantum_accesses
                total_accesses_done += quantum_accesses
                processed = i - start
                cursors[t_index] = i
                remaining -= processed
                huge_z, base_z, migrated = self.kernel.drain_fault_work()
                ledger.charge_fault_work(huge_z, base_z, migrated)

            if accesses_since_tick >= interval:
                accesses_since_tick = 0
                done = self._promotion_tick(cores, ledgers)
                promotions += len(done.promoted)
                demotions += len(done.demoted)
                promo_timeline.append((total_accesses_done, len(done.promoted)))
                hp_timeline.append(
                    {
                        pid: self.kernel.huge_pages_of(pid)
                        for pid in self.kernel.processes
                    }
                )

        # Final tick so trailing candidates are not lost on short runs.
        done = self._promotion_tick(cores, ledgers)
        promotions += len(done.promoted)
        demotions += len(done.demoted)
        if done.promoted or not hp_timeline:
            promo_timeline.append((total_accesses_done, len(done.promoted)))
            hp_timeline.append(
                {pid: self.kernel.huge_pages_of(pid) for pid in self.kernel.processes}
            )

        return self._collect(
            workloads, cores, ledgers, promotions, demotions,
            promo_timeline, hp_timeline,
        )

    # ------------------------------------------------------------------

    def _assign_ids(self, workloads: list[ProcessWorkload]) -> None:
        for process in workloads:
            if process.pid < 0:
                process.pid = len(self.kernel.processes) + 1
            self.kernel.spawn(process.layout, pid=process.pid)

    def _bind_threads(self, workloads, cores):
        """Flatten workloads to (thread, pid, core) and pin cores."""
        bound = []
        self._core_pid_map: dict[int, int] = {}
        next_core = 0
        for process in workloads:
            for thread in process.threads:
                core = thread.core
                if core < 0:
                    core = next_core % len(cores)
                    next_core += 1
                if core >= len(cores):
                    raise ValueError(
                        f"thread pinned to core {core} but system has "
                        f"{len(cores)} cores"
                    )
                thread.core = core
                self._core_pid_map[core] = process.pid
                bound.append((thread, process.pid, core))
        return bound

    def _promotion_tick(self, cores, ledgers):
        """Fig. 4: dump PCCs, let the kernel promote, apply shootdowns."""
        records: list[CandidateRecord] = []
        giga_records: list[CandidateRecord] = []
        if self.policy is HugePagePolicy.PCC:
            # §3.3 offers two read styles: the periodic dump-and-clear
            # (Fig. 4) or an on-demand snapshot that leaves counters
            # accumulating across intervals.
            snapshot = self.kernel.params.pcc_dump_mode == "snapshot"
            for core in cores:
                pid = self._pid_for_core(core.core_id)
                if pid is None:
                    continue
                entries = (
                    core.pcc.ranked() if snapshot else core.pcc.flush()
                )
                self.dump_region.write(entries, pid=pid, core=core.core_id)
                if core.pcc_1gb is not None:
                    giga_entries = (
                        core.pcc_1gb.ranked()
                        if snapshot
                        else core.pcc_1gb.flush()
                    )
                    self.dump_region.write(
                        giga_entries,
                        pid=pid,
                        core=core.core_id,
                        page_size=PageSize.GIGA,
                    )
            all_records = self.dump_region.read_all()
            records = [r for r in all_records if r.page_size is PageSize.HUGE]
            giga_records = [r for r in all_records if r.page_size is PageSize.GIGA]

        def on_shootdown(pid: int, prefix: int) -> None:
            for core in cores:
                core.shootdown(prefix)

        def on_giga_shootdown(pid: int, giga: int) -> None:
            # a gigabyte of translations is invalidated: a full flush is
            # the simple, conservative hardware response
            for core in cores:
                core.tlb.flush()
                core.walker.flush_pwc()
                if core.pcc_1gb is not None:
                    core.pcc_1gb.invalidate(giga)

        outcome = self.kernel.promotion_tick(
            pcc_records=records,
            giga_records=giga_records,
            on_shootdown=on_shootdown,
            on_giga_shootdown=on_giga_shootdown,
        )
        work = len(outcome.promoted) + len(outcome.demoted)
        if work and ledgers:
            # promotion runs on one kernel thread; shootdowns hit all cores
            ledgers[0].charge_promotions(
                promotions=len(outcome.promoted),
                shootdown_broadcasts=outcome.shootdowns,
                migrated_pages=outcome.pages_migrated,
                cores=len(ledgers),
            )
        return outcome

    def _pid_for_core(self, core_id: int) -> int | None:
        """Process whose thread runs on ``core_id`` (static pinning)."""
        return self._core_pid_map.get(core_id)

    def _collect(
        self, workloads, cores, ledgers, promotions, demotions,
        promo_timeline, hp_timeline,
    ) -> SimulationResult:
        per_core = [RuntimeBreakdown.of(ledger) for ledger in ledgers]
        serialization = 0
        if self.serialization_cycles_per_access > 0:
            total_acc = sum(core.stats.accesses for core in cores)
            serialization = int(total_acc * self.serialization_cycles_per_access)
        wall = max((b.total for b in per_core), default=0) + serialization

        processes = []
        for workload in workloads:
            table = self.kernel.processes[workload.pid].page_table
            thread_cores = {
                t.core for t in workload.threads
            }
            walks = sum(
                cores[c].stats.walks
                for c in range(len(cores))
                if c in thread_cores or not thread_cores
            )
            processes.append(
                ProcessResult(
                    pid=workload.pid,
                    name=workload.name,
                    accesses=workload.total_accesses,
                    walks=walks,
                    huge_pages=len(table.promoted_regions()),
                    footprint_regions=workload.footprint_huge_regions(),
                )
            )
        return SimulationResult(
            policy=self.policy.value,
            total_cycles=wall,
            per_core=per_core,
            processes=processes,
            accesses=sum(core.stats.accesses for core in cores),
            walks=sum(core.stats.walks for core in cores),
            l1_hits=sum(core.stats.l1_hits for core in cores),
            l2_hits=sum(core.stats.l2_hits for core in cores),
            promotions=promotions,
            demotions=demotions,
            promotion_timeline=promo_timeline,
            huge_page_timeline=hp_timeline,
        )
