"""Simulation engine: per-core pipeline, timing, online/offline loops."""

from repro.engine.cpu import Core
from repro.engine.machine import (
    FaultPath,
    Machine,
    OsTickDriver,
    ThreadScheduler,
    TranslationPipeline,
)
from repro.engine.timing import CycleAccounting
from repro.engine.simulation import SimulationResult, Simulator
from repro.engine.system import ProcessWorkload, ThreadWorkload

__all__ = [
    "Core",
    "CycleAccounting",
    "FaultPath",
    "Machine",
    "OsTickDriver",
    "Simulator",
    "SimulationResult",
    "ThreadScheduler",
    "TranslationPipeline",
    "ProcessWorkload",
    "ThreadWorkload",
]
