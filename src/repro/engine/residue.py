"""Vectorized retirement of the columnar epoch's L1-miss residue.

PR 6's columnar tier classified the two L1 structures' whole-epoch
touch streams in one pass but replayed every classified miss through
the live L2 / 1GB-L1 / walker / page-table objects in program order.
This module retires that residue as array passes too:

* :func:`l2_alias_conflict` — the conservative pre-check that licenses
  treating the unified L2 as one more classifiable LRU stream. The
  scalar lookup silently probes the L2 with tags the columnar pass
  does not model (a 4K VPN for a huge-backed region, a 2MB tag for a
  4K-backed one); those probes are guaranteed misses — and therefore
  LRU-inert — exactly when none of them can collide with a tag that is
  resident or will be filled this epoch. A conflict (never observed
  outside adversarial traces; the shootdown invariants rule it out for
  well-formed runs) falls the epoch back to the quantum tiers instead
  of raising, which keeps the engine total rather than trap-happy.
* :func:`pwc_level_outcomes` — exact classification of one page-walk
  cache level's epoch probe stream (memo hit / LRU hit / miss) without
  touching the structure, plus its reconstructed end state. Dispatches
  to the compiled kernel when ``REPRO_JIT=1`` and numba is importable
  (:func:`repro.engine.jit.walk_kernel`), bit-identically.
* :func:`page_table_pass` — the epoch's accessed-bit reads and writes
  as one pass: ``pud_was``/``pmd_was`` per walk fall out of "bit set
  before the epoch, or an earlier walk in the epoch covered the same
  prefix" (first-occurrence logic), after which the set/dict mutations
  are order-insensitive and apply grouped.
* :func:`plan_walks` / :func:`apply_walk_plan` — per-walk cycle and
  memory-reference totals from the PWC outcomes (the walker's inlined
  cost model, vectorized), applied to the walker's stats bags and PWC
  set dicts at epoch end.

Everything here is pure with respect to program order: callers capture
pre-state, compute, then apply — the exactness arguments mirror the
phase-by-phase ones in :mod:`repro.engine.machine`'s docstring.
"""

from __future__ import annotations

import numpy as np

from repro.engine import jit
from repro.engine.columnar import classify_lru_hits, epoch_evictions
from repro.vm.address import PageSize
from repro.vm.pagetable import _HugeRegionState

#: Walk-size codes used by the residue pipeline (int8 arrays).
SIZE_BASE = 0
SIZE_HUGE = 1
SIZE_GIGA = 2

#: VPN shift to the 2MB / 1GB region tags.
_HUGE_SHIFT = 9
_GIGA_SHIFT = 18

#: VPN shifts to the PWC tags per level (the walker shifts the vaddr by
#: 39/30/21; a VPN is the vaddr without its 12 offset bits).
_PWC_VPN_SHIFTS = (27, 18, 9)

#: Entry value every PWC fill stores (``pwc.fill(tag, PageSize.BASE)``).
_PWC_ENTRY = int(PageSize.BASE)


# ----------------------------------------------------------------------
# L2 aliasing pre-check


def l2_alias_conflict(resident, base_vpns, huge_vpns, other_vpns,
                      serves_huge: bool) -> bool:
    """Whether any silent L2 probe could collide with a live tag.

    ``resident`` holds every tag currently in the L2; ``base_vpns`` /
    ``huge_vpns`` / ``other_vpns`` are the epoch residue's VPNs split
    by region state. The modelled stream touches ``base_vpns`` and
    (when ``serves_huge``) ``huge_vpns >> 9``; every tag a silent
    probe could carry must stay outside the union of residents and
    modelled tags for the whole epoch, so the check compares against
    that union (conservative: fills only grow it).
    """
    parts = [np.asarray(resident, dtype=np.uint64),
             np.asarray(base_vpns, dtype=np.uint64)]
    if serves_huge and huge_vpns.size:
        parts.append(huge_vpns >> np.uint64(_HUGE_SHIFT))
    live = np.concatenate(parts) if len(parts) > 1 else parts[0]
    if not live.size:
        return False
    if serves_huge and base_vpns.size and np.isin(
        base_vpns >> np.uint64(_HUGE_SHIFT), live
    ).any():
        return True  # huge-tag probe of a 4K-backed region's record
    if huge_vpns.size and np.isin(huge_vpns, live).any():
        return True  # 4K-VPN probe of a huge-backed region's record
    if other_vpns.size:
        if np.isin(other_vpns, live).any():
            return True  # 4K-VPN probe of a 1GB-backed region's record
        if serves_huge and np.isin(
            other_vpns >> np.uint64(_HUGE_SHIFT), live
        ).any():
            return True  # 2MB-tag probe of a 1GB-backed region's record
    return False


# ----------------------------------------------------------------------
# PWC level classification


def _stack_arrays(initial: list[list[int]]):
    """Flatten per-set LRU stacks into (set, tag) arrays, LRU→MRU."""
    sets_out: list[int] = []
    tags_out: list[int] = []
    for set_index, content in enumerate(initial):
        if content:
            sets_out.extend([set_index] * len(content))
            tags_out.extend(content)
    return (
        np.asarray(sets_out, dtype=np.intp),
        np.asarray(tags_out, dtype=np.uint64),
    )


def _flat_stacks(initial: list[list[int]], nsets: int):
    """Flatten per-set stacks into the kernel's (tags, offsets) pair."""
    offsets = np.zeros(nsets + 1, dtype=np.int64)
    for s, content in enumerate(initial):
        offsets[s + 1] = offsets[s] + len(content)
    flat = np.empty(int(offsets[-1]), dtype=np.int64)
    pos = 0
    for content in initial:
        for tag in content:
            flat[pos] = tag
            pos += 1
    return flat, offsets


def pwc_level_outcomes(tags, last_tag: int, initial: list[list[int]],
                       nsets: int, ways: int):
    """Classify one PWC level's epoch walk stream without touching it.

    ``tags`` is the level's tag per participating walk, in walk order;
    ``last_tag`` the walker's memo for the level; ``initial`` the PWC's
    per-set contents LRU→MRU. Returns ``(outcomes, contents, evictions,
    final_last)``: per-walk int8 codes (0 memo hit, 1 LRU hit, 2 miss),
    the reconstructed end-of-epoch per-set contents, the fill-eviction
    count, and the memo's end value. The memo absorbs consecutive
    repeats before the LRU ever sees them — exactly the walker's inline
    fast path — so the LRU stream is the memo-miss subset only.
    """
    n = int(tags.size)
    if n == 0:
        return (np.zeros(0, dtype=np.int8),
                [list(stack) for stack in initial], 0, last_tag)
    if jit.enabled():
        kernel = jit.walk_kernel()
        if kernel is not None:
            flat, offsets = _flat_stacks(initial, nsets)
            out, stacks, depth, evictions, final_last = kernel(
                np.ascontiguousarray(tags, dtype=np.int64), last_tag,
                flat, offsets, nsets, ways,
            )
            contents = [
                stacks[s, :depth[s]].tolist() for s in range(nsets)
            ]
            return out, contents, int(evictions), int(final_last)
    memo = np.empty(n, dtype=bool)
    memo[0] = int(tags[0]) == last_tag
    np.equal(tags[1:], tags[:-1], out=memo[1:])
    outcomes = np.zeros(n, dtype=np.int8)
    probe_pos = np.flatnonzero(~memo)
    if not probe_pos.size:
        # Every walk re-hit the memo: the structure was never probed.
        return outcomes, [list(stack) for stack in initial], 0, int(tags[-1])
    probe_tags = tags[probe_pos].astype(np.uint64)
    probe_sets = (probe_tags % np.uint64(nsets)).astype(np.intp)
    init_sets, init_tags = _stack_arrays(initial)
    hits, _, contents = classify_lru_hits(
        probe_sets, probe_tags, ways, init_sets, init_tags, nsets=nsets
    )
    outcomes[probe_pos[hits]] = 1
    outcomes[probe_pos[~hits]] = 2
    occupancy0 = np.fromiter(
        (len(stack) for stack in initial), np.int64, nsets
    )
    evictions = epoch_evictions(probe_sets[~hits], nsets, ways, occupancy0)
    return outcomes, contents, int(evictions), int(tags[-1])


# ----------------------------------------------------------------------
# page-table accessed bits


def page_table_pass(page_table, vpns, sizes):
    """One epoch's page-table walks as a compute-then-apply array pass.

    ``vpns`` (uint64) and ``sizes`` (int8 ``SIZE_*`` codes) describe
    the epoch's live walks in program order. Returns per-walk
    ``(pud_was, pmd_was)`` — the accessed-bit reads the scalar
    :meth:`PageTable.walk` would have reported — and applies the same
    mutations: a walk sees a set bit iff it was set before the epoch or
    an earlier epoch walk covered the same prefix (1GB prefixes by any
    walk, 2MB prefixes by non-1GB walks only, matching the scalar
    walk's early return for gigapage leaves); afterwards every touched
    prefix's bit is simply set, so the writes group by unique prefix.
    PTE accessed bits advance the per-region accessed counts exactly
    once per newly-touched base page.
    """
    n = int(vpns.size)
    pud_was = np.zeros(n, dtype=bool)
    pmd_was = np.zeros(n, dtype=bool)
    if not n:
        return pud_was, pmd_was
    pud_set = page_table._pud_accessed
    gigas = (vpns >> np.uint64(_GIGA_SHIFT)).astype(np.int64)
    uq_gigas, first_g, inv_g = np.unique(
        gigas, return_index=True, return_inverse=True
    )
    pre_g = np.fromiter(
        (giga in pud_set for giga in uq_gigas.tolist()),
        dtype=bool, count=uq_gigas.size,
    )
    first_mask = np.zeros(n, dtype=bool)
    first_mask[first_g] = True
    pud_was[:] = pre_g[inv_g] | ~first_mask

    huge = page_table._huge
    non_giga = np.flatnonzero(sizes != SIZE_GIGA)
    uq_prefixes = None
    if non_giga.size:
        prefixes = (vpns[non_giga] >> np.uint64(_HUGE_SHIFT)).astype(np.int64)
        uq_prefixes, first_p, inv_p = np.unique(
            prefixes, return_index=True, return_inverse=True
        )
        pre_p = np.empty(uq_prefixes.size, dtype=bool)
        for k, prefix in enumerate(uq_prefixes.tolist()):
            state = huge.get(prefix)
            pre_p[k] = state is not None and state.accessed
        fm = np.zeros(non_giga.size, dtype=bool)
        fm[first_p] = True
        pmd_was[non_giga] = pre_p[inv_p] | ~fm

    # apply — order-insensitive now that pre-state is captured
    pud_set.update(uq_gigas.tolist())
    if uq_prefixes is not None:
        for prefix in uq_prefixes.tolist():
            state = huge.get(prefix)
            if state is None:
                state = huge[prefix] = _HugeRegionState()
            state.accessed = True
    base = np.flatnonzero(sizes == SIZE_BASE)
    if base.size:
        pte_accessed = page_table._pte_accessed
        accessed_count = page_table._accessed_count
        for page in np.unique(vpns[base]).tolist():
            if page not in pte_accessed:
                pte_accessed.add(page)
                prefix = page >> _HUGE_SHIFT
                accessed_count[prefix] = accessed_count.get(prefix, 0) + 1
    return pud_was, pmd_was


# ----------------------------------------------------------------------
# walk cost planning


class WalkPlan:
    """Per-walk cycle costs plus deferred walker/PWC state updates."""

    __slots__ = ("cycles", "refs", "pwc_hits", "pwc_misses", "levels")

    def __init__(self, cycles, refs, pwc_hits, pwc_misses, levels):
        self.cycles = cycles
        self.refs = refs
        self.pwc_hits = pwc_hits
        self.pwc_misses = pwc_misses
        #: per touched level: (index, contents, evictions, final memo,
        #: lookup hits, misses)
        self.levels = levels


def plan_walks(walker, vpns, sizes) -> WalkPlan:
    """Vectorize the walker's inlined cost model over an epoch's walks.

    A walk of size code ``s`` references ``4 - s`` radix levels; each
    of its upper levels L (those with ``s <= 2 - L``) is served by PWC
    level L — a memo or LRU hit replaces the level's memory reference
    with a fast lookup, a miss pays the reference and fills the PWC.
    The leaf level always references memory. Reads PWC state without
    touching it; :func:`apply_walk_plan` commits the side effects.
    """
    n = int(vpns.size)
    sizes64 = sizes.astype(np.int64)
    memory_ref = walker._memory_ref_cycles
    if not walker._pwcs:
        cycles = (4 - sizes64) * memory_ref
        return WalkPlan(cycles, 4 * n - int(sizes64.sum()), 0, 0, [])
    pwc_hit = walker._pwc_hit_cycles
    cycles = np.full(n, memory_ref, dtype=np.int64)  # the leaf reference
    refs = n
    pwc_hits = 0
    pwc_misses = 0
    levels = []
    for level, shift in enumerate(_PWC_VPN_SHIFTS):
        part = np.flatnonzero(sizes64 <= 2 - level)
        if not part.size:
            continue
        pwc = walker._pwcs[level]
        tags = (vpns[part] >> np.uint64(shift)).astype(np.int64)
        initial = [list(entries) for entries in pwc.sets]
        outcomes, contents, evictions, final_last = pwc_level_outcomes(
            tags, walker._last_tags[level], initial, pwc.nsets,
            pwc.config.ways,
        )
        hit = outcomes < 2
        cycles[part[hit]] += pwc_hit
        missed = part[~hit]
        cycles[missed] += memory_ref
        refs += int(missed.size)
        lookup_hits = int(np.count_nonzero(outcomes == 1))
        pwc_hits += int(np.count_nonzero(hit))
        pwc_misses += int(missed.size)
        levels.append((level, contents, evictions, final_last,
                       lookup_hits, int(missed.size)))
    return WalkPlan(cycles, refs, pwc_hits, pwc_misses, levels)


def apply_walk_plan(walker, plan: WalkPlan, pud_candidates: int,
                    pmd_candidates: int) -> None:
    """Commit a :class:`WalkPlan`'s walker stats and PWC end states.

    ``pud_candidates`` / ``pmd_candidates`` are the admission counts
    from the page-table pass (the walker counts every candidate it
    reports, whether or not a PCC consumes it).
    """
    stats = walker.stats
    stats.walks += int(plan.cycles.size)
    stats.walk_cycles += int(plan.cycles.sum())
    stats.memory_refs += plan.refs
    stats.pwc_hits += plan.pwc_hits
    stats.pwc_misses += plan.pwc_misses
    stats.pcc_candidates_1gb += pud_candidates
    stats.pcc_candidates_2mb += pmd_candidates
    for level, contents, evictions, final_last, lookup_hits, misses \
            in plan.levels:
        pwc = walker._pwcs[level]
        pwc.stats.hits += lookup_hits
        pwc.stats.misses += misses
        pwc.stats.evictions += evictions
        sets = pwc.sets
        for s, content in enumerate(contents):
            entries = sets[s]
            entries.clear()
            for tag in content:
                entries[tag] = _PWC_ENTRY
        walker._last_tags[level] = final_last
