"""Workload-to-hardware binding for simulation runs.

A :class:`ThreadWorkload` is one address stream pinned to one core; a
:class:`ProcessWorkload` groups the threads sharing an address space
(and therefore a page table). Single-thread runs are a process with one
thread; the multithread experiments (Fig. 8) give one process several
threads; the multiprocess ones (Fig. 9) run several single-thread
processes side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.events import CompressedTrace, Trace
from repro.vm.layout import AddressSpaceLayout


@dataclass
class ThreadWorkload:
    """One thread's compressed trace, bound to a core at run time."""

    trace: CompressedTrace
    core: int = -1  # assigned by the simulator if negative
    #: memoized columnar encoding (one per thread, engine-built)
    _stream: object = field(default=None, repr=False, compare=False)

    @classmethod
    def from_trace(cls, trace: Trace, core: int = -1) -> "ThreadWorkload":
        """Compress a raw trace into a core-bindable thread."""
        return cls(trace=trace.compress(), core=core)

    def columnar_stream(self, cache=None, slot: int = -1):
        """This thread's whole-stream columnar encoding.

        The stream-emission half of the columnar engine tier: encodes
        the compressed trace once (optionally persisted content-
        addressed through a :class:`~repro.trace.cache.TraceCache`) and
        memoizes it, so a workload re-run across tiers or machines pays
        the encoding a single time.
        """
        from repro.engine.columnar import ColumnarStream

        if self._stream is None:
            self._stream = ColumnarStream.from_trace(
                self.trace, cache=cache, slot=slot
            )
        else:
            self._stream.slot = slot
        return self._stream


@dataclass
class ProcessWorkload:
    """One process: shared layout + page table, one or more threads."""

    name: str
    layout: AddressSpaceLayout
    threads: list[ThreadWorkload]
    pid: int = -1  # assigned by the simulator if negative

    @classmethod
    def single_thread(
        cls, trace: Trace, layout: AddressSpaceLayout, name: str | None = None
    ) -> "ProcessWorkload":
        """One thread, one address space: the single-thread case."""
        return cls(
            name=name or trace.name,
            layout=layout,
            threads=[ThreadWorkload.from_trace(trace)],
        )

    @classmethod
    def multi_thread(
        cls,
        traces: list[Trace],
        layout: AddressSpaceLayout,
        name: str,
    ) -> "ProcessWorkload":
        """Several threads sharing one address space (Fig. 8 runs)."""
        return cls(
            name=name,
            layout=layout,
            threads=[ThreadWorkload.from_trace(t) for t in traces],
        )

    @property
    def footprint_bytes(self) -> int:
        """Bytes allocated across the process's VMAs."""
        return self.layout.footprint_bytes

    @property
    def total_accesses(self) -> int:
        """Raw memory accesses across all threads."""
        return sum(t.trace.total_accesses for t in self.threads)

    def footprint_huge_regions(self) -> int:
        """2MB regions spanned by the process's VMAs (the '100%' of the
        paper's utility-curve budget axis)."""
        return self.layout.huge_region_count


def partition_trace(trace: Trace, parts: int, layout: AddressSpaceLayout) -> list[Trace]:
    """Split one trace into ``parts`` contiguous slices, one per thread.

    A crude but adequate model of static work partitioning: each thread
    replays a contiguous span of the program's accesses.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    slices = np.array_split(trace.addresses, parts)
    return [
        Trace(
            name=f"{trace.name}.t{i}",
            addresses=part,
            footprint_bytes=trace.footprint_bytes,
            metadata=dict(trace.metadata),
        )
        for i, part in enumerate(slices)
    ]
