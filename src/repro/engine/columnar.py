"""Columnar whole-stream trace encoding and exact set-LRU classification.

This module is the data layer of the columnar mega-batch engine tier
(``columnar=True`` on :class:`~repro.engine.machine.Machine`). It holds
two things:

* :class:`ColumnarStream` — a workload thread's compressed trace
  pre-encoded **once** into the column arrays every epoch pass gathers
  from: the uint64 page stream, run lengths and their prefix sums, the
  2MB region tag per record, and dense indices into the unique-page and
  unique-region vocabularies. The encoding is a property of the trace
  alone, so it is cached content-addressed alongside the trace in
  :mod:`repro.trace.cache` (keyed by a digest of the raw record bytes)
  and memory-mapped back on later runs.

* Exact **whole-epoch LRU classification**: given one TLB structure's
  touch stream for an epoch (program order) plus the structure's
  resident entries at epoch start, compute per record whether it hits,
  without simulating the structure record-by-record. This is what lets
  the engine retire an entire OS-tick interval of L1 probes as array
  ops and only walk the classified misses through the live object
  graph.

Why classification without simulation is exact
----------------------------------------------

A W-way true-LRU set's content after any touch sequence is exactly the
W most-recently-touched **distinct** tags of that set — evictions drop
the least recent, hits refresh recency, and nothing else changes
membership. So a touch of tag ``t`` hits iff fewer than W distinct
other tags were touched in ``t``'s set since ``t``'s previous touch
(counting the epoch-start residents as older touches in LRU order).
That predicate only looks **backwards** through the touch stream, and
the touch stream itself is outcome-independent: every probe of the
structure leaves its tag at the MRU position whether it hit or filled.
Classification therefore never needs the intermediate hit/miss
outcomes it is computing.

The vectorized form walks a *previous-run* pointer chain. Records are
grouped by set (one stable radix argsort); maximal runs of the same
tag within a set collapse — a run continuation always hits — and each
run start chases backwards run-by-run, collecting distinct tags, until
it either finds its own tag (hit), has seen W distinct others (miss),
or exhausts the chain (miss). The chase runs ``depth`` steps for every
query lane in parallel; the rare queries still unresolved (ping-pong
patterns) fall back to an exact per-query Python walk of the same
chain. ``REPRO_JIT=1`` swaps the chase for a compiled sequential
simulation (:mod:`repro.engine.jit`) behind the same bit-identity
contract.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.vm.address import BASE_PAGE_SHIFT, HUGE_PAGE_SHIFT

#: VPN -> 2MB region tag shift.
_HUGE_SHIFT = HUGE_PAGE_SHIFT - BASE_PAGE_SHIFT

#: Cache entry family name for encoded streams (one namespace beside
#: the trace generators').
STREAM_CACHE_NAME = "columnar-stream"

#: Tag sentinel for empty chase slots; no modelled address space
#: produces tags this large (VPNs are ``vaddr >> 12`` of sub-2^63
#: addresses).
_EMPTY_SLOT = np.uint64(0xFFFFFFFFFFFFFFFF)


# ----------------------------------------------------------------------
# whole-stream encoding


@dataclass
class ColumnarStream:
    """One thread's address stream in columnar form.

    All arrays are aligned per trace record (one record = one maximal
    run of consecutive accesses to the same 4KB page):

    - ``vpns``: the 4KB page of each record (uint64);
    - ``counts``: the run length of each record;
    - ``cum``: prefix sums, ``cum[r]`` = accesses before record ``r``
      (length ``n + 1``) — quantum and epoch windows fall out of
      ``searchsorted`` over this array;
    - ``htags``: the 2MB region tag (``vpn >> 9``) of each record;
    - ``page_ridx`` / ``page_tags``: dense index into the sorted
      unique-page vocabulary (the fault pre-pass keys its seen-page
      bitmap by this);
    - ``region_ridx`` / ``region_tags``: dense index into the sorted
      unique-2MB-region vocabulary (the per-epoch mapping-state gather
      keys by this).

    ``slot`` records which scheduler slot the stream was bound to; -1
    until a machine binds it.
    """

    vpns: np.ndarray
    counts: np.ndarray
    cum: np.ndarray
    htags: np.ndarray
    page_ridx: np.ndarray
    page_tags: np.ndarray
    region_ridx: np.ndarray
    region_tags: np.ndarray
    slot: int = -1

    def __len__(self) -> int:
        return int(self.vpns.size)

    @property
    def total_accesses(self) -> int:
        """Raw accesses the stream encodes (sum of run lengths)."""
        return int(self.cum[-1])

    @classmethod
    def encode(cls, vpns: np.ndarray, counts: np.ndarray,
               slot: int = -1) -> "ColumnarStream":
        """Encode a compressed record stream into column arrays."""
        from repro.resilience.faults import fault_point

        fault_point("engine.columnar.encode", detail=f"slot={slot}")
        vpns = np.ascontiguousarray(vpns, dtype=np.uint64)
        counts = np.ascontiguousarray(counts, dtype=np.int64)
        if vpns.shape != counts.shape:
            raise ValueError(
                f"vpns/counts shape mismatch: {vpns.shape} vs {counts.shape}"
            )
        n = vpns.size
        cum = np.empty(n + 1, dtype=np.int64)
        cum[0] = 0
        np.cumsum(counts, out=cum[1:])
        htags = vpns >> np.uint64(_HUGE_SHIFT)
        page_tags, page_ridx = np.unique(vpns, return_inverse=True)
        region_tags, region_ridx = np.unique(htags, return_inverse=True)
        return cls(
            vpns=vpns,
            counts=counts,
            cum=cum,
            htags=htags,
            page_ridx=np.ascontiguousarray(page_ridx, dtype=np.intp),
            page_tags=page_tags,
            region_ridx=np.ascontiguousarray(region_ridx, dtype=np.intp),
            region_tags=region_tags,
            slot=slot,
        )

    @classmethod
    def from_trace(cls, trace, cache=None, slot: int = -1) -> "ColumnarStream":
        """Encode a :class:`~repro.trace.events.CompressedTrace`.

        With a :class:`~repro.trace.cache.TraceCache`, the derived
        arrays are stored content-addressed (a digest of the raw
        ``vpns``/``counts`` bytes keys the entry, so any two identical
        streams share one entry regardless of workload name) and
        memory-mapped back on subsequent runs.
        """
        if cache is None:
            return cls.encode(trace.vpns, trace.counts, slot=slot)
        vpns = np.ascontiguousarray(trace.vpns, dtype=np.uint64)
        counts = np.ascontiguousarray(trace.counts, dtype=np.int64)
        params = stream_content_params(vpns, counts)

        def builder():
            stream = cls.encode(vpns, counts)
            arrays = {
                "htags": stream.htags,
                "page_ridx": np.asarray(stream.page_ridx, dtype=np.int64),
                "page_tags": stream.page_tags,
                "region_ridx": np.asarray(stream.region_ridx, dtype=np.int64),
                "region_tags": stream.region_tags,
            }
            meta = {
                "records": len(stream),
                "accesses": stream.total_accesses,
                "pages": int(stream.page_tags.size),
                "regions": int(stream.region_tags.size),
            }
            return arrays, meta

        entry = cache.get_or_build_entry(STREAM_CACHE_NAME, params, builder)
        arrays = entry.arrays
        n = vpns.size
        cum = np.empty(n + 1, dtype=np.int64)
        cum[0] = 0
        np.cumsum(counts, out=cum[1:])
        return cls(
            vpns=vpns,
            counts=counts,
            cum=cum,
            htags=arrays["htags"],
            page_ridx=arrays["page_ridx"].astype(np.intp, copy=False),
            page_tags=arrays["page_tags"],
            region_ridx=arrays["region_ridx"].astype(np.intp, copy=False),
            region_tags=arrays["region_tags"],
            slot=slot,
        )

    # ------------------------------------------------------------------
    # round-trip

    def decode(self) -> tuple[np.ndarray, np.ndarray]:
        """The exact ``(vpns, counts)`` record stream encoded."""
        return self.vpns, self.counts

    def expand(self) -> np.ndarray:
        """Per-access page stream (``counts``-expanded), for round-trip
        property tests against the original trace."""
        return np.repeat(self.vpns, self.counts)


def stream_content_params(vpns: np.ndarray, counts: np.ndarray) -> dict:
    """Content-addressed cache params for one record stream.

    The digest covers the raw little-endian bytes of both arrays, so
    the key identifies the stream itself, not how it was generated —
    regenerated or copied traces share the cached encoding.
    """
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(vpns, dtype=np.uint64).tobytes())
    digest.update(np.ascontiguousarray(counts, dtype=np.int64).tobytes())
    return {"content": digest.hexdigest(), "records": int(vpns.size)}


# ----------------------------------------------------------------------
# exact whole-epoch LRU classification


def _group_by_set(set_ids: np.ndarray, tags: np.ndarray,
                  init_set_ids: np.ndarray, init_tags: np.ndarray):
    """Group (initial-stack ++ epoch) touches by set, program order kept.

    Returns ``(order, g_set, g_tag, run_start, prev_run, prefix)``:
    ``order`` the stable argsort over the concatenated arrays, the
    grouped set/tag views, the run-start mask (a new set or a tag
    change starts a run), the previous-run pointer (grouped index of
    the last touch of the previous run in the same set, -1 at the
    set's first run), and ``prefix`` the count of synthetic initial
    touches prepended.
    """
    prefix = int(init_set_ids.size)
    if prefix:
        all_sets = np.concatenate([init_set_ids, set_ids])
        all_tags = np.concatenate([init_tags, tags])
    else:
        all_sets = set_ids
        all_tags = tags
    total = all_sets.size
    # Stable argsort on a narrow unsigned key selects numpy's radix
    # sort (set counts are small powers of two).
    nsets_max = int(all_sets.max()) + 1 if total else 1
    if nsets_max <= 256:
        key = all_sets.astype(np.uint8)
    elif nsets_max <= 65536:
        key = all_sets.astype(np.uint16)
    else:  # pragma: no cover - no modelled TLB has 64K+ sets
        key = all_sets
    order = np.argsort(key, kind="stable")
    g_set = all_sets[order]
    g_tag = all_tags[order]
    new_set = np.empty(total, dtype=bool)
    run_start = np.empty(total, dtype=bool)
    if total:
        new_set[0] = True
        np.not_equal(g_set[1:], g_set[:-1], out=new_set[1:])
        run_start[0] = True
        np.not_equal(g_tag[1:], g_tag[:-1], out=run_start[1:])
        np.logical_or(run_start, new_set, out=run_start)
    idx = np.arange(total, dtype=np.int64)
    start_pos = np.maximum.accumulate(np.where(run_start, idx, 0))
    prev_run = np.where(
        (start_pos > 0) & ~new_set[start_pos], start_pos - 1, np.int64(-1)
    )
    return order, g_set, g_tag, run_start, prev_run, prefix


def classify_lru_hits(
    set_ids: np.ndarray,
    tags: np.ndarray,
    ways: int,
    init_set_ids: np.ndarray,
    init_tags: np.ndarray,
    depth: int = 0,
    nsets: int = 0,
) -> tuple[np.ndarray, int, list[list[int]] | None]:
    """Exact hit/miss classification of one structure's epoch touches.

    ``set_ids``/``tags`` are the structure's touch stream for the epoch
    in program order; ``init_set_ids``/``init_tags`` encode the
    structure's resident entries at epoch start as synthetic older
    touches (per set in LRU→MRU order — exactly the insertion order of
    the live set dicts). Returns ``(hits, fallbacks, contents)``: a
    boolean mask aligned with the epoch touches, the count of queries
    the vectorized chase left for the per-query fallback, and — when
    ``nsets`` is positive — the structure's final per-set contents in
    LRU→MRU order (the engine's phase-E reconstruction; derived from
    the same (set, tag) grouping the classification builds, so it
    costs one extra slice per set rather than a per-set ``unique``).
    """
    n = int(set_ids.size)
    if n == 0:
        contents = None
        if nsets:
            # No epoch touches: every set keeps its initial stack.
            contents = [[] for _ in range(nsets)]
            for s, tag in zip(init_set_ids.tolist(), init_tags.tolist()):
                contents[s].append(tag)
            contents = [stack[-ways:] if ways > 0 else [] for stack in contents]
        return np.zeros(0, dtype=bool), 0, contents
    if ways <= 0:
        empty = [[] for _ in range(nsets)] if nsets else None
        return np.zeros(n, dtype=bool), 0, empty

    from repro.engine import jit

    if jit.enabled():
        kernel = jit.classify_kernel()
        if kernel is not None:
            return _classify_with_kernel(
                kernel, set_ids, tags, ways, init_set_ids, init_tags,
                nsets=nsets,
            )

    order, g_set, g_tag, run_start, prev_run, prefix = _group_by_set(
        set_ids, tags, init_set_ids, init_tags
    )
    total = order.size
    # A run continuation re-touches the tag the set just touched: MRU,
    # guaranteed hit. Only run starts need the chase.
    hit_g = ~run_start
    is_real = order >= prefix

    # Small-set fast path: a set whose combined (resident + epoch) tag
    # vocabulary fits in the ways can never evict — fills only happen
    # on first touches, of which there are at most ``ways`` — so every
    # touch hits iff its tag appeared at all before it. This resolves
    # exactly the sets where the backward chase degenerates (few
    # distinct tags ping-ponging means the chain back to a tag's
    # previous touch can span the whole epoch without ever collecting
    # ``ways`` distinct others).
    pair_order = np.lexsort((g_tag, g_set))
    p_set = g_set[pair_order]
    p_tag = g_tag[pair_order]
    pair_start = np.empty(total, dtype=bool)
    pair_start[0] = True
    np.logical_or(
        p_set[1:] != p_set[:-1], p_tag[1:] != p_tag[:-1], out=pair_start[1:]
    )
    distinct_per_set = np.bincount(p_set[pair_start])
    # lexsort is stable over the grouped (program-order-within-set)
    # stream with initial touches first, so the first element of each
    # (set, tag) group is that tag's earliest touch.
    first_occ = np.zeros(total, dtype=bool)
    first_occ[pair_order[pair_start]] = True
    small = distinct_per_set[g_set] <= ways
    small_starts = run_start & small
    hit_g[small_starts] = ~first_occ[small_starts]

    # A first touch of a (set, tag) pair can never hit — the tag was
    # neither resident nor previously filled. Excluding these from the
    # chase matters doubly: cold touches are common (every faulted-in
    # page's first probe) and their chains are the deepest possible
    # (the walk would scan the set's entire history before concluding
    # "absent"). ``hit_g`` is already False at run starts.
    query = np.flatnonzero(run_start & is_real & ~small & ~first_occ)
    fallbacks = 0
    if query.size:
        if query.size <= 24:
            # Few queries: the per-lane walk beats the vectorized
            # chase's fixed per-step dispatch cost.
            states = [
                _chase_one(g_tag, prev_run, int(q), ways)
                for q in query.tolist()
            ]
            hit_g[query] = np.asarray(states, dtype=np.int8) == 1
        else:
            if depth <= 0:
                depth = 4 * ways + 8
            state = _chase(g_tag, prev_run, query, ways, depth)
            undecided = np.flatnonzero(state == 0)
            fallbacks = int(undecided.size)
            for qi in undecided.tolist():
                state[qi] = _chase_one(g_tag, prev_run, int(query[qi]), ways)
            hit_g[query] = state == 1
    hits = np.empty(n, dtype=bool)
    real_pos = np.flatnonzero(is_real)
    hits[order[real_pos] - prefix] = hit_g[real_pos]
    contents = None
    if nsets:
        contents = _final_contents(
            p_set, p_tag, pair_order, pair_start, total, nsets, ways
        )
    return hits, fallbacks, contents


def _final_contents(p_set, p_tag, pair_order, pair_start, total, nsets,
                    ways) -> list[list[int]]:
    """Final per-set LRU contents from the (set, tag) pair grouping.

    The final content of a W-way true-LRU set is its last W distinct
    tags ordered by last touch. The pair grouping (lexsort by set then
    tag, stable over grouped program order with initial synthetic
    touches first) gives each pair's last touch as the grouped index of
    its group's last element — untouched initial residents keep their
    stack order because their synthetic positions precede every epoch
    touch of the set.
    """
    if total == 0:
        return [[] for _ in range(nsets)]
    pair_pos = np.flatnonzero(pair_start)
    last_idx = np.empty(pair_pos.size, dtype=np.int64)
    last_idx[:-1] = pair_pos[1:]
    last_idx[:-1] -= 1
    last_idx[-1] = total - 1
    pr_set = p_set[pair_pos]
    pr_tag = p_tag[pair_pos]
    last_touch = pair_order[last_idx]
    order2 = np.lexsort((last_touch, pr_set))
    o_set = pr_set[order2]
    o_tag = pr_tag[order2]
    bounds = np.searchsorted(o_set, np.arange(nsets + 1))
    out: list[list[int]] = []
    for s in range(nsets):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        if hi - lo > ways:
            lo = hi - ways
        out.append(o_tag[lo:hi].tolist())
    return out


def _chase(g_tag: np.ndarray, prev_run: np.ndarray, query: np.ndarray,
           ways: int, depth: int) -> np.ndarray:
    """Vectorized backward chase over the previous-run chain.

    Per query lane: walk up to ``depth`` runs back, collecting distinct
    tags; resolve hit on finding the query's own tag with fewer than
    ``ways`` distinct others collected, miss on the ways-th distinct
    other or chain exhaustion. Returns the per-lane state array
    (0 undecided, 1 hit, 2 miss).
    """
    nq = query.size
    state = np.zeros(nq, dtype=np.int8)
    # Lanes compact as they resolve: ``lane`` maps each active row back
    # to its query, so the per-step cost tracks the undecided count
    # (most lanes resolve within a few steps).
    lane = np.arange(nq)
    target = g_tag[query]
    q = prev_run[query]
    wm1 = ways - 1
    slots = (
        np.full((wm1, nq), _EMPTY_SLOT, dtype=np.uint64) if wm1 else None
    )
    used = np.zeros(nq, dtype=np.int64)
    for _ in range(depth):
        if lane.size == 0:
            break
        dead = q < 0
        if dead.any():
            state[lane[dead]] = 2
            keep = ~dead
            lane, target, q, used = lane[keep], target[keep], q[keep], used[keep]
            if wm1:
                slots = slots[:, keep]
            if lane.size == 0:
                break
        t = g_tag[q]
        found = t == target
        if found.any():
            state[lane[found]] = 1
            keep = ~found
            lane, target, q, used = lane[keep], target[keep], q[keep], used[keep]
            t = t[keep]
            if wm1:
                slots = slots[:, keep]
            if lane.size == 0:
                break
        if wm1:
            fresh = ~(slots == t).any(axis=0)
            overflow = fresh & (used == wm1)
            if overflow.any():
                state[lane[overflow]] = 2
                keep = ~overflow
                lane, target, q, used = (
                    lane[keep], target[keep], q[keep], used[keep]
                )
                t, fresh, slots = t[keep], fresh[keep], slots[:, keep]
                if lane.size == 0:
                    break
            if fresh.any():
                slots[used[fresh], np.flatnonzero(fresh)] = t[fresh]
                used[fresh] += 1
        else:
            # Direct-mapped ways=1: any intervening different tag evicts.
            state[lane] = 2
            break
        q = prev_run[q]
    return state


def _chase_one(g_tag: np.ndarray, prev_run: np.ndarray, pos: int,
               ways: int) -> int:
    """Exact per-query fallback: walk the chain until resolution."""
    target = g_tag[pos]
    others: set[int] = set()
    p = int(prev_run[pos])
    while p >= 0:
        value = g_tag[p]
        if value == target:
            return 1
        others.add(int(value))
        if len(others) >= ways:
            return 2
        p = int(prev_run[p])
    return 2


def _classify_with_kernel(
    kernel, set_ids, tags, ways, init_set_ids, init_tags, nsets: int = 0
) -> tuple[np.ndarray, int, list[list[int]] | None]:
    """Run a compiled sequential per-set LRU kernel over grouped touches."""
    prefix = int(init_set_ids.size)
    if prefix:
        all_sets = np.concatenate([init_set_ids, set_ids])
        all_tags = np.concatenate([init_tags, tags])
    else:
        all_sets = np.ascontiguousarray(set_ids)
        all_tags = np.ascontiguousarray(tags)
    nsets_max = int(all_sets.max()) + 1 if all_sets.size else 1
    key = all_sets.astype(np.uint8 if nsets_max <= 256 else np.uint16)
    order = np.argsort(key, kind="stable")
    g_set = np.ascontiguousarray(all_sets[order], dtype=np.int64)
    g_tag = np.ascontiguousarray(all_tags[order], dtype=np.uint64)
    hit_g = kernel(g_set, g_tag, ways)
    hits = np.empty(int(set_ids.size), dtype=bool)
    is_real = order >= prefix
    real_pos = np.flatnonzero(is_real)
    hits[order[real_pos] - prefix] = hit_g[real_pos]
    contents = None
    if nsets:
        total = int(g_set.size)
        pair_order = np.lexsort((g_tag, g_set))
        p_set = g_set[pair_order]
        p_tag = g_tag[pair_order]
        pair_start = np.empty(total, dtype=bool)
        pair_start[0] = True
        np.logical_or(
            p_set[1:] != p_set[:-1], p_tag[1:] != p_tag[:-1],
            out=pair_start[1:],
        )
        contents = _final_contents(
            p_set, p_tag, pair_order, pair_start, total, nsets, ways
        )
    return hits, 0, contents


def classify_lru_hits_ref(
    set_ids: np.ndarray,
    tags: np.ndarray,
    ways: int,
    initial: list[list[int]],
) -> np.ndarray:
    """Reference classification: simulate each set's LRU directly.

    ``initial[s]`` lists set ``s``'s resident tags in LRU→MRU order.
    Used by the property tests to pin the vectorized chase (and the
    optional JIT kernel) to ground truth.
    """
    sets: dict[int, dict[int, bool]] = {
        s: {int(tag): True for tag in content}
        for s, content in enumerate(initial)
    }
    hits = np.zeros(int(set_ids.size), dtype=bool)
    for i in range(int(set_ids.size)):
        s = int(set_ids[i])
        tag = int(tags[i])
        entries = sets.setdefault(s, {})
        if tag in entries:
            del entries[tag]
            entries[tag] = True
            hits[i] = True
        else:
            if len(entries) >= ways:
                del entries[next(iter(entries))]
            entries[tag] = True
    return hits


# ----------------------------------------------------------------------
# epoch-end reconstruction


def final_lru_contents(
    set_ids: np.ndarray,
    tags: np.ndarray,
    nsets: int,
    ways: int,
    initial: list[list[int]],
) -> list[list[int]]:
    """Final per-set LRU contents after the epoch's touches.

    The W most-recently-touched distinct tags per set, LRU→MRU: the
    epoch's touched tags ordered by last touch, preceded by whichever
    initial residents went untouched (their relative order persists —
    every epoch touch is more recent), truncated to the last ``ways``.
    Bit-identical to replaying every touch through the set dicts.
    """
    out: list[list[int]] = []
    for s in range(nsets):
        base = [int(tag) for tag in initial[s]]
        mask = set_ids == s
        if not mask.any():
            out.append(base)
            continue
        touched = tags[mask]
        reversed_view = touched[::-1]
        uniq, first_in_rev = np.unique(reversed_view, return_index=True)
        # Larger index in the reversed stream = earlier last touch.
        by_last = uniq[np.argsort(-first_in_rev, kind="stable")]
        touched_set = set(int(tag) for tag in by_last)
        merged = [tag for tag in base if tag not in touched_set]
        merged.extend(int(tag) for tag in by_last)
        out.append(merged[-ways:] if len(merged) > ways else merged)
    return out


def epoch_evictions(miss_set_ids: np.ndarray, nsets: int, ways: int,
                    occupancy0: np.ndarray) -> int:
    """Evictions a structure performs over one epoch, without replay.

    Occupancy never falls mid-epoch (no invalidations between ticks)
    and every classified miss fills exactly one entry, so per set the
    first ``ways - occupancy0`` fills land in empty ways and every
    further fill evicts the LRU victim.
    """
    fills = np.bincount(miss_set_ids, minlength=nsets)
    headroom = ways - occupancy0
    return int(np.maximum(fills - headroom, 0).sum())
