"""The staged machine pipeline behind the online simulation.

:class:`Machine` decomposes the former monolithic run loop into four
explicit, composable stages:

- :class:`ThreadScheduler` — round-robin over bound threads in fixed
  access quanta (the concurrency model of §5.2);
- :class:`TranslationPipeline` — the per-core TLB → walker → PCC path,
  fronted by a memoized translation fast path for repeated hits;
- :class:`FaultPath` — first-touch fault filtering into the kernel (so
  greedy THP acts at the right moment);
- :class:`OsTickDriver` — the periodic OS promotion interval, timeline
  bookkeeping, and per-interval metrics sampling.

:class:`~repro.engine.simulation.Simulator` remains the public facade;
it wires a Machine and delegates, so every experiment, benchmark, and
subclass (e.g. the offline replay's scheduled simulator) keeps working
unchanged.

The translation fast path
-------------------------

The hot loop's dominant cost is the Python object graph under
``TLBHierarchy.lookup`` — method dispatch, per-structure statistics,
and several frames of call overhead — paid even when an access
trivially hits the L1 TLB again. The pipeline answers L1 hits in two
tiers. Tier 1 is a memoized *MRU hint* per L1 set: the tag most
recently made most-recently-used in that set. An access whose VPN (or
2MB region tag) matches its set's hint is guaranteed to hit L1 **with
zero state change** — re-running the full path would delete and
reinsert the tag at the same MRU position — so the pipeline answers
from the memo with no dict traffic at all. Tier 2 probes the live L1
set dict directly, in the hierarchy's order (4K before 2M): on a hit
the real path's *entire* state change is the del/reinsert LRU refresh,
which the tier performs itself. Both tiers charge constant hit cycles
and batch the statistics; everything else (L2 hits, 1GB hits, walks)
takes the full path, which also refreshes the hints.

Exactness: tier 2 operates on the live TLB dicts, so only the tier-1
hints can go stale — and only through TLB mutation that bypasses the
access path (shootdowns, promotions/demotions, full flushes), all of
which happen inside the OS tick; the machine bumps the pipeline's
epoch counter after every tick, wholesale-invalidating the hints.
Evictions cannot invalidate a hint (victims are LRU, hints are MRU)
and fills/refills update the affected set's hint in the same step, so
the fast path is bit-identical to the slow path — the property tests
assert equal walks, hits, cycles, and promotions with the memo on and
off.

The batched address stream
--------------------------

``batch=True`` (the default, requiring the fast path) lifts the tier-1
memo check out of Python entirely. Each thread keeps NumPy views of its
compressed trace — the uint64 VPN array, precomputed L1 set indices and
2MB region tags, and a prefix-sum of the repeat counts — so a quantum's
record window falls out of one ``searchsorted`` over the prefix sums
(the record-r-runs-iff-cumulative-accesses-before-r-is-under-budget
rule, vectorized). The pipeline then computes, **once per window**, a
*retirement mask* marking every record that is guaranteed to be a
tier-1 hint hit when the cursor reaches it; runs of marked records are
*retired in bulk* — counters advance by the run's record and access
totals, hit cycles are one multiply, and no per-record Python executes
— while the gaps between runs go through the scalar tier-2/slow loop.

The mask is assembled from three ingredients, none of which require
per-window sorting. First, a trace-static *link array* per structure
(computed once per thread when it binds to a core): for each record,
the index of the most recent earlier record mapping to the same L1 set,
kept only when that record carried the same tag. Second, a run-time
*hint barrier* per thread: links pointing before the barrier are dead,
because the hints were wholesale-invalidated (epoch bump after an OS
tick) or another thread's quantum rewrote them (multi-thread cores)
since the predecessor executed. Third, each 2MB region's *mapping
state*, memoized per epoch in a dense array indexed by a precomputed
region index: a 4K-backed region (base PTEs, not promoted) marks
same-VPN repeats, a huge-backed region marks same-region-tag repeats,
and anything else (untouched regions, 1GB-backed regions) is left to
the scalar span.

Exactness follows from two invariants. *(a)* Region state is stable
within an epoch except for untouched regions being backed by a fault —
promotions, demotions, collapses, and 1GB promotions happen only
inside OS ticks, every tick bumps the epoch, and fault handlers refuse
to huge-map a region that already holds base PTEs; the memo never
marks a region it sampled as untouched, so mid-epoch fault transitions
only ever cost retirement coverage, not correctness. *(b)* Every
access to a page of a 4K-backed (resp. huge-backed) region leaves its
VPN (resp. region tag) as its set's MRU hint — tier 1 by definition,
tier 2 and the slow path explicitly. So when the cursor reaches a
marked record, its live-linked predecessor has already installed
exactly the hint the mark promises, whether that predecessor was
itself bulk-retired or ran scalar. A marked record in a huge-backed
region also safely skips the scalar loop's 4K-set probe and
first-touch check: a huge-mapped region cannot hold 4K L1 entries
(promotion shoots them down; ``PageTable.map_huge`` refuses a region
with base PTEs) and every page in it is mapped, so no fault could
fire. The batched path therefore produces bit-identical
``SimulationResult`` stats — property-tested against both the scalar
reference and the per-record fast path. ``batch=False`` is the escape
hatch selecting the per-record loops.

The columnar epoch tier
-----------------------

``columnar=True`` (the default, requiring the batch tier) goes one
step further: between TLB-mutating events there is no reason to stop
at quantum boundaries at all. In an unobserved run (walk observers
wrap the per-record translate binding the epoch pass bypasses), the
machine retires the **entire remaining OS-tick interval** as one
epoch per live thread:

1. *Window*: the epoch end comes from iterating the per-quantum
   ``searchsorted`` rule until the accumulated accesses cover the
   remaining promotion interval — exactly the records the scalar loop
   would run before its next due-check fires. With several live
   threads the same rule plans a full round-robin schedule
   (``Machine._multithread_epoch``): every round covers every live
   slot in scheduler order, and per-core epochs span the whole plan —
   sound because distinct cores' TLBs, walkers and PCCs never observe
   each other's records, faults replay in exact (round, slot) order,
   and the one cross-core coupling (page-table accessed bits) gets a
   merged per-process pass in scalar walk order.
2. *Fault pre-pass*: every first-touch fault in the window fires
   up-front, in first-occurrence order. This is exact because fault
   handling never touches TLBs and never sets accessed bits
   (``map_base``/``map_huge`` only install mappings), and it removes
   the one source of mid-epoch region-state change: after the
   pre-pass, every region in the window is stably 4K-backed,
   huge-backed, or 1GB-backed for the whole epoch. Base-backed
   kernels take the array-batched fault path (one allocator sweep +
   one bulk PTE install for the window's first-touch set).
3. *Classification*: each record is routed to the L1 structure its
   region's mapping state selects, and the structure's whole epoch
   touch stream is classified hit/miss in one exact vectorized LRU
   pass (:mod:`repro.engine.columnar`; ``REPRO_JIT=1`` swaps in the
   numba kernel). Classified hits retire in bulk — counters and hit
   cycles are array reductions, no per-record Python.
4. *Residue*: the L1-miss stream is itself classified, not replayed
   (:mod:`repro.engine.residue`). The unified L2 and the 1GB L1 are
   two more whole-epoch LRU streams (4K records at their VPN,
   huge-backed ones at their region tag, 1GB-backed ones at their
   giga tag); the scalar lookup's silent probes are licensed as
   LRU-inert by a conservative alias pre-check, and windows the model
   cannot cover (aliasing, odd fill shapes, unmapped holes) replay
   through the quantum tiers bit-identically. Only classified L2/1GB
   misses walk: the walker's cost model and its page-walk caches are
   vectorized too (memo + per-level LRU classification), page-table
   accessed bits land in one compute-then-apply pass, and PCC
   admissions apply in one bulk call per structure at epoch end (the
   OS only reads the PCC at ticks, which an epoch never spans).
5. *Reconstruction*: every classified structure's set dicts — both
   L1s, the L2, the 1GB L1, and the PWCs — are rebuilt to their exact
   end-of-epoch contents (the W most recently touched distinct tags
   per set, LRU→MRU), evictions are counted from per-set fill counts
   against start-of-epoch occupancy, and the MRU hints are re-pointed
   at the rebuilt MRU entries — so every later tier, tick, and
   invariant check observes precisely the state record-at-a-time
   simulation would have left.

Epoch statistics land in the same pending counters the fast tiers
use, so ``sync()`` remains the single flush point. The adaptive
guard mirrors the batch tier's: a slot whose epochs classify under a
quarter of their records falls back to the quantum tiers and is
re-probed periodically. ``columnar=False`` selects the quantum tiers
unconditionally.
"""

from __future__ import annotations

import time
from contextlib import nullcontext

import numpy as np

from repro.config import SystemConfig
from repro.core.dump import CandidateRecord, DumpRegion
from repro.engine import residue
from repro.engine.columnar import (
    classify_lru_hits,
    epoch_evictions,
)
from repro.engine.cpu import Core
from repro.engine.system import ProcessWorkload
from repro.engine.timing import CycleAccounting, RuntimeBreakdown
from repro.metrics import MetricsRegistry, publish_run
from repro.obs.observer import RunObserver
from repro.obs.progress import progress_for_run
from repro.obs.runid import current_run_id
from repro.obs.tracer import CORE_TID_BASE
from repro.obs.tracer import span as trace_span
from repro.os.kernel import HugePagePolicy, KernelParams, SimulatedKernel
from repro.tlb.hierarchy import HitLevel
from repro.vm.address import (
    BASE_PAGE_SHIFT,
    GIGA_PAGE_SHIFT,
    HUGE_PAGE_SHIFT,
    PageSize,
)

#: VPN -> 2MB region tag shift.
_HUGE_SHIFT = HUGE_PAGE_SHIFT - BASE_PAGE_SHIFT
#: 2MB region tag -> 1GB region tag shift.
_GIGA_SHIFT = GIGA_PAGE_SHIFT - HUGE_PAGE_SHIFT
#: VPN -> 1GB region tag shift.
_GIGA_SHIFT_FULL = GIGA_PAGE_SHIFT - BASE_PAGE_SHIFT

# 2MB-region mapping states sampled at batch-window start. Only BASE
# and HUGE regions participate in bulk retirement; EMPTY regions can
# change state mid-quantum (a first-touch fault may huge-map them) and
# OTHER (1GB-backed) regions are answered by a TLB structure the MRU
# hints do not cover.
_REGION_EMPTY = 0
_REGION_BASE = 1
_REGION_HUGE = 2
_REGION_OTHER = 3


def _region_mapping_state(page_table, tag: int) -> int:
    """Classify 2MB region ``tag``'s mapping for the batch-window mask."""
    if page_table.is_giga_promoted(tag >> _GIGA_SHIFT):
        return _REGION_OTHER
    if page_table.is_promoted(tag):
        return _REGION_HUGE
    if page_table.region_base_pages(tag):
        return _REGION_BASE
    return _REGION_EMPTY


def _prev_same_tag_links(sets: np.ndarray, tags: np.ndarray) -> np.ndarray:
    """Per record: index of the previous same-set record, if same tag.

    ``links[r]`` is the index of the most recent earlier record mapping
    to the same L1 set when that record carried the same tag, else
    ``-1``. One stable argsort groups records by set index while
    preserving program order within each set, so the link array falls
    out of adjacent-in-sorted-order comparison. The relation is a
    property of the trace alone; it is computed once per thread and
    every batch window reuses it (a record is a guaranteed tier-1 hit
    iff its link clears the run-time hint barrier and its region's
    mapping state selects the structure — see ``_window_retire_mask``).
    """
    # Stable argsort on a narrow unsigned key selects numpy's radix
    # sort — an order of magnitude faster than the comparison sort the
    # native index dtype would get (set counts are small powers of two).
    nsets = int(sets.max()) + 1 if sets.size else 1
    if nsets <= 256:
        sort_keys = sets.astype(np.uint8)
    elif nsets <= 65536:
        sort_keys = sets.astype(np.uint16)
    else:  # pragma: no cover - no modelled TLB has 64K+ sets
        sort_keys = sets
    order = np.argsort(sort_keys, kind="stable")
    grouped_sets = sets[order]
    grouped_tags = tags[order]
    same = np.empty(order.size, dtype=bool)
    same[0] = False
    np.logical_and(
        grouped_sets[1:] == grouped_sets[:-1],
        grouped_tags[1:] == grouped_tags[:-1],
        out=same[1:],
    )
    links_sorted = np.full(order.size, -1, dtype=np.int64)
    matched = same[1:]
    links_sorted[1:][matched] = order[:-1][matched]
    links = np.empty(order.size, dtype=np.int64)
    links[order] = links_sorted
    return links


def _initial_stack_arrays(initial: list[list[int]]):
    """Flatten per-set LRU stacks into (set, tag) arrays, LRU→MRU.

    The epoch classifier prepends these as synthetic older touches:
    within a set the stable group-sort keeps them in order before the
    epoch's real touches, which reproduces the structure's exact
    recency state at epoch start.
    """
    sets_out: list[int] = []
    tags_out: list[int] = []
    for set_index, content in enumerate(initial):
        if content:
            sets_out.extend([set_index] * len(content))
            tags_out.extend(content)
    return (
        np.asarray(sets_out, dtype=np.intp),
        np.asarray(tags_out, dtype=np.uint64),
    )


class _EpochContext:
    """Classification results for one epoch window, pre-commit.

    Produced read-only by ``TranslationPipeline._epoch_classify`` and
    consumed by ``_epoch_finish``; splitting the two lets multi-thread
    epochs interleave the page-table pass across cores between them.
    """

    __slots__ = (
        "start", "end", "length", "window_units", "hit_units",
        "res_units", "base_idx", "b_setw", "b_hits", "b_final", "n_bhit",
        "huge_idx", "h_setw", "h_hits", "h_final", "n_hhit",
        "res_counts", "l2_part_idx", "l2_kind_huge", "l2_tags",
        "l2_setw", "l2_hits", "l2_final", "other_idx", "g_setw",
        "g_hits", "g_final", "walk_vpns", "walk_sizes", "walk_repeats",
        "walk_ridx", "walk_plan", "walk_pud", "walk_pmd",
    )


class _ThreadSlot:
    """One schedulable thread: trace cursor plus pinned identities."""

    __slots__ = ("vpns", "counts", "cursor", "length", "pid", "core_id",
                 "seen", "fault", "bulk_fault", "live", "np_vpns", "cum",
                 "bsets", "htags", "hsets", "prev_base", "prev_huge",
                 "region_ridx", "region_tags", "region_state_arr",
                 "hint_barrier", "batch_epoch", "adapt_seen",
                 "adapt_retired", "batch_off", "probe_countdown", "stream",
                 "page_ridx", "page_tags", "seen_np", "columnar_off",
                 "columnar_probe")

    def __init__(self, vpns, counts, pid, core_id, seen, fault,
                 np_vpns=None, np_counts=None, stream=None,
                 bulk_fault=None):
        # Plain Python lists iterate several times faster than numpy
        # scalar indexing in this (unavoidably sequential) hot loop;
        # the numpy views exist for the vectorized batch path.
        self.vpns = vpns
        self.counts = counts
        self.cursor = 0
        self.length = len(vpns)
        self.pid = pid
        self.core_id = core_id
        self.seen = seen
        self.fault = fault
        # Array-batched fault handler (base-backed policies only); the
        # epoch fault pre-pass prefers it over per-fault calls.
        self.bulk_fault = bulk_fault
        self.live = True
        # Whole-stream columnar encoding (repro.engine.columnar). When
        # present it supplies the batch path's arrays too, so the two
        # vectorized tiers share one encoding pass.
        self.stream = stream
        if stream is not None:
            self.np_vpns = stream.vpns
            self.cum = stream.cum
            self.page_ridx = stream.page_ridx
            self.page_tags = stream.page_tags
        elif np_vpns is None:
            self.np_vpns = None
            self.cum = None
            self.page_ridx = None
            self.page_tags = None
        else:
            self.np_vpns = np.ascontiguousarray(np_vpns, dtype=np.uint64)
            # cum[r] = accesses before record r; record r runs in a
            # quantum iff cum[r] - cum[cursor] < budget, so the window
            # end is one searchsorted over this array.
            cum = np.empty(self.length + 1, dtype=np.int64)
            cum[0] = 0
            np.cumsum(np_counts, out=cum[1:])
            self.cum = cum
            self.page_ridx = None
            self.page_tags = None
        # Conservative positive cache over the unique-page index: True
        # proves the page is in the process seen-set, False means "ask
        # the set" (threads of one process share the set, so another
        # slot may have seen the page first). Allocated on first epoch.
        self.seen_np = None
        # Adaptive columnar tier state (mirrors batch_off below).
        self.columnar_off = False
        self.columnar_probe = 0
        # Per-core set-index views and previous-same-set link arrays,
        # attached by the owning pipeline on first batch use.
        self.bsets = None
        self.htags = None
        self.hsets = None
        self.prev_base = None
        self.prev_huge = None
        # Dense 2MB-region index per record plus the per-epoch mapping
        # state memo it gathers from (region transitions happen only at
        # OS ticks, which bump the epoch; see _window_retire_mask).
        self.region_ridx = None
        self.region_tags: list[int] = []
        self.region_state_arr = None
        # Records before the barrier cannot vouch for a hint: the memo
        # was invalidated (epoch bump) or another thread ran on this
        # core since they executed.
        self.hint_barrier = 0
        self.batch_epoch = -1
        # Adaptive batch tier: recent-window retirement accounting (a
        # decayed running ratio) plus the fall-back/probe state driven
        # by TranslationPipeline.run_quantum.
        self.adapt_seen = 0
        self.adapt_retired = 0
        self.batch_off = False
        self.probe_countdown = 0


class ThreadScheduler:
    """Round-robin scheduler slicing bound threads into access quanta.

    Threads are interleaved in fixed quanta of trace records whose
    access counts sum to roughly ``quantum``, modelling concurrent
    execution on the pinned cores.
    """

    def __init__(self, quantum: int) -> None:
        self.quantum = quantum
        self.slots: list[_ThreadSlot] = []
        self.remaining = 0

    def add(self, vpns, counts, pid, core_id, seen, fault,
            np_vpns=None, np_counts=None, stream=None,
            bulk_fault=None) -> _ThreadSlot:
        """Register one thread's compressed trace for scheduling.

        ``np_vpns``/``np_counts`` (the compressed trace's arrays) enable
        the vectorized batch path for this thread when provided; a
        :class:`~repro.engine.columnar.ColumnarStream` supplies those
        plus the whole-stream columns the epoch tier gathers from.
        ``bulk_fault`` (optional) is the kernel's array-batched fault
        entry point for this thread's process.
        """
        slot = _ThreadSlot(vpns, counts, pid, core_id, seen, fault,
                           np_vpns=np_vpns, np_counts=np_counts,
                           stream=stream, bulk_fault=bulk_fault)
        self.slots.append(slot)
        self.remaining += slot.length
        return slot

    def next_round(self):
        """Yield each still-live slot once, retiring exhausted ones."""
        for slot in self.slots:
            if not slot.live:
                continue
            if slot.cursor >= slot.length:
                slot.live = False
                continue
            yield slot

    def advance(self, slot: _ThreadSlot, new_cursor: int) -> None:
        """Consume the records a quantum processed."""
        self.remaining -= new_cursor - slot.cursor
        slot.cursor = new_cursor


class TranslationPipeline:
    """Per-core translation stage: memo fast path over TLB→walker→PCC.

    Owns the per-set MRU hints described in the module docstring, the
    batched fast-hit counters (flushed into the canonical stats bags by
    :meth:`sync`), and the epoch counter that wholesale-invalidates the
    memo on shootdown/promotion/flush.
    """

    #: below this window size the vector setup cost cannot pay off
    MIN_BATCH_WINDOW = 32

    #: adaptive tier thresholds: once a slot has ``ADAPT_MIN_SEEN``
    #: recent records on the books and fewer than half retired in bulk,
    #: the mask-building overhead is losing to the scalar fast loop —
    #: batch turns off for that slot and is re-probed every
    #: ``ADAPT_PROBE_WINDOWS`` quanta (workload phases change). Legal
    #: because the batch and fast paths are bit-identical (property
    #: tested); this trades only wall-clock, never statistics.
    ADAPT_MIN_SEEN = 8192
    ADAPT_PROBE_WINDOWS = 32

    #: below this epoch window (records) the whole-epoch pass cannot
    #: amortize its setup; delegate the quantum to the batch/fast tiers
    MIN_EPOCH_RECORDS = 64
    #: epochs retiring under 1/4 of their records switch the slot back
    #: to the quantum tiers for this many epochs before re-probing
    COLUMNAR_PROBE_EPOCHS = 16

    def __init__(self, core: Core, fast_path: bool = True,
                 batch: bool = False, columnar: bool = False) -> None:
        self.core = core
        self.fast_path = fast_path
        # The batch path is a vectorization of the fast path's tier-1
        # memo; without the memo there is nothing to vectorize, so
        # fast_path=False wins and selects the reference loop.
        self.batch = batch and fast_path
        # The columnar epoch tier classifies against the same live set
        # dicts the batch tier's scalar gaps mutate; it requires the
        # batch encoding and falls back to it between epochs.
        self.columnar = columnar and self.batch
        #: bumped on every wholesale invalidation (OS tick shootdowns)
        self.epoch = 0
        l1_base = core.tlb.l1_base
        l1_huge = core.tlb.l1_huge
        self._base_sets = l1_base.sets
        self._huge_sets = l1_huge.sets
        self._nbase = l1_base.nsets
        self._nhuge = l1_huge.nsets
        #: per-set MRU hint tags; -1 is never a valid tag
        self._base_mru = [-1] * self._nbase
        self._huge_mru = [-1] * self._nhuge
        self._l1_hit_cycles = core.config.timing.l1_tlb_hit_cycles
        # Translate indirection for observability: normally the bound
        # method itself (identical cost to the old direct binding); an
        # observed run swaps in a recording wrapper, so non-observed
        # runs pay nothing per record.
        self._translate = core.translate
        # Batched fast-hit counters, flushed by sync().
        self._pending_base_records = 0
        self._pending_huge_records = 0
        self._pending_accesses = 0
        # Cumulative fast-path metrics (records, not raw accesses).
        self.fast_hits = 0
        self.slow_records = 0
        self.invalidations = 0
        # Batch-path metrics: records retired by vectorized bulk runs
        # and records handed to the scalar gap spans.
        self.batch_retired = 0
        self.batch_scalar_records = 0
        # Times the adaptive tier switched a slot off batch (low
        # retirement fraction made the mask overhead a net loss).
        self.batch_fallbacks = 0
        # Columnar epoch tier counters: epochs run, records retired by
        # classification, records run through the live-residue loop,
        # adaptive fall-backs to the quantum tiers, and a power-of-two
        # histogram of epoch lengths in records (bucket k counts epochs
        # of 2^(k-1) < length <= 2^k - 1 ... i.e. bit_length() == k).
        self.columnar_epochs = 0
        self.columnar_retired = 0
        self.columnar_residue_records = 0
        self.columnar_fallbacks = 0
        self.columnar_epoch_buckets = [0] * 32
        # Residue breakdown: residue records retired by the vectorized
        # L2/1GB-L1 classification vs records that walked the live page
        # table, epochs retired as part of a multi-thread round plan,
        # and the fault pre-pass split (array-batched vs per-fault).
        self.columnar_l2_retired = 0
        self.columnar_live_walked = 0
        self.columnar_mt_epochs = 0
        self.columnar_faults_batched = 0
        self.columnar_faults_scalar = 0
        # Epoch windows declined because the TLBs replace by tree-PLRU:
        # the whole-epoch classifier is exact-LRU-specific, so PLRU
        # epochs take the quantum tiers instead (counted, bit-identical).
        self.columnar_plru_fallbacks = 0
        # Under PLRU the dict-order tier-2 probe is unsound (insertion
        # order no longer tracks recency) but tier 1 stays exact: a
        # hint match means the set's most recent probe touched this
        # very tag, so the tree bits already point away from its way
        # and skipping the re-touch is a no-op (PLRU touch is
        # idempotent). The same argument keeps the batch retirement
        # mask exact — its links only mark records whose immediately
        # preceding same-set record carried the same tag. The loops
        # below are swapped for variants without the tier-2 blocks.
        self._plru = core.config.tlb.l1_base.replacement == "plru"
        if self._plru:
            self._run_quantum_fast = self._run_quantum_fast_plru
            self._scalar_spans = self._scalar_spans_plru
        #: the slot whose quantum most recently ran on this core
        self._active_slot = None

    # ------------------------------------------------------------------

    def run_quantum(self, slot: _ThreadSlot, budget: int, page_table) -> tuple:
        """Run one scheduling quantum of ``slot`` against this core.

        Returns ``(cursor, accesses, translation_cycles, walks)`` for
        the ledger and per-process attribution. Faults are taken on
        first touch, before the access translates.
        """
        if self._active_slot is not slot:
            # Another thread's quantum ran on this core: its records
            # rewrote the MRU hints, so this slot's precomputed links
            # to older records can no longer vouch for a live hint.
            self._active_slot = slot
            slot.hint_barrier = slot.cursor
        if self.batch and slot.np_vpns is not None:
            if slot.batch_off:
                slot.probe_countdown -= 1
                if slot.probe_countdown > 0:
                    return self._run_quantum_fast(slot, budget, page_table)
                slot.batch_off = False  # probe quantum: re-measure
            return self._run_quantum_batch(slot, budget, page_table)
        if self.fast_path:
            return self._run_quantum_fast(slot, budget, page_table)
        return self._run_quantum_slow(slot, budget, page_table)

    def _run_quantum_slow(self, slot: _ThreadSlot, budget: int, page_table):
        """Reference loop: every record takes the full TLB object graph."""
        vpns = slot.vpns
        counts = slot.counts
        i = slot.cursor
        n = slot.length
        seen = slot.seen
        fault = slot.fault
        is_mapped = page_table.is_mapped
        translate = self._translate
        miss_level = HitLevel.MISS
        start_budget = budget
        cycles = 0
        walks = 0
        while budget > 0 and i < n:
            vpn = vpns[i]
            repeat = counts[i]
            # Once a VPN has faulted in it stays mapped (promotion
            # preserves mapped-ness), so a per-process seen-set avoids
            # a page-table probe per record.
            if vpn not in seen:
                seen.add(vpn)
                vaddr = vpn << BASE_PAGE_SHIFT
                if not is_mapped(vaddr):
                    fault(vaddr)
            step_cycles, level, _size = translate(vpn, page_table, repeat)
            cycles += step_cycles
            if level is miss_level:
                walks += 1
            budget -= repeat
            i += 1
        self.slow_records += i - slot.cursor
        return i, start_budget - budget, cycles, walks

    def _run_quantum_fast(self, slot: _ThreadSlot, budget: int, page_table):
        """Memoized loop: L1 hits bypass the TLB object graph.

        Two tiers in front of the full path. Tier 1 is the per-set MRU
        memo: a hint match proves an L1 hit with zero state change, so
        not even the set dict is touched (this is why the memo must be
        epoch-invalidated when ticks mutate TLB state behind it — a
        stale hint would claim a shot-down entry still hits). Tier 2
        probes the live L1 set dict directly: on a hit the *entire*
        state change of the real path is the del/reinsert LRU refresh,
        which the tier performs itself, skipping the translate→lookup→
        hit_fast call stack and batching the statistics.

        Counter bookkeeping is hoisted out of the loop: accesses fall
        out of the budget delta, and fast-hit cycles are one multiply
        over the accumulated repeat counts.
        """
        vpns = slot.vpns
        counts = slot.counts
        i = slot.cursor
        n = slot.length
        seen = slot.seen
        fault = slot.fault
        is_mapped = page_table.is_mapped
        translate = self._translate
        base_mru = self._base_mru
        huge_mru = self._huge_mru
        base_sets = self._base_sets
        huge_sets = self._huge_sets
        nbase = self._nbase
        nhuge = self._nhuge
        miss_level = HitLevel.MISS
        size_base = PageSize.BASE
        size_huge = PageSize.HUGE
        start_budget = budget
        #: accesses answered by the fast tiers (repeat counts included)
        fast_units = 0
        cycles = 0
        walks = 0
        fast_base = 0
        fast_huge = 0
        slow = 0
        while budget > 0 and i < n:
            vpn = vpns[i]
            repeat = counts[i]
            base_set = vpn % nbase
            if base_mru[base_set] == vpn:
                # Tier 1: vpn is the MRU of its L1-4K set — guaranteed
                # hit, zero state change. (The hint implies a prior
                # access to vpn, so the seen-set already has it and the
                # fault check would be a no-op.)
                fast_base += 1
                fast_units += repeat
                budget -= repeat
                i += 1
                continue
            entries = base_sets[base_set]
            size = entries.get(vpn)
            if size is not None:
                # Tier 2: live L1-4K hit. The real path's only state
                # change is this LRU refresh; a 4KB entry is filled by
                # a prior access to this exact vpn, so the seen-set
                # already has it.
                del entries[vpn]
                entries[vpn] = size
                base_mru[base_set] = vpn
                fast_base += 1
                fast_units += repeat
                budget -= repeat
                i += 1
                continue
            # Once a VPN has faulted in it stays mapped (promotion
            # preserves mapped-ness), so a per-process seen-set avoids
            # a page-table probe per record.
            if vpn not in seen:
                seen.add(vpn)
                vaddr = vpn << BASE_PAGE_SHIFT
                if not is_mapped(vaddr):
                    fault(vaddr)
            # The L1-4K probe above missed silently (the hierarchy only
            # counts a 4K miss after all L1 structures fail), matching
            # the real probe order: 4K first, then 2M.
            huge_tag = vpn >> _HUGE_SHIFT
            huge_set = huge_tag % nhuge
            if huge_mru[huge_set] == huge_tag:
                # Tier 1, 2MB: the covering entry is MRU of its set.
                fast_huge += 1
                fast_units += repeat
                budget -= repeat
                i += 1
                continue
            hentries = huge_sets[huge_set]
            hsize = hentries.get(huge_tag)
            if hsize is not None:
                # Tier 2, 2MB: live L1-2M hit with its LRU refresh.
                del hentries[huge_tag]
                hentries[huge_tag] = hsize
                huge_mru[huge_set] = huge_tag
                fast_huge += 1
                fast_units += repeat
                budget -= repeat
                i += 1
                continue
            slow += 1
            step_cycles, level, size = translate(vpn, page_table, repeat)
            cycles += step_cycles
            if level is miss_level:
                walks += 1
            # The access left its translation at the MRU position of
            # the structure matching ``size`` (hit-refresh or fill).
            if size is size_base:
                base_mru[base_set] = vpn
            elif size is size_huge:
                huge_mru[huge_set] = huge_tag
            budget -= repeat
            i += 1
        cycles += self._l1_hit_cycles * fast_units
        self._pending_base_records += fast_base
        self._pending_huge_records += fast_huge
        self._pending_accesses += fast_units
        self.fast_hits += fast_base + fast_huge
        self.slow_records += slow
        return i, start_budget - budget, cycles, walks

    def _run_quantum_fast_plru(self, slot: _ThreadSlot, budget: int,
                               page_table):
        """PLRU-mode fast loop: tier 1 only, tier 2 routes to translate.

        Tier 1 survives the policy swap unchanged — a hint match means
        the set's most recent probe touched this very tag, so the PLRU
        tree already points away from its way and the skipped re-touch
        is a no-op (touch idempotence). Tier 2's dict del/reinsert *is*
        the LRU recency update, so it has no PLRU analogue; live-hit
        records fall through to the full translate path, whose
        hierarchy lookup performs the tree touch and counts the hit.
        The extra fall-throughs change only speed, never state: a
        live-L1-hit record's vpn is provably in the seen-set (the entry
        was filled by a prior access to it) so the fault check is a
        no-op, and a vpn resident in L1-4K excludes a covering L1-2M
        entry (one backing per region between shootdowns), so the 2MB
        hint cannot answer for it.
        """
        vpns = slot.vpns
        counts = slot.counts
        i = slot.cursor
        n = slot.length
        seen = slot.seen
        fault = slot.fault
        is_mapped = page_table.is_mapped
        translate = self._translate
        base_mru = self._base_mru
        huge_mru = self._huge_mru
        nbase = self._nbase
        nhuge = self._nhuge
        miss_level = HitLevel.MISS
        size_base = PageSize.BASE
        size_huge = PageSize.HUGE
        start_budget = budget
        fast_units = 0
        cycles = 0
        walks = 0
        fast_base = 0
        fast_huge = 0
        slow = 0
        while budget > 0 and i < n:
            vpn = vpns[i]
            repeat = counts[i]
            base_set = vpn % nbase
            if base_mru[base_set] == vpn:
                fast_base += 1
                fast_units += repeat
                budget -= repeat
                i += 1
                continue
            if vpn not in seen:
                seen.add(vpn)
                vaddr = vpn << BASE_PAGE_SHIFT
                if not is_mapped(vaddr):
                    fault(vaddr)
            huge_tag = vpn >> _HUGE_SHIFT
            huge_set = huge_tag % nhuge
            if huge_mru[huge_set] == huge_tag:
                fast_huge += 1
                fast_units += repeat
                budget -= repeat
                i += 1
                continue
            slow += 1
            step_cycles, level, size = translate(vpn, page_table, repeat)
            cycles += step_cycles
            if level is miss_level:
                walks += 1
            if size is size_base:
                base_mru[base_set] = vpn
            elif size is size_huge:
                huge_mru[huge_set] = huge_tag
            budget -= repeat
            i += 1
        cycles += self._l1_hit_cycles * fast_units
        self._pending_base_records += fast_base
        self._pending_huge_records += fast_huge
        self._pending_accesses += fast_units
        self.fast_hits += fast_base + fast_huge
        self.slow_records += slow
        return i, start_budget - budget, cycles, walks

    def _attach_batch_views(self, slot: _ThreadSlot) -> None:
        """Precompute this slot's trace-static batch arrays for this core.

        Threads are statically pinned, so the L1 geometries are fixed
        per slot; the modulo stays in uint64 (a mixed uint64/int64
        operand would silently promote to float64) and the results are
        cast to an indexable integer type once. The previous-same-set
        link arrays and the dense region index are likewise properties
        of the trace alone, paid once and reused by every window.
        """
        vpns = slot.np_vpns
        slot.bsets = (vpns % np.uint64(self._nbase)).astype(np.intp)
        if slot.stream is not None:
            # The whole-stream encoding already holds the region tags
            # and the dense unique-region index; share them.
            htags = slot.stream.htags
            slot.htags = htags
            slot.region_ridx = slot.stream.region_ridx
            slot.region_tags = slot.stream.region_tags.tolist()
        else:
            htags = vpns >> np.uint64(_HUGE_SHIFT)
            slot.htags = htags
            unique_tags, inverse = np.unique(htags, return_inverse=True)
            slot.region_ridx = inverse.astype(np.intp)
            slot.region_tags = unique_tags.tolist()
        slot.hsets = (htags % np.uint64(self._nhuge)).astype(np.intp)
        slot.prev_base = _prev_same_tag_links(slot.bsets, vpns)
        slot.prev_huge = _prev_same_tag_links(slot.hsets, htags)
        slot.region_state_arr = np.full(
            len(slot.region_tags), -1, dtype=np.int8
        )

    def _window_retire_mask(self, slot: _ThreadSlot, i: int, end: int,
                            page_table):
        """Per-window guaranteed-tier-1 mask (see module docstring).

        Returns ``(retire, is_base)`` boolean arrays over ``[i, end)``:
        ``retire`` marks records proven to be tier-1 hint hits when the
        cursor reaches them, ``is_base`` splits the marked records by
        which L1 structure answers (4K vs 2MB). A record is marked iff
        its precomputed previous-same-set link clears the slot's hint
        barrier (the predecessor ran after the last epoch bump and
        after any other thread's quantum on this core, so the hint it
        installed is still live) and its 2MB region's mapping state —
        memoized per epoch, since regions only change state inside OS
        ticks or, for untouched regions, via faults the memo
        conservatively leaves unmarked — selects the matching
        structure.
        """
        if slot.batch_epoch != self.epoch:
            slot.batch_epoch = self.epoch
            slot.hint_barrier = i
            slot.region_state_arr[:] = -1
        barrier = slot.hint_barrier
        record_state = slot.region_state_arr[slot.region_ridx[i:end]]
        unknown = record_state < 0
        if unknown.any():
            ridx = slot.region_ridx[i:end]
            tags = slot.region_tags
            states = slot.region_state_arr
            for j in np.unique(ridx[unknown]).tolist():
                state = _region_mapping_state(page_table, tags[j])
                if state != _REGION_EMPTY:
                    # Untouched regions stay unknown: a mid-epoch fault
                    # may back them, so they are re-probed per window
                    # rather than pinned unmarked for the whole epoch.
                    states[j] = state
            record_state = states[ridx]
        prev_base = slot.prev_base[i:end] >= barrier
        prev_huge = slot.prev_huge[i:end] >= barrier
        is_base = (record_state == _REGION_BASE) & prev_base
        retire = is_base | ((record_state == _REGION_HUGE) & prev_huge)
        return retire, is_base

    def _run_quantum_batch(self, slot: _ThreadSlot, budget: int, page_table):
        """Vectorized loop: bulk-retire runs of proven tier-1 hits.

        The quantum's record window comes from one ``searchsorted``
        over the thread's access prefix sums (a record runs iff the
        accesses before it are under budget — exactly the scalar
        ``while budget > 0`` rule). One retirement mask is computed for
        the whole window (:meth:`_window_retire_mask`); its marked runs
        retire in bulk and the unmarked gaps run the scalar tier-2/slow
        loop. The mask never needs recomputing mid-window: a marked
        record's same-set predecessor installs the promised hint no
        matter which side of the mask processed it.
        """
        if slot.bsets is None:
            self._attach_batch_views(slot)
        cum = slot.cum
        start = slot.cursor
        # First index whose prefix sum reaches the budget target is the
        # first record *not* processed (budget may go negative on the
        # final record, exactly like the scalar loop).
        end = min(
            int(np.searchsorted(cum, cum[start] + budget, side="left")),
            slot.length,
        )
        if end <= start:
            return start, 0, 0, 0
        if end - start < self.MIN_BATCH_WINDOW:
            return self._run_quantum_fast(slot, budget, page_table)
        retire, is_base = self._window_retire_mask(slot, start, end, page_table)
        length = end - start
        retired = int(np.count_nonzero(retire))
        # Bulk totals come straight off the mask — retired records never
        # execute per-record code, not even segment arithmetic. Their
        # access units are the window total minus what the scalar gaps
        # consume (both are prefix-sum differences).
        fast_base = int(np.count_nonzero(is_base))
        fast_huge = retired - fast_base
        window_units = int(cum[end] - cum[start])
        if retired == length:
            gap_starts: list[int] = []
            gap_ends: list[int] = []
            gap_units = 0
        else:
            flips = np.flatnonzero(retire[1:] != retire[:-1])
            bounds = np.empty(flips.size + 2, dtype=np.int64)
            bounds[0] = 0
            bounds[1:-1] = flips
            bounds[1:-1] += 1
            bounds[-1] = length
            # Segments alternate retire/scalar; pick the scalar ones.
            offset = 1 if retire[0] else 0
            starts = bounds[offset:bounds.size - 1:2]
            ends = bounds[offset + 1::2]
            gap_units = int((cum[start + ends] - cum[start + starts]).sum())
            gap_starts = (start + starts).tolist()
            gap_ends = (start + ends).tolist()
        bulk_units = window_units - gap_units
        cycles, walks, gap_base, gap_huge, gap_fast_units = (
            self._scalar_spans(slot, gap_starts, gap_ends, page_table)
        )
        fast_base += gap_base
        fast_huge += gap_huge
        fast_units = bulk_units + gap_fast_units
        cycles += self._l1_hit_cycles * fast_units
        self._pending_base_records += fast_base
        self._pending_huge_records += fast_huge
        self._pending_accesses += fast_units
        self.fast_hits += fast_base + fast_huge
        self.batch_retired += retired
        self.batch_scalar_records += length - retired
        # Adaptive tier bookkeeping: decay-halving keeps the ratio
        # tracking recent windows rather than the whole run.
        slot.adapt_seen += length
        slot.adapt_retired += retired
        if slot.adapt_seen >= self.ADAPT_MIN_SEEN:
            if slot.adapt_retired * 2 < slot.adapt_seen:
                slot.batch_off = True
                slot.probe_countdown = self.ADAPT_PROBE_WINDOWS
                self.batch_fallbacks += 1
            slot.adapt_seen >>= 1
            slot.adapt_retired >>= 1
        return end, window_units, cycles, walks

    def _scalar_spans(self, slot: _ThreadSlot, starts: list[int],
                      ends: list[int], page_table):
        """Fast loop over record-index spans (the batch path's gaps).

        Identical per-record behaviour to :meth:`_run_quantum_fast`
        (the batch equivalence property tests pin the two together);
        bounded by record indices instead of an access budget, and
        fast-hit cycles are charged by the caller over the combined
        units. Gaps are typically short and numerous, so one call
        handles all of a window's spans with the locals bound once.
        """
        vpns = slot.vpns
        counts = slot.counts
        seen = slot.seen
        fault = slot.fault
        is_mapped = page_table.is_mapped
        translate = self._translate
        base_mru = self._base_mru
        huge_mru = self._huge_mru
        base_sets = self._base_sets
        huge_sets = self._huge_sets
        nbase = self._nbase
        nhuge = self._nhuge
        miss_level = HitLevel.MISS
        size_base = PageSize.BASE
        size_huge = PageSize.HUGE
        fast_units = 0
        cycles = 0
        walks = 0
        fast_base = 0
        fast_huge = 0
        slow = 0
        for i, stop in zip(starts, ends):
            while i < stop:
                vpn = vpns[i]
                repeat = counts[i]
                base_set = vpn % nbase
                if base_mru[base_set] == vpn:
                    fast_base += 1
                    fast_units += repeat
                    i += 1
                    continue
                entries = base_sets[base_set]
                size = entries.get(vpn)
                if size is not None:
                    del entries[vpn]
                    entries[vpn] = size
                    base_mru[base_set] = vpn
                    fast_base += 1
                    fast_units += repeat
                    i += 1
                    continue
                if vpn not in seen:
                    seen.add(vpn)
                    vaddr = vpn << BASE_PAGE_SHIFT
                    if not is_mapped(vaddr):
                        fault(vaddr)
                huge_tag = vpn >> _HUGE_SHIFT
                huge_set = huge_tag % nhuge
                if huge_mru[huge_set] == huge_tag:
                    fast_huge += 1
                    fast_units += repeat
                    i += 1
                    continue
                hentries = huge_sets[huge_set]
                hsize = hentries.get(huge_tag)
                if hsize is not None:
                    del hentries[huge_tag]
                    hentries[huge_tag] = hsize
                    huge_mru[huge_set] = huge_tag
                    fast_huge += 1
                    fast_units += repeat
                    i += 1
                    continue
                slow += 1
                step_cycles, level, size = translate(vpn, page_table, repeat)
                cycles += step_cycles
                if level is miss_level:
                    walks += 1
                if size is size_base:
                    base_mru[base_set] = vpn
                elif size is size_huge:
                    huge_mru[huge_set] = huge_tag
                i += 1
        self.slow_records += slow
        return cycles, walks, fast_base, fast_huge, fast_units

    def _scalar_spans_plru(self, slot: _ThreadSlot, starts: list[int],
                           ends: list[int], page_table):
        """PLRU-mode gap loop: :meth:`_run_quantum_fast_plru` over
        record-index spans, mirroring :meth:`_scalar_spans` for LRU.

        The batch tier itself needs no PLRU variant: the retirement
        mask only marks records whose immediately preceding same-set
        record carried the same tag, so every bulk-retired touch is an
        idempotent re-touch under the tree exactly as a tier-1 hint
        hit is.
        """
        vpns = slot.vpns
        counts = slot.counts
        seen = slot.seen
        fault = slot.fault
        is_mapped = page_table.is_mapped
        translate = self._translate
        base_mru = self._base_mru
        huge_mru = self._huge_mru
        nbase = self._nbase
        nhuge = self._nhuge
        miss_level = HitLevel.MISS
        size_base = PageSize.BASE
        size_huge = PageSize.HUGE
        fast_units = 0
        cycles = 0
        walks = 0
        fast_base = 0
        fast_huge = 0
        slow = 0
        for i, stop in zip(starts, ends):
            while i < stop:
                vpn = vpns[i]
                repeat = counts[i]
                base_set = vpn % nbase
                if base_mru[base_set] == vpn:
                    fast_base += 1
                    fast_units += repeat
                    i += 1
                    continue
                if vpn not in seen:
                    seen.add(vpn)
                    vaddr = vpn << BASE_PAGE_SHIFT
                    if not is_mapped(vaddr):
                        fault(vaddr)
                huge_tag = vpn >> _HUGE_SHIFT
                huge_set = huge_tag % nhuge
                if huge_mru[huge_set] == huge_tag:
                    fast_huge += 1
                    fast_units += repeat
                    i += 1
                    continue
                slow += 1
                step_cycles, level, size = translate(vpn, page_table, repeat)
                cycles += step_cycles
                if level is miss_level:
                    walks += 1
                if size is size_base:
                    base_mru[base_set] = vpn
                elif size is size_huge:
                    huge_mru[huge_set] = huge_tag
                i += 1
        self.slow_records += slow
        return cycles, walks, fast_base, fast_huge, fast_units

    # ------------------------------------------------------------------
    # the columnar epoch tier

    def run_epoch(self, slot: _ThreadSlot, budget: int, page_table,
                  interval_remaining: int) -> tuple:
        """Retire up to one whole OS-tick interval of ``slot`` at once.

        The caller (the machine's run loop, single-live-slot case only)
        passes the accesses remaining until the next promotion tick;
        the epoch window covers exactly the quanta the round loop would
        run before its due-check fires — iterating the per-quantum
        ``searchsorted`` rule, since the scalar loop checks ``due``
        after every quantum and the final quantum may overshoot the
        interval just like it may overshoot its budget. Returns the
        same ``(cursor, accesses, translation_cycles, walks)`` tuple as
        :meth:`run_quantum`; small or adaptively-disabled windows
        delegate one quantum to the batch/fast tiers.
        """
        if self._active_slot is not slot:
            self._active_slot = slot
            slot.hint_barrier = slot.cursor
        if not self.columnar or slot.stream is None:
            return self.run_quantum(slot, budget, page_table)
        if self._plru:
            # The whole-epoch classifier proves hits against exact-LRU
            # stack depths; no such closed form exists for tree-PLRU,
            # so PLRU epochs take the quantum tiers (still bit-exact).
            self.columnar_plru_fallbacks += 1
            return self.run_quantum(slot, budget, page_table)
        if slot.columnar_off:
            slot.columnar_probe -= 1
            if slot.columnar_probe > 0:
                return self.run_quantum(slot, budget, page_table)
            slot.columnar_off = False  # probe epoch: re-measure
        cum = slot.cum
        start = slot.cursor
        n = slot.length
        end = start
        acc = 0
        while acc < interval_remaining and end < n:
            nxt = int(np.searchsorted(cum, cum[end] + budget, side="left"))
            if nxt > n:
                nxt = n
            if nxt <= end:  # pragma: no cover - counts are >= 1
                nxt = end + 1
            end = nxt
            acc = int(cum[end] - cum[start])
        if end - start < self.MIN_EPOCH_RECORDS:
            return self.run_quantum(slot, budget, page_table)
        if slot.bsets is None:
            self._attach_batch_views(slot)
        return self._run_epoch_columnar(slot, start, end, budget, page_table)

    def _run_epoch_columnar(self, slot: _ThreadSlot, start: int, end: int,
                            budget: int, page_table) -> tuple:
        """One vectorized epoch pass over ``[start, end)``.

        Composes the phases the module docstring describes: the fault
        pre-pass (:meth:`_epoch_faults`), read-only classification of
        the window against every LRU structure in the machine
        (:meth:`_epoch_classify`), the page-table accessed-bit pass,
        and the commit (:meth:`_epoch_finish`). A window the classifier
        declines — L2 aliasing the model cannot license, a fill shape
        it does not cover, or an unmapped hole whose walk must raise
        the scalar path's error — replays through the quantum tiers
        instead (:meth:`_replay_window`), bit-identically either way.
        """
        self._epoch_faults(slot, start, end, page_table)
        ctx = self._epoch_classify(slot, start, end, page_table)
        if ctx is None:
            self.columnar_fallbacks += 1
            return self._replay_window(slot, start, end, budget, page_table)
        ctx.walk_pud, ctx.walk_pmd = residue.page_table_pass(
            page_table, ctx.walk_vpns, ctx.walk_sizes
        )
        return self._epoch_finish(slot, ctx)

    def _replay_window(self, slot: _ThreadSlot, start: int, end: int,
                       budget: int, page_table) -> tuple:
        """Replay a planned epoch window through the quantum tiers.

        ``run_quantum``'s searchsorted rule reproduces the epoch
        planner's quantum boundaries exactly, so iterating it retires
        precisely ``[start, end)`` in the steps the scalar round loop
        would have taken (the planner stopped at the first quantum
        covering the remaining interval, so no tick fires inside the
        window). The cursor is restored before returning: the caller's
        single ``scheduler.advance`` call keeps the remaining-record
        accounting intact, exactly as after a classified epoch.
        """
        accesses = 0
        cycles = 0
        walks = 0
        cursor = start
        while cursor < end:
            slot.cursor = cursor
            cursor, acc, cyc, wlk = self.run_quantum(slot, budget,
                                                     page_table)
            accesses += acc
            cycles += cyc
            walks += wlk
        slot.cursor = start
        return cursor, accesses, cycles, walks

    def _epoch_faults(self, slot: _ThreadSlot, start: int, end: int,
                      page_table) -> None:
        """Phase A: the window's first-touch faults, up front.

        Exact because fault handling never touches TLBs or accessed
        bits; afterwards every region in the window has a stable
        mapping state for the whole epoch. Base-backed kernels take the
        array-batched path — one allocator sweep plus one bulk PTE
        install for the whole first-touch set — while huge-mapping
        policies keep per-fault calls (a fault there may promote a
        region, which interacts with allocator state order-sensitively).
        """
        if slot.seen_np is None:
            slot.seen_np = np.zeros(slot.page_tags.size, dtype=bool)
        seen_np = slot.seen_np
        pr_w = slot.page_ridx[start:end]
        uq_pages, first_pos = np.unique(pr_w, return_index=True)
        unseen = ~seen_np[uq_pages]
        if not unseen.any():
            return
        cand = uq_pages[unseen]
        order = np.argsort(first_pos[unseen], kind="stable")
        seen = slot.seen
        is_mapped = page_table.is_mapped
        page_tags = slot.page_tags
        bulk = slot.bulk_fault
        if bulk is not None:
            vaddrs: list[int] = []
            append = vaddrs.append
            for k in order.tolist():
                vpn = int(page_tags[cand[k]])
                if vpn not in seen:
                    seen.add(vpn)
                    vaddr = vpn << BASE_PAGE_SHIFT
                    if not is_mapped(vaddr):
                        append(vaddr)
            if vaddrs:
                bulk(vaddrs)
                self.columnar_faults_batched += len(vaddrs)
        else:
            fault = slot.fault
            for k in order.tolist():
                vpn = int(page_tags[cand[k]])
                if vpn not in seen:
                    seen.add(vpn)
                    vaddr = vpn << BASE_PAGE_SHIFT
                    if not is_mapped(vaddr):
                        fault(vaddr)
                        self.columnar_faults_scalar += 1
        seen_np[cand] = True

    def _epoch_classify(self, slot: _ThreadSlot, start: int, end: int,
                        page_table):
        """Phases B–C plus residue planning, all read-only.

        Region states, L1-4K/L1-2M classification, then the residue
        pipeline: the unified L2 and the 1GB L1 as two more classified
        LRU streams, the live-walk subset, and the vectorized walker
        cost plan. Mutates nothing; returns an :class:`_EpochContext`,
        or None when the window must replay through the quantum tiers.

        The residue identities mirror the scalar probe sequence
        (``TLBHierarchy.lookup`` → walker → fill): a 4K-backed record
        probes/fills the L2 at its VPN; a huge-backed record at its
        region tag when the L2 serves 2MB entries (else it walks); a
        1GB-backed record probes the 1GB L1 (hit refresh or post-walk
        fill — outcome-independent, so one classification pass is
        exact). The silent L2 probes the scalar lookup also performs
        (a 4K VPN for a huge/1GB-backed record, a 2MB tag for a
        4K/1GB-backed one) are guaranteed misses — LRU-inert — exactly
        when :func:`residue.l2_alias_conflict` clears the window.
        """
        # ---- phase B: post-fault region states for the window.
        rr_w = slot.region_ridx[start:end]
        uqr = np.unique(rr_w)
        region_tags = slot.region_tags
        st = np.empty(uqr.size, dtype=np.int8)
        for k, ridx in enumerate(uqr.tolist()):
            st[k] = _region_mapping_state(page_table, region_tags[ridx])
        if (st == _REGION_EMPTY).any():
            # An unmapped hole: its walk must raise the scalar path's
            # PageTableError at the exact access, so replay the window.
            return None
        rec_state = st[np.searchsorted(uqr, rr_w)]

        # ---- phase C: exact LRU classification per suppressed L1.
        core = self.core
        tlbH = core.tlb
        cum = slot.cum
        vpns_w = slot.np_vpns[start:end]
        counts_w = cum[start + 1:end + 1] - cum[start:end]
        length = end - start
        base_sets_d = self._base_sets
        huge_sets_d = self._huge_sets
        nbase = self._nbase
        nhuge = self._nhuge
        ways_b = tlbH.l1_base.config.ways
        ways_h = tlbH.l1_huge.config.ways
        base_idx = np.flatnonzero(rec_state == _REGION_BASE)
        huge_idx = np.flatnonzero(rec_state == _REGION_HUGE)
        hit_mask = np.zeros(length, dtype=bool)
        n_bhit = n_hhit = 0
        b_setw = b_hits = None
        h_setw = h_hits = None
        init_b = [list(entries) for entries in base_sets_d]
        init_h = [list(entries) for entries in huge_sets_d]
        b_final = h_final = None
        if base_idx.size:
            b_tags = vpns_w[base_idx]
            b_setw = slot.bsets[start:end][base_idx]
            ib_sets, ib_tags = _initial_stack_arrays(init_b)
            b_hits, _, b_final = classify_lru_hits(
                b_setw, b_tags, ways_b, ib_sets, ib_tags, nsets=nbase
            )
            hit_mask[base_idx[b_hits]] = True
            n_bhit = int(np.count_nonzero(b_hits))
        if huge_idx.size:
            h_tags = slot.htags[start:end][huge_idx]
            h_setw = slot.hsets[start:end][huge_idx]
            ih_sets, ih_tags = _initial_stack_arrays(init_h)
            h_hits, _, h_final = classify_lru_hits(
                h_setw, h_tags, ways_h, ih_sets, ih_tags, nsets=nhuge
            )
            hit_mask[huge_idx[h_hits]] = True
            n_hhit = int(np.count_nonzero(h_hits))
        window_units = int(cum[end] - cum[start])
        hit_units = int(counts_w[hit_mask].sum())
        res_idx = np.flatnonzero(~hit_mask)

        # ---- the residue as three more classified streams.
        res_vpns = vpns_w[res_idx]
        res_counts = counts_w[res_idx]
        res_states = rec_state[res_idx]
        is_base = res_states == _REGION_BASE
        is_huge = res_states == _REGION_HUGE
        is_other = ~(is_base | is_huge)
        plan = tlbH._fill_plan
        serves_huge = plan[PageSize.HUGE][2] is not None
        if is_base.any() and plan[PageSize.BASE][2] is None:
            # 4K-backed residue would probe the L2 without ever filling
            # it; the classifier models every miss as a fill.
            return None
        if is_other.any() and plan[PageSize.GIGA][2] is not None:
            # 1GB walks would fill the L2 conditionally on the 1GB-L1
            # outcome, a shape the one-pass model does not cover.
            return None
        resident = np.fromiter(
            (tag for entries in tlbH._l2_sets for tag in entries),
            np.uint64,
        )
        base_vpns = res_vpns[is_base]
        huge_vpns = res_vpns[is_huge]
        other_vpns = res_vpns[is_other]
        if residue.l2_alias_conflict(resident, base_vpns, huge_vpns,
                                     other_vpns, serves_huge):
            return None

        # Unified L2 stream: 4K records at their VPN, huge-backed ones
        # (when served) at their region tag, merged in program order.
        l2_part_idx = (np.flatnonzero(is_base | is_huge) if serves_huge
                       else np.flatnonzero(is_base))
        l2_kind_huge = l2_tags = l2_setw = l2_hits = l2_final = None
        if l2_part_idx.size:
            l2_kind_huge = is_huge[l2_part_idx]
            sel = res_vpns[l2_part_idx]
            l2_tags = np.where(
                l2_kind_huge, sel >> np.uint64(_HUGE_SHIFT), sel
            )
            l2_n = tlbH._l2_n
            l2_setw = (l2_tags % np.uint64(l2_n)).astype(np.intp)
            init_l2 = [list(entries) for entries in tlbH._l2_sets]
            il_sets, il_tags = _initial_stack_arrays(init_l2)
            l2_hits, _, l2_final = classify_lru_hits(
                l2_setw, l2_tags, tlbH.l2.config.ways, il_sets, il_tags,
                nsets=l2_n,
            )

        # 1GB L1 stream: every 1GB-backed record touches it.
        other_idx = np.flatnonzero(is_other)
        g_setw = g_hits = g_final = None
        if other_idx.size:
            g_tags = other_vpns >> np.uint64(_GIGA_SHIFT_FULL)
            g_n = tlbH._g_n
            g_setw = (g_tags % np.uint64(g_n)).astype(np.intp)
            init_g = [list(entries) for entries in tlbH._g_sets]
            ig_sets, ig_tags = _initial_stack_arrays(init_g)
            g_hits, _, g_final = classify_lru_hits(
                g_setw, g_tags, tlbH.l1_giga.config.ways, ig_sets,
                ig_tags, nsets=g_n,
            )

        # Live-walk subset, program order: classified L2 misses,
        # huge-backed records the L2 cannot serve, 1GB-L1 misses.
        walk_mask = np.zeros(res_idx.size, dtype=bool)
        if l2_part_idx.size:
            walk_mask[l2_part_idx[~l2_hits]] = True
        if not serves_huge:
            walk_mask[is_huge] = True
        if other_idx.size:
            walk_mask[other_idx[~g_hits]] = True
        walk_idx = np.flatnonzero(walk_mask)

        ctx = _EpochContext()
        ctx.start = start
        ctx.end = end
        ctx.length = length
        ctx.window_units = window_units
        ctx.hit_units = hit_units
        ctx.res_units = window_units - hit_units
        ctx.base_idx = base_idx
        ctx.b_setw = b_setw
        ctx.b_hits = b_hits
        ctx.b_final = b_final
        ctx.n_bhit = n_bhit
        ctx.huge_idx = huge_idx
        ctx.h_setw = h_setw
        ctx.h_hits = h_hits
        ctx.h_final = h_final
        ctx.n_hhit = n_hhit
        ctx.res_counts = res_counts
        ctx.l2_part_idx = l2_part_idx
        ctx.l2_kind_huge = l2_kind_huge
        ctx.l2_tags = l2_tags
        ctx.l2_setw = l2_setw
        ctx.l2_hits = l2_hits
        ctx.l2_final = l2_final
        ctx.other_idx = other_idx
        ctx.g_setw = g_setw
        ctx.g_hits = g_hits
        ctx.g_final = g_final
        ctx.walk_vpns = res_vpns[walk_idx]
        ctx.walk_sizes = (res_states[walk_idx] - 1).astype(np.int8)
        ctx.walk_repeats = res_counts[walk_idx]
        ctx.walk_ridx = res_idx[walk_idx] + start
        ctx.walk_plan = residue.plan_walks(
            core.walker, ctx.walk_vpns, ctx.walk_sizes
        )
        ctx.walk_pud = None
        ctx.walk_pmd = None
        return ctx

    def _epoch_finish(self, slot: _ThreadSlot, ctx: _EpochContext) -> tuple:
        """Commit a classified epoch: stats, PCCs, reconstructions.

        Everything the old live-residue loop mutated record-at-a-time
        lands here as array reductions and end-state rebuilds. Counting
        identities, from the scalar probe sequence: every residue
        record is exactly one of an L2 hit, a 1GB-L1 hit, or a live
        walk; only 1GB-L1 hits are L1 hits (and skip the L2 counters);
        repeats after a record's first access always hit L1 (the first
        access left its translation at MRU).
        """
        core = self.core
        tlbH = core.tlb
        plan = tlbH._fill_plan
        entry_base = plan[PageSize.BASE][3]
        entry_huge = plan[PageSize.HUGE][3]
        entry_giga = plan[PageSize.GIGA][3]
        l1_cyc = core._l1_hit_cycles
        l2_cyc = core._l2_hit_cycles
        res_counts = ctx.res_counts
        n_res = int(res_counts.size)

        n_l2hit = l2hit_units = 0
        if ctx.l2_part_idx.size:
            hit_rows = ctx.l2_part_idx[ctx.l2_hits]
            n_l2hit = int(hit_rows.size)
            l2hit_units = int(res_counts[hit_rows].sum())
        n_ghit = ghit_units = 0
        if ctx.other_idx.size:
            g_rows = ctx.other_idx[ctx.g_hits]
            n_ghit = int(g_rows.size)
            ghit_units = int(res_counts[g_rows].sum())
        walk_repeats = ctx.walk_repeats
        n_walks = int(walk_repeats.size)
        if n_walks:
            walk_units = int(walk_repeats.sum())
            tcyc_d = int(
                (ctx.walk_plan.cycles + l1_cyc * (walk_repeats - 1)).sum()
            )
        else:
            walk_units = 0
            tcyc_d = 0
        cycles = (
            l1_cyc * ctx.hit_units
            + n_l2hit * l2_cyc
            + l1_cyc * (l2hit_units - n_l2hit)
            + l1_cyc * ghit_units
            + tcyc_d
        )
        l1h_d = (l2hit_units - n_l2hit) + ghit_units + (walk_units - n_walks)

        # Deferred PCC admissions, in walk order, one bulk apply per
        # structure (nothing reads a PCC mid-epoch; the 2MB and 1GB
        # PCCs are independent and per-structure order is preserved).
        if n_walks:
            walk_pud = ctx.walk_pud
            walk_sizes = ctx.walk_sizes
            promoted = walk_sizes != residue.SIZE_BASE
            pmd_rows = ctx.walk_pmd & (walk_sizes != residue.SIZE_GIGA)
            n_pmd = int(np.count_nonzero(pmd_rows))
            if n_pmd:
                core.pcc.access_many(list(zip(
                    (ctx.walk_vpns[pmd_rows]
                     >> np.uint64(_HUGE_SHIFT)).tolist(),
                    promoted[pmd_rows].tolist(),
                )))
            n_pud = int(np.count_nonzero(walk_pud))
            if n_pud and core._pcc_1gb_access is not None:
                core.pcc_1gb.access_many(list(zip(
                    (ctx.walk_vpns[walk_pud]
                     >> np.uint64(_GIGA_SHIFT_FULL)).tolist(),
                    promoted[walk_pud].tolist(),
                )))
            residue.apply_walk_plan(core.walker, ctx.walk_plan,
                                    pud_candidates=n_pud,
                                    pmd_candidates=n_pmd)

        # ---- phase E: reconstruct every classified structure. No live
        # code touched their dicts, so occupancy still reads as of
        # epoch start; every classified miss fills exactly one entry,
        # and the final content of a W-way LRU set is the last W
        # distinct tags by last touch.
        if ctx.base_idx.size:
            base_sets_d = self._base_sets
            nbase = self._nbase
            occ0 = np.fromiter(
                (len(entries) for entries in base_sets_d), np.int64, nbase
            )
            tlbH.l1_base.stats.evictions += epoch_evictions(
                ctx.b_setw[~ctx.b_hits], nbase,
                tlbH.l1_base.config.ways, occ0
            )
            base_mru = self._base_mru
            for s, content in enumerate(ctx.b_final):
                entries = base_sets_d[s]
                entries.clear()
                for tag in content:
                    entries[tag] = entry_base
                base_mru[s] = content[-1] if content else -1
        if ctx.huge_idx.size:
            huge_sets_d = self._huge_sets
            nhuge = self._nhuge
            occ0 = np.fromiter(
                (len(entries) for entries in huge_sets_d), np.int64, nhuge
            )
            tlbH.l1_huge.stats.evictions += epoch_evictions(
                ctx.h_setw[~ctx.h_hits], nhuge,
                tlbH.l1_huge.config.ways, occ0
            )
            huge_mru = self._huge_mru
            for s, content in enumerate(ctx.h_final):
                entries = huge_sets_d[s]
                entries.clear()
                for tag in content:
                    entries[tag] = entry_huge
                huge_mru[s] = content[-1] if content else -1
        if ctx.l2_part_idx.size:
            l2_sets_d = tlbH._l2_sets
            l2_n = tlbH._l2_n
            occ0 = np.fromiter(
                (len(entries) for entries in l2_sets_d), np.int64, l2_n
            )
            tlbH.l2.stats.evictions += epoch_evictions(
                ctx.l2_setw[~ctx.l2_hits], l2_n, tlbH.l2.config.ways, occ0
            )
            # Entry values: a hit keeps the stored value, a fill stores
            # the filling size's entry — replay the fill history over
            # the initial values, then rebuild from the final contents.
            value_of = {}
            for entries in l2_sets_d:
                value_of.update(entries)
            miss = ~ctx.l2_hits
            for tag, kind in zip(ctx.l2_tags[miss].tolist(),
                                 ctx.l2_kind_huge[miss].tolist()):
                value_of[tag] = entry_huge if kind else entry_base
            for s, content in enumerate(ctx.l2_final):
                entries = l2_sets_d[s]
                entries.clear()
                for tag in content:
                    entries[tag] = value_of[tag]
        if ctx.other_idx.size:
            g_sets_d = tlbH._g_sets
            g_n = tlbH._g_n
            occ0 = np.fromiter(
                (len(entries) for entries in g_sets_d), np.int64, g_n
            )
            tlbH.l1_giga.stats.evictions += epoch_evictions(
                ctx.g_setw[~ctx.g_hits], g_n, tlbH.l1_giga.config.ways,
                occ0
            )
            for s, content in enumerate(ctx.g_final):
                entries = g_sets_d[s]
                entries.clear()
                for tag in content:
                    entries[tag] = entry_giga

        # ---- statistics flush. Classified L1 hits ride the pending
        # counters (sync() stays the single flush point); residue
        # counters land directly, exactly as the live calls would have.
        self._pending_base_records += ctx.n_bhit
        self._pending_huge_records += ctx.n_hhit
        self._pending_accesses += ctx.hit_units
        tlbH.accesses += n_res
        tlbH._b_stats.misses += n_res - n_ghit
        tlbH._g_stats.hits += n_ghit
        tlbH._l2_stats.hits += n_l2hit
        tlbH._l2_stats.misses += n_walks
        stats = core.stats
        stats.accesses += ctx.res_units
        stats.l1_hits += l1h_d
        stats.l2_hits += n_l2hit
        stats.walks += n_walks
        stats.translation_cycles += tcyc_d
        self.columnar_epochs += 1
        retired = ctx.n_bhit + ctx.n_hhit
        self.columnar_retired += retired
        self.columnar_residue_records += n_res
        self.columnar_l2_retired += n_l2hit + n_ghit
        self.columnar_live_walked += n_walks
        self.columnar_epoch_buckets[min(ctx.length.bit_length(), 31)] += 1
        # Adaptive guard: an epoch that classifies almost nothing pays
        # several vector passes for little retirement; hand the slot
        # back to the quantum tiers for a while (bit-identical either
        # way). Vectorized L2/1GB retirements count as classified work.
        if (retired + n_l2hit + n_ghit) * 4 < ctx.length:
            slot.columnar_off = True
            slot.columnar_probe = self.COLUMNAR_PROBE_EPOCHS
            self.columnar_fallbacks += 1
        return ctx.end, ctx.window_units, cycles, n_walks

    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Flush batched fast-hit counters into the canonical stats.

        Called before every OS tick and before result collection, so
        ``CoreStats``/``TLBStats`` always read exactly as they would
        with the fast path disabled.
        """
        base_records = self._pending_base_records
        huge_records = self._pending_huge_records
        accesses = self._pending_accesses
        if not (base_records or huge_records):
            return
        tlb = self.core.tlb
        tlb.accesses += base_records + huge_records
        tlb.l1_base.stats.hits += base_records
        tlb.l1_huge.stats.hits += huge_records
        stats = self.core.stats
        stats.accesses += accesses
        stats.l1_hits += accesses
        self._pending_base_records = 0
        self._pending_huge_records = 0
        self._pending_accesses = 0

    def invalidate_hints(self) -> None:
        """Wholesale memo invalidation (epoch bump).

        The OS tick's shootdowns, promotions, demotions, and flushes
        mutate TLB state behind the pipeline's back; dropping every
        hint restores the guarantee that a hint match implies a
        state-change-free L1 hit.
        """
        self.epoch += 1
        self.invalidations += 1
        self._base_mru = [-1] * self._nbase
        self._huge_mru = [-1] * self._nhuge

    def as_metrics(self, prefix: str) -> dict[str, int]:
        """Fast-path counter readings for the metrics registry."""
        values = {
            f"{prefix}.fast_hits": self.fast_hits,
            f"{prefix}.slow_records": self.slow_records,
            f"{prefix}.invalidations": self.invalidations,
            f"{prefix}.batch_retired": self.batch_retired,
            f"{prefix}.batch_scalar_records": self.batch_scalar_records,
            f"{prefix}.batch_fallbacks": self.batch_fallbacks,
            f"{prefix}.columnar_epochs": self.columnar_epochs,
            f"{prefix}.columnar_retired": self.columnar_retired,
            f"{prefix}.columnar_residue_records":
                self.columnar_residue_records,
            f"{prefix}.columnar_fallbacks": self.columnar_fallbacks,
            f"{prefix}.columnar_l2_retired": self.columnar_l2_retired,
            f"{prefix}.columnar_live_walked": self.columnar_live_walked,
            f"{prefix}.columnar_mt_epochs": self.columnar_mt_epochs,
            f"{prefix}.columnar_faults_batched":
                self.columnar_faults_batched,
            f"{prefix}.columnar_faults_scalar":
                self.columnar_faults_scalar,
            f"{prefix}.columnar_plru_fallbacks":
                self.columnar_plru_fallbacks,
        }
        # Epoch-length histogram: power-of-two buckets, emitted sparsely
        # (bucket k holds epochs whose record count has bit_length k).
        for k, count in enumerate(self.columnar_epoch_buckets):
            if count:
                values[f"{prefix}.columnar_epoch_p2_{k:02d}"] = count
        return values


class FaultPath:
    """First-touch fault stage: per-process seen-sets into the kernel."""

    def __init__(self, kernel: SimulatedKernel) -> None:
        self.kernel = kernel
        self._seen: dict[int, set[int]] = {}

    def seen_for(self, pid: int) -> set[int]:
        """The VPNs process ``pid`` has already touched (shared across
        its threads — one address space, one fault per page)."""
        return self._seen.setdefault(pid, set())

    def handler_for(self, pid: int):
        """A ``fault(vaddr)`` callable bound to ``pid``."""
        handle_fault = self.kernel.handle_fault

        def fault(vaddr: int, _pid: int = pid) -> None:
            handle_fault(_pid, vaddr)

        return fault

    def bulk_handler_for(self, pid: int):
        """A ``bulk_fault(vaddrs)`` callable bound to ``pid``, or None.

        Only offered when the kernel's fault path is base-backed
        regardless of VMA state (:attr:`SimulatedKernel.
        supports_bulk_faults`), which is what makes one array pass
        equivalent to per-fault calls.
        """
        if not self.kernel.supports_bulk_faults:
            return None
        handle_bulk = self.kernel.handle_faults_bulk

        def bulk_fault(vaddrs: list, _pid: int = pid) -> None:
            handle_bulk(_pid, vaddrs)

        return bulk_fault


class OsTickDriver:
    """The periodic OS promotion interval (the paper's 30s analogue).

    Counts accesses toward the interval, fires the tick function at
    round boundaries, accumulates promotion/demotion totals and the
    per-interval timelines, and samples the metrics registry at every
    tick so samples align 1:1 with ``promotion_timeline``.
    """

    def __init__(
        self,
        kernel: SimulatedKernel,
        interval: int,
        tick_fn,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.kernel = kernel
        self.interval = interval
        self._tick_fn = tick_fn
        self.registry = registry
        self.accesses_since_tick = 0
        self.total_accesses = 0
        self.promotions = 0
        self.demotions = 0
        self.promotion_timeline: list[tuple[int, int]] = []
        self.huge_page_timeline: list[dict[int, int]] = []

    def note(self, accesses: int) -> None:
        """Account a quantum's accesses toward the interval."""
        self.accesses_since_tick += accesses
        self.total_accesses += accesses

    @property
    def due(self) -> bool:
        """Whether the interval has elapsed since the last tick."""
        return self.accesses_since_tick >= self.interval

    def tick(self, cores, ledgers):
        """Fire one promotion interval and record its outcome."""
        self.accesses_since_tick = 0
        outcome = self._tick_fn(cores, ledgers)
        self.promotions += len(outcome.promoted)
        self.demotions += len(outcome.demoted)
        self._record(len(outcome.promoted))
        return outcome

    def final_tick(self, cores, ledgers):
        """Trailing tick so short runs don't lose pending candidates."""
        outcome = self._tick_fn(cores, ledgers)
        self.promotions += len(outcome.promoted)
        self.demotions += len(outcome.demoted)
        if outcome.promoted or not self.huge_page_timeline:
            self._record(len(outcome.promoted))
        return outcome

    def _record(self, promoted: int) -> None:
        self.promotion_timeline.append((self.total_accesses, promoted))
        self.huge_page_timeline.append(
            {
                pid: self.kernel.huge_pages_of(pid)
                for pid in self.kernel.processes
            }
        )
        if self.registry is not None:
            self.registry.sample(self.total_accesses)


class Machine:
    """One simulated machine: scheduler, pipelines, fault path, ticks.

    The composition root of the engine. The optional ``tick_fn`` lets a
    facade (or subclass of it) intercept promotion ticks — the offline
    replay pipeline substitutes recorded candidate schedules this way —
    while :meth:`promotion_tick` remains the canonical implementation.
    """

    def __init__(
        self,
        config: SystemConfig,
        policy: HugePagePolicy = HugePagePolicy.PCC,
        params: KernelParams | None = None,
        fragmentation: float = 0.0,
        thread_quantum: int = 2048,
        serialization_cycles_per_access: float = 0.0,
        fast_path: bool = True,
        batch: bool = True,
        columnar: bool = True,
        tick_fn=None,
        validate: bool = False,
        observe: bool | None = None,
    ) -> None:
        self.config = config
        self.policy = policy
        # Runtime invariant checking (repro.validation.invariants). The
        # monitor is built lazily in run(); when off, the only cost on
        # the run loop is a few `is not None` tests per OS tick.
        self.validate = validate
        self.monitor = None
        # Observability (repro.obs). None = auto: observe iff a tracer
        # is active or REPRO_OBS requests it. False is the hard-off used
        # by perf A/B runs; True forces histograms even without either.
        self.observe = observe
        self.obs: RunObserver | None = None
        self.kernel = SimulatedKernel(
            config, policy=policy, params=params, fragmentation=fragmentation
        )
        self.thread_quantum = thread_quantum
        self.serialization_cycles_per_access = serialization_cycles_per_access
        self.fast_path = fast_path
        self.batch = batch and fast_path
        self.columnar = columnar and self.batch
        self.dump_region = DumpRegion()
        self._tick_fn = tick_fn or self.promotion_tick
        self.cores: list[Core] = []
        self.pipelines: list[TranslationPipeline] = []
        self.ledgers: list[CycleAccounting] = []
        self._core_pid_map: dict[int, int] = {}

    # ------------------------------------------------------------------

    def run(self, workloads: list[ProcessWorkload]):
        """Simulate the workloads to completion and return the result."""
        from repro.engine.simulation import SimulationResult

        self._assign_ids(workloads)
        shared_pcc = None
        if self.config.pcc.shared:
            if len(workloads) > 1:
                raise ValueError(
                    "the shared-PCC design (§3.2.2) cannot attribute "
                    "candidates across processes; use per-core PCCs"
                )
            from repro.core.pcc import PromotionCandidateCache

            shared_pcc = PromotionCandidateCache(self.config.pcc)
        self.cores = [
            Core(self.config, core_id=i, shared_pcc=shared_pcc)
            for i in range(self.config.cores)
        ]
        self.pipelines = [
            TranslationPipeline(core, fast_path=self.fast_path,
                                batch=self.batch, columnar=self.columnar)
            for core in self.cores
        ]
        self.ledgers = [CycleAccounting(self.config.timing) for _ in self.cores]

        monitor = None
        if self.validate:
            from repro.validation.invariants import InvariantMonitor

            monitor = InvariantMonitor(self)
        self.monitor = monitor

        fault_path = FaultPath(self.kernel)
        with trace_span("machine.bind_threads", cat="engine"):
            scheduler = self._bind_threads(workloads, fault_path)
        registry = MetricsRegistry()
        self._register_metrics(registry)
        ticks = OsTickDriver(
            self.kernel,
            self.config.os.promote_every_accesses,
            self._tick_fn,
            registry=registry,
        )
        # Retained for post-run inspection (the validation harness
        # audits final tick accounting against kernel state).
        self.ticks = ticks

        # One observability decision per run; every hook site below
        # guards on `obs`/`tracer` being non-None, so a non-observed
        # run pays a couple of branches per quantum/tick and nothing
        # per record (see _attach_walk_observers for the per-walk hook).
        obs = RunObserver.for_run(self.observe, registry)
        self.obs = obs
        tracer = obs.tracer if obs is not None else None
        if obs is not None:
            self._attach_walk_observers(obs, ticks)

        kernel = self.kernel
        processes = kernel.processes
        pipelines = self.pipelines
        ledgers = self.ledgers
        quantum = self.thread_quantum
        drain_fault_work = kernel.drain_fault_work
        walks_by_pid = {pid: 0 for pid in processes}

        # The columnar epoch tier needs the translate binding untouched:
        # observed runs wrap it per record (walk histograms, promotion
        # lag), which the epoch pass legitimately bypasses, so an
        # observed run keeps the quantum tiers.
        use_columnar = self.columnar and obs is None

        # One progress decision per run, independent of the observer:
        # riding the observe path would demote the run off the columnar
        # tier, and progress only *reads* counters, so reported runs
        # stay bit-identical to silent ones. When enabled the loop pays
        # one clock check per scheduler round; when disabled, one
        # ``is None`` branch.
        prog = progress_for_run(total=scheduler.remaining)
        prog_total = scheduler.remaining
        prog_tier = (
            "columnar" if use_columnar
            else "batch" if self.batch
            else "fast" if self.fast_path
            else "scalar"
        )

        def report_progress(final: bool = False) -> None:
            prog.emit(
                done=prog_total - scheduler.remaining,
                accesses=ticks.total_accesses,
                ticks=len(ticks.promotion_timeline),
                promotions=ticks.promotions,
                epochs=sum(p.columnar_epochs for p in pipelines),
                tier=prog_tier,
                final=final,
            )

        with trace_span("machine.sim_loop", cat="engine",
                        policy=self.policy.value, cores=len(self.cores)):
            while scheduler.remaining > 0:
                if prog is not None and prog.due():
                    report_progress()
                if use_columnar:
                    live = [
                        slot for slot in scheduler.slots
                        if slot.live and slot.cursor < slot.length
                    ]
                    if len(live) == 1:
                        # Single runnable thread: between here and the
                        # next TLB-mutating event (the tick below) no
                        # quantum switch can interleave, so the whole
                        # remaining interval retires as one epoch.
                        slot = live[0]
                        pipeline = pipelines[slot.core_id]
                        if pipeline.columnar and slot.stream is not None:
                            ledger = ledgers[slot.core_id]
                            table = processes[slot.pid].page_table
                            cursor, accesses, cycles, walks = (
                                pipeline.run_epoch(
                                    slot,
                                    quantum,
                                    table,
                                    ticks.interval
                                    - ticks.accesses_since_tick,
                                )
                            )
                            scheduler.advance(slot, cursor)
                            ledger.charge_translation(cycles)
                            ledger.charge_accesses(accesses)
                            walks_by_pid[slot.pid] += walks
                            ticks.note(accesses)
                            huge_z, base_z, migrated = drain_fault_work()
                            ledger.charge_fault_work(huge_z, base_z, migrated)
                            if ticks.due:
                                self._run_tick(ticks, monitor, obs)
                                if monitor is not None:
                                    monitor.after_tick(ticks)
                            continue
                    elif len(live) > 1 and self._multithread_epoch(
                        live, scheduler, ticks, walks_by_pid,
                        monitor, obs
                    ):
                        continue
                for slot in scheduler.next_round():
                    pipeline = pipelines[slot.core_id]
                    ledger = ledgers[slot.core_id]
                    table = processes[slot.pid].page_table
                    if tracer is None:
                        cursor, accesses, cycles, walks = pipeline.run_quantum(
                            slot, quantum, table
                        )
                    else:
                        with tracer.span(
                            "quantum",
                            cat="engine",
                            tid=CORE_TID_BASE + slot.core_id,
                            process=slot.pid,
                        ):
                            cursor, accesses, cycles, walks = (
                                pipeline.run_quantum(slot, quantum, table)
                            )
                    scheduler.advance(slot, cursor)
                    ledger.charge_translation(cycles)
                    ledger.charge_accesses(accesses)
                    walks_by_pid[slot.pid] += walks
                    ticks.note(accesses)
                    huge_z, base_z, migrated = drain_fault_work()
                    ledger.charge_fault_work(huge_z, base_z, migrated)

                if ticks.due:
                    self._run_tick(ticks, monitor, obs)
                    if monitor is not None:
                        monitor.after_tick(ticks)

        # Final tick so trailing candidates are not lost on short runs.
        self._run_tick(ticks, monitor, obs, final=True)
        if monitor is not None:
            monitor.after_run(ticks)
        if prog is not None:
            report_progress(final=True)

        with trace_span("machine.collect", cat="engine"):
            result = self._collect(workloads, ticks, walks_by_pid)
            result.metrics = registry.export(
                meta={
                    "policy": self.policy.value,
                    "cores": len(self.cores),
                    "fast_path": self.fast_path,
                    "batch": self.batch,
                    "columnar": self.columnar,
                    "promote_every_accesses": self.config.os.promote_every_accesses,
                    "processes": sorted(processes),
                    "run_id": current_run_id(),
                }
            )
            publish_run(result.metrics)
        return result

    # ------------------------------------------------------------------
    # multi-thread columnar epochs

    def _multithread_epoch(self, live, scheduler, ticks, walks_by_pid,
                           monitor, obs) -> bool:
        """Retire one scalar round-robin span as per-core epochs.

        The scalar loop interleaves fixed quanta round-robin and checks
        the tick only at round boundaries, so between two TLB-mutating
        events every core's record stream is a deterministic function
        of the plan alone: per-core TLBs, walkers and PCCs see only
        their own slot's accesses (distinct cores required), page
        faults are globally ordered by (round, slot) — replayed exactly
        by per-window fault pre-passes — and page-table accessed bits,
        the only cross-core coupling, get one merged per-process pass
        in scalar walk order. Returns False (nothing retired) when a
        gate fails; True when the span retired as epochs or replayed
        bit-identically after a classifier decline.
        """
        if self.config.pcc.shared:
            # One PCC consumes walk admissions from every core in
            # round-interleaved order; per-slot bulk applies would
            # reorder them.
            return False
        first = self.pipelines[live[0].core_id]
        if first._plru:
            # The epoch classifier is exact-LRU-specific (see
            # run_epoch); count the decline once per span.
            first.columnar_plru_fallbacks += 1
            return False
        pipelines = self.pipelines
        seen_cores = set()
        for slot in live:
            pipeline = pipelines[slot.core_id]
            if not pipeline.columnar or slot.stream is None:
                return False
            if slot.core_id in seen_cores:
                # Two slots on one core share its TLBs; their probe
                # streams interleave mid-span and cannot be classified
                # independently.
                return False
            seen_cores.add(slot.core_id)
        ok = True
        for slot in live:
            if slot.columnar_off:
                slot.columnar_probe -= 1
                if slot.columnar_probe > 0:
                    ok = False
                else:
                    slot.columnar_off = False
        if not ok:
            return False

        # ---- plan the rounds the scalar loop would run before its
        # due-check fires: every round covers every live slot, in
        # round-robin order, under ``run_quantum``'s window rule.
        # Planning stops once the interval is covered or a slot
        # exhausts (the next scalar round would recompute the live
        # set; the outer loop re-enters and re-plans).
        quantum = self.thread_quantum
        interval_remaining = ticks.interval - ticks.accesses_since_tick
        cur = [slot.cursor for slot in live]
        ends: list[list[int]] = [[] for _ in live]
        rounds: list[list[tuple[int, int, int]]] = []
        total = 0
        while True:
            this_round = []
            for i, slot in enumerate(live):
                c = cur[i]
                cum = slot.cum
                nxt = int(np.searchsorted(cum, cum[c] + quantum,
                                          side="left"))
                if nxt > slot.length:
                    nxt = slot.length
                if nxt <= c:  # pragma: no cover - counts are >= 1
                    nxt = c + 1
                this_round.append((i, c, nxt))
                total += int(cum[nxt] - cum[c])
                cur[i] = nxt
            rounds.append(this_round)
            for i in range(len(live)):
                ends[i].append(cur[i])
            if total >= interval_remaining or any(
                cur[i] >= s.length for i, s in enumerate(live)
            ):
                break
        min_records = TranslationPipeline.MIN_EPOCH_RECORDS
        if any(cur[i] - s.cursor < min_records
               for i, s in enumerate(live)):
            return False

        processes = self.kernel.processes
        ledgers = self.ledgers
        drain = self.kernel.drain_fault_work
        tables = {slot.pid: processes[slot.pid].page_table
                  for slot in live}

        # ---- faults in exact scalar order: per (round, slot) window,
        # drained and charged to the running core like a quantum.
        for this_round in rounds:
            for i, s0, s1 in this_round:
                slot = live[i]
                pipelines[slot.core_id]._epoch_faults(
                    slot, s0, s1, tables[slot.pid]
                )
                huge_z, base_z, migrated = drain()
                ledgers[slot.core_id].charge_fault_work(
                    huge_z, base_z, migrated
                )

        # ---- classify each slot's whole span against its own core
        # (read-only; a decline replays the plan through the quantum
        # tiers instead, with identical results).
        ctxs = []
        for i, slot in enumerate(live):
            pipeline = pipelines[slot.core_id]
            if pipeline._active_slot is not slot:
                pipeline._active_slot = slot
                slot.hint_barrier = slot.cursor
            if slot.bsets is None:
                pipeline._attach_batch_views(slot)
            ctx = pipeline._epoch_classify(
                slot, slot.cursor, ends[i][-1], tables[slot.pid]
            )
            if ctx is None:
                pipeline.columnar_fallbacks += 1
                self._replay_rounds(live, rounds, scheduler, ticks,
                                    walks_by_pid, tables)
                self._after_span(ticks, monitor, obs)
                return True
            ctxs.append(ctx)

        # ---- page-table accessed bits: one merged pass per process,
        # in scalar walk order (round, then round-robin position, then
        # program order within the slot).
        by_pid: dict[int, list[int]] = {}
        for i, slot in enumerate(live):
            by_pid.setdefault(slot.pid, []).append(i)
        for pid, idxs in by_pid.items():
            table = tables[pid]
            if len(idxs) == 1:
                ctx = ctxs[idxs[0]]
                ctx.walk_pud, ctx.walk_pmd = residue.page_table_pass(
                    table, ctx.walk_vpns, ctx.walk_sizes
                )
                continue
            vpn_parts = []
            size_parts = []
            round_keys = []
            order_keys = []
            for pos, i in enumerate(idxs):
                ctx = ctxs[i]
                round_ends = np.asarray(ends[i], dtype=np.int64)
                round_keys.append(np.searchsorted(
                    round_ends, ctx.walk_ridx, side="right"
                ))
                order_keys.append(np.full(
                    ctx.walk_ridx.size, pos, dtype=np.int64
                ))
                vpn_parts.append(ctx.walk_vpns)
                size_parts.append(ctx.walk_sizes)
            vpns = np.concatenate(vpn_parts)
            sizes = np.concatenate(size_parts)
            order = np.lexsort((
                np.concatenate(order_keys), np.concatenate(round_keys)
            ))
            pud = np.empty(vpns.size, dtype=bool)
            pmd = np.empty(vpns.size, dtype=bool)
            pud[order], pmd[order] = residue.page_table_pass(
                table, vpns[order], sizes[order]
            )
            pos0 = 0
            for i in idxs:
                ctx = ctxs[i]
                nw = int(ctx.walk_vpns.size)
                ctx.walk_pud = pud[pos0:pos0 + nw]
                ctx.walk_pmd = pmd[pos0:pos0 + nw]
                pos0 += nw

        # ---- commit per slot, with the scalar loop's bookkeeping.
        for i, slot in enumerate(live):
            pipeline = pipelines[slot.core_id]
            ledger = ledgers[slot.core_id]
            cursor, accesses, cycles, walks = pipeline._epoch_finish(
                slot, ctxs[i]
            )
            scheduler.advance(slot, cursor)
            ledger.charge_translation(cycles)
            ledger.charge_accesses(accesses)
            walks_by_pid[slot.pid] += walks
            ticks.note(accesses)
            pipeline.columnar_mt_epochs += 1
        self._after_span(ticks, monitor, obs)
        return True

    def _replay_rounds(self, live, rounds, scheduler, ticks,
                       walks_by_pid, tables) -> None:
        """Replay a planned multi-thread span through the quantum
        tiers: the scalar round loop, minus the per-round due check
        (the plan already stops where the scalar loop's would fire)."""
        quantum = self.thread_quantum
        pipelines = self.pipelines
        ledgers = self.ledgers
        drain = self.kernel.drain_fault_work
        for this_round in rounds:
            for i, _s0, _s1 in this_round:
                slot = live[i]
                pipeline = pipelines[slot.core_id]
                ledger = ledgers[slot.core_id]
                cursor, accesses, cycles, walks = pipeline.run_quantum(
                    slot, quantum, tables[slot.pid]
                )
                scheduler.advance(slot, cursor)
                ledger.charge_translation(cycles)
                ledger.charge_accesses(accesses)
                walks_by_pid[slot.pid] += walks
                ticks.note(accesses)
                huge_z, base_z, migrated = drain()
                ledger.charge_fault_work(huge_z, base_z, migrated)

    def _after_span(self, ticks, monitor, obs) -> None:
        """The scalar loop's post-round due check."""
        if ticks.due:
            self._run_tick(ticks, monitor, obs)
            if monitor is not None:
                monitor.after_tick(ticks)

    # ------------------------------------------------------------------
    # observability hooks

    def _run_tick(self, ticks: OsTickDriver, monitor, obs,
                  final: bool = False):
        """One promotion interval, observed or not (due and final paths).

        Replicates the former inline sequence exactly — sync, invariant
        pre-sweep, tick, conditional (unconditional when final) memo
        invalidation — adding, only on observed runs, a pre-tick PCC/TLB
        snapshot, an ``os_tick`` span, the tick-duration histogram
        sample, and promotion-lag samples from the tick's outcome.
        """
        start_ns = time.perf_counter_ns() if obs is not None else 0
        self.sync_pipelines()
        if monitor is not None:
            monitor.before_tick()
        if obs is None:
            return self._tick_and_invalidate(ticks, final)
        self._snapshot_state(obs, ticks)
        with obs.span("os_tick", cat="os", final=final,
                      accesses=ticks.total_accesses):
            outcome = self._tick_and_invalidate(ticks, final)
        obs.note_promotions(outcome.promoted, ticks.total_accesses)
        obs.note_tick((time.perf_counter_ns() - start_ns) / 1000.0)
        return outcome

    def _tick_and_invalidate(self, ticks: OsTickDriver, final: bool):
        obs = self.obs
        stamp = self._tlb_mutation_stamp()
        if final:
            outcome = ticks.final_tick(self.cores, self.ledgers)
        else:
            outcome = ticks.tick(self.cores, self.ledgers)
        if final or self._tlb_mutation_stamp() != stamp:
            with obs.span("tick.flush", cat="os") if obs is not None \
                    else nullcontext():
                self.invalidate_fast_paths()
        return outcome

    def _attach_walk_observers(self, obs: RunObserver, ticks: OsTickDriver) -> None:
        """Swap each pipeline's translate binding for a recording wrapper.

        The wrapper delegates to the real ``Core.translate`` unchanged
        (bit-identity by construction) and, when the access missed the
        TLBs, records the walk's latency — the returned cycles net of
        the repeat-hit cycles folded into the same return — plus the
        region's first-walk stamp for promotion-lag accounting. The
        process id comes from the pipeline's active slot (set by
        ``run_quantum``), and "now" is the tick driver's retired-access
        clock at quantum granularity.
        """
        miss_level = HitLevel.MISS
        note_walk = obs.note_walk
        for pipeline in self.pipelines:
            def observed_translate(
                vpn,
                page_table,
                repeat,
                _translate=pipeline.core.translate,
                _pipeline=pipeline,
                _l1_hit=pipeline.core.config.timing.l1_tlb_hit_cycles,
            ):
                result = _translate(vpn, page_table, repeat)
                if result[1] is miss_level:
                    slot = _pipeline._active_slot
                    note_walk(
                        slot.pid if slot is not None else -1,
                        vpn >> _HUGE_SHIFT,
                        result[0] - _l1_hit * (repeat - 1),
                        ticks.total_accesses,
                    )
                return result

            pipeline._translate = observed_translate

    def _snapshot_state(self, obs: RunObserver, ticks: OsTickDriver) -> None:
        """Pre-tick top-K PCC region counts + TLB occupancy (read-only).

        Taken before the tick dumps (and, in dump-and-clear mode,
        empties) the PCCs, via the non-mutating ``ranked()`` view.
        Emitted as trace instants only, so histogram-only observers
        skip the gathering entirely.
        """
        if obs.tracer is None:
            return
        regions: list[tuple[int, int, int]] = []
        occupancy: dict[str, int] = {}
        for core in self.cores:
            pid = self._pid_for_core(core.core_id)
            if pid is not None:
                for entry in core.pcc.ranked():
                    regions.append((pid, entry.tag, entry.frequency))
            tlb = core.tlb
            for structure in (tlb.l1_base, tlb.l1_huge, tlb.l1_giga, tlb.l2):
                occupancy[structure.name] = occupancy.get(structure.name, 0) + sum(
                    len(entries) for entries in structure.sets
                )
        regions.sort(key=lambda item: (-item[2], item[0], item[1]))
        obs.snapshot(
            ticks.total_accesses,
            len(ticks.promotion_timeline),
            regions,
            occupancy,
        )

    # ------------------------------------------------------------------
    # stage helpers

    def sync_pipelines(self) -> None:
        """Flush every pipeline's batched counters into the stats bags."""
        for pipeline in self.pipelines:
            pipeline.sync()

    def invalidate_fast_paths(self) -> None:
        """Epoch-bump every pipeline after TLB state changed externally."""
        for pipeline in self.pipelines:
            pipeline.invalidate_hints()

    def _tlb_mutation_stamp(self) -> int:
        """Total TLB invalidations across every core and structure.

        Every way an OS tick can mutate TLB state behind the pipelines'
        backs — promotion/demotion shootdowns, giga shootdowns, full
        flushes — removes entries through ``TLB.invalidate``/``flush``,
        which count only entries actually present. An unchanged stamp
        across a tick therefore proves no hint was invalidated: a hint
        names a set's MRU entry, so the entry it vouches for is
        resident, and removing a resident entry always bumps a counter.
        Ticks that promote nothing (always for the NONE policy, often
        for interval policies) then keep the memo — and the batch
        path's cross-tick retirement — alive at zero risk to
        bit-identity.
        """
        total = 0
        for core in self.cores:
            tlb = core.tlb
            total += (
                tlb.l1_base.stats.invalidations
                + tlb.l1_huge.stats.invalidations
                + tlb.l1_giga.stats.invalidations
                + tlb.l2.stats.invalidations
            )
        return total

    def _assign_ids(self, workloads: list[ProcessWorkload]) -> None:
        for process in workloads:
            if process.pid < 0:
                process.pid = len(self.kernel.processes) + 1
            self.kernel.spawn(process.layout, pid=process.pid)

    def _bind_threads(
        self, workloads: list[ProcessWorkload], fault_path: FaultPath
    ) -> ThreadScheduler:
        """Pin threads to cores and build the round-robin scheduler."""
        scheduler = ThreadScheduler(self.thread_quantum)
        self._core_pid_map = {}
        cores = len(self.cores)
        next_core = 0
        stream_cache = self._stream_cache() if self.batch else None
        for process in workloads:
            seen = fault_path.seen_for(process.pid)
            fault = fault_path.handler_for(process.pid)
            bulk_fault = (
                fault_path.bulk_handler_for(process.pid)
                if self.columnar else None
            )
            for thread in process.threads:
                core = thread.core
                if core < 0:
                    core = next_core % cores
                    next_core += 1
                if core >= cores:
                    raise ValueError(
                        f"thread pinned to core {core} but system has "
                        f"{cores} cores"
                    )
                thread.core = core
                self._core_pid_map[core] = process.pid
                stream = None
                if self.batch:
                    stream = thread.columnar_stream(
                        cache=stream_cache, slot=len(scheduler.slots)
                    )
                scheduler.add(
                    thread.trace.vpns.tolist(),
                    thread.trace.counts.tolist(),
                    process.pid,
                    core,
                    seen,
                    fault,
                    stream=stream,
                    bulk_fault=bulk_fault,
                )
        return scheduler

    def _stream_cache(self):
        """Trace cache for columnar encodings, or None.

        Cached content-addressed only when the environment explicitly
        points ``REPRO_TRACE_CACHE`` at a directory — an unset variable
        must not make plain simulation runs write to the default cache
        location behind the user's back.
        """
        if not self.columnar:
            return None
        import os

        from repro.trace.cache import (
            CACHE_DIR_ENV,
            TraceCache,
            cache_dir_from_env,
        )

        if not os.environ.get(CACHE_DIR_ENV, "").strip():
            return None
        directory = cache_dir_from_env()
        if directory is None:
            return None
        return TraceCache(directory)

    def _pid_for_core(self, core_id: int) -> int | None:
        """Process whose thread runs on ``core_id`` (static pinning)."""
        return self._core_pid_map.get(core_id)

    def _register_metrics(self, registry: MetricsRegistry) -> None:
        """Register every stats bag of this machine into the registry."""
        for i, (core, pipeline, ledger) in enumerate(
            zip(self.cores, self.pipelines, self.ledgers)
        ):
            prefix = f"core{i}"

            def provider(core=core, pipeline=pipeline, ledger=ledger,
                         prefix=prefix) -> dict[str, int]:
                values = core.stats.as_metrics(prefix)
                tlb = core.tlb
                for structure in (tlb.l1_base, tlb.l1_huge, tlb.l1_giga,
                                  tlb.l2):
                    values.update(
                        structure.stats.as_metrics(
                            f"{prefix}.tlb.{structure.name}"
                        )
                    )
                values.update(ledger.as_metrics(f"{prefix}.cycles"))
                values.update(pipeline.as_metrics(f"{prefix}.fastpath"))
                return values

            registry.register(provider)
        registry.register(self.kernel.metrics)

    # ------------------------------------------------------------------
    # the promotion interval

    def promotion_tick(self, cores, ledgers):
        """Fig. 4: dump PCCs, let the kernel promote, apply shootdowns."""
        obs = self.obs

        def stage(name: str):
            return obs.span(name, cat="os") if obs is not None else nullcontext()

        records: list[CandidateRecord] = []
        giga_records: list[CandidateRecord] = []
        if self.policy is HugePagePolicy.PCC:
            # §3.3 offers two read styles: the periodic dump-and-clear
            # (Fig. 4) or an on-demand snapshot that leaves counters
            # accumulating across intervals.
            snapshot = self.kernel.params.pcc_dump_mode == "snapshot"
            with stage("tick.scan"):
                for core in cores:
                    pid = self._pid_for_core(core.core_id)
                    if pid is None:
                        continue
                    entries = (
                        core.pcc.ranked() if snapshot else core.pcc.flush()
                    )
                    self.dump_region.write(entries, pid=pid, core=core.core_id)
                    if core.pcc_1gb is not None:
                        giga_entries = (
                            core.pcc_1gb.ranked()
                            if snapshot
                            else core.pcc_1gb.flush()
                        )
                        self.dump_region.write(
                            giga_entries,
                            pid=pid,
                            core=core.core_id,
                            page_size=PageSize.GIGA,
                        )
            with stage("tick.rank"):
                all_records = self.dump_region.read_all()
                records = [
                    r for r in all_records if r.page_size is PageSize.HUGE
                ]
                giga_records = [
                    r for r in all_records if r.page_size is PageSize.GIGA
                ]

        def on_shootdown(pid: int, prefix: int) -> None:
            for core in cores:
                core.shootdown(prefix)

        def on_giga_shootdown(pid: int, giga: int) -> None:
            # a gigabyte of translations is invalidated: a full flush is
            # the simple, conservative hardware response
            for core in cores:
                core.tlb.flush()
                core.walker.flush_pwc()
                if core.pcc_1gb is not None:
                    core.pcc_1gb.invalidate(giga)

        with stage("tick.promote"):
            outcome = self.kernel.promotion_tick(
                pcc_records=records,
                giga_records=giga_records,
                on_shootdown=on_shootdown,
                on_giga_shootdown=on_giga_shootdown,
            )
        work = len(outcome.promoted) + len(outcome.demoted)
        if work and ledgers:
            # promotion runs on one kernel thread; shootdowns hit all cores
            ledgers[0].charge_promotions(
                promotions=len(outcome.promoted),
                shootdown_broadcasts=outcome.shootdowns,
                migrated_pages=outcome.pages_migrated,
                cores=len(ledgers),
            )
        return outcome

    # ------------------------------------------------------------------
    # result collection

    def _collect(self, workloads, ticks: OsTickDriver, walks_by_pid):
        from repro.engine.simulation import ProcessResult, SimulationResult

        cores = self.cores
        per_core = [RuntimeBreakdown.of(ledger) for ledger in self.ledgers]
        serialization = 0
        if self.serialization_cycles_per_access > 0:
            total_acc = sum(core.stats.accesses for core in cores)
            serialization = int(total_acc * self.serialization_cycles_per_access)
        wall = max((b.total for b in per_core), default=0) + serialization

        processes = []
        for workload in workloads:
            table = self.kernel.processes[workload.pid].page_table
            processes.append(
                ProcessResult(
                    pid=workload.pid,
                    name=workload.name,
                    accesses=workload.total_accesses,
                    # Walks are attributed per-pid as quanta retire, so
                    # processes sharing a core (or running unpinned) do
                    # not inherit each other's walks.
                    walks=walks_by_pid.get(workload.pid, 0),
                    huge_pages=len(table.promoted_regions()),
                    footprint_regions=workload.footprint_huge_regions(),
                )
            )
        return SimulationResult(
            policy=self.policy.value,
            total_cycles=wall,
            per_core=per_core,
            processes=processes,
            accesses=sum(core.stats.accesses for core in cores),
            walks=sum(core.stats.walks for core in cores),
            l1_hits=sum(core.stats.l1_hits for core in cores),
            l2_hits=sum(core.stats.l2_hits for core in cores),
            promotions=ticks.promotions,
            demotions=ticks.demotions,
            promotion_timeline=ticks.promotion_timeline,
            huge_page_timeline=ticks.huge_page_timeline,
        )
