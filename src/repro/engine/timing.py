"""Cycle accounting and speedup computation.

The model separates each access into a workload-constant base cost
(compute + cache hierarchy) and a translation cost (TLB-hit penalty or
page-table-walk latency from the walker). Kernel-side work — huge/base
page zeroing at fault time, promotion copies, TLB shootdown broadcasts,
and compaction migrations — is charged where it happens. Speedup of a
configuration is then the ratio of baseline cycles to its cycles, which
is exactly how the paper derives its ratios from wall-clock runs: walk
cycles removed translate into runtime saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import TimingConfig


@dataclass
class CycleAccounting:
    """Mutable cycle ledger for one core (or one aggregated run)."""

    config: TimingConfig
    base_cycles: int = 0
    translation_cycles: int = 0
    kernel_cycles: int = 0
    #: serialization overhead added in multithread runs
    serialization_cycles: int = 0

    def charge_accesses(self, count: int) -> None:
        """Base (non-translation) cost of ``count`` memory accesses."""
        self.base_cycles += count * self.config.base_cycles_per_access

    def charge_translation(self, cycles: int) -> None:
        """TLB-hit penalties and page-table-walk latency."""
        self.translation_cycles += cycles

    def charge_fault_work(
        self, huge_zeroes: int, base_zeroes: int, migrated_pages: int
    ) -> None:
        """Fault-path kernel work (greedy THP's 512x zeroing cost)."""
        self.kernel_cycles += (
            huge_zeroes * self.config.huge_zero_cycles
            + base_zeroes * self.config.base_zero_cycles
            + migrated_pages * self.config.compaction_page_cycles
        )

    def charge_promotions(
        self, promotions: int, shootdown_broadcasts: int, migrated_pages: int,
        cores: int = 1,
    ) -> None:
        """Interval promotion work: copies + shootdowns on every core."""
        self.kernel_cycles += (
            promotions * self.config.promotion_cycles
            + shootdown_broadcasts * self.config.shootdown_cycles * cores
            + migrated_pages * self.config.compaction_page_cycles
        )

    def charge_serialization(self, cycles: int) -> None:
        """Multithread atomic-operation serialization (§5.2)."""
        self.serialization_cycles += cycles

    @property
    def total_cycles(self) -> int:
        """Sum of all charge categories."""
        return (
            self.base_cycles
            + self.translation_cycles
            + self.kernel_cycles
            + self.serialization_cycles
        )

    def as_metrics(self, prefix: str) -> dict[str, int]:
        """Counter readings for the metrics registry, under ``prefix``."""
        return {
            f"{prefix}.base_cycles": self.base_cycles,
            f"{prefix}.translation_cycles": self.translation_cycles,
            f"{prefix}.kernel_cycles": self.kernel_cycles,
            f"{prefix}.serialization_cycles": self.serialization_cycles,
        }

    def merge(self, other: "CycleAccounting") -> None:
        """Fold another ledger into this one (aggregate reporting)."""
        self.base_cycles += other.base_cycles
        self.translation_cycles += other.translation_cycles
        self.kernel_cycles += other.kernel_cycles
        self.serialization_cycles += other.serialization_cycles


def speedup(baseline_cycles: int, cycles: int) -> float:
    """Runtime speedup of a configuration against the 4KB baseline."""
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    return baseline_cycles / cycles


@dataclass
class RuntimeBreakdown:
    """Where a run's cycles went, for reports and sanity tests."""

    base: int
    translation: int
    kernel: int
    serialization: int = 0

    @classmethod
    def of(cls, accounting: CycleAccounting) -> "RuntimeBreakdown":
        """Freeze a ledger into an immutable breakdown."""
        return cls(
            base=accounting.base_cycles,
            translation=accounting.translation_cycles,
            kernel=accounting.kernel_cycles,
            serialization=accounting.serialization_cycles,
        )

    @property
    def total(self) -> int:
        """All cycles of the run."""
        return self.base + self.translation + self.kernel + self.serialization

    @property
    def translation_share(self) -> float:
        """Fraction of runtime spent translating (the PCC's headroom)."""
        return self.translation / self.total if self.total else 0.0
