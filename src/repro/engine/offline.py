"""The paper's two-step evaluation methodology (§4).

Step one runs the TLB+PCC simulation *offline* with no promotions
applied, recording which candidates the PCC would hand the OS at each
promotion interval (a :class:`PromotionSchedule`, the paper's trace
file of candidate addresses and promotion times). Step two replays the
workload while a background "promotion thread" applies the scheduled
promotions at the recorded points — emulating real hardware feeding a
real kernel.

On deterministic traces the online engine and this two-step pipeline
promote similar region sets; tests assert the agreement on small
workloads, validating that the online loop faithfully represents the
paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.core.dump import CandidateRecord
from repro.engine.cpu import Core
from repro.engine.simulation import SimulationResult, Simulator
from repro.engine.system import ProcessWorkload
from repro.os.kernel import HugePagePolicy, KernelParams, SimulatedKernel
from repro.vm.address import BASE_PAGE_SHIFT


@dataclass
class ScheduledPromotion:
    """One candidate with the access-time at which the OS receives it."""

    at_access: int
    record: CandidateRecord


@dataclass
class PromotionSchedule:
    """Ordered promotion-candidate trace produced by the offline step."""

    entries: list[ScheduledPromotion] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def regions(self) -> list[int]:
        """Distinct candidate region prefixes, in first-seen order."""
        seen: set[int] = set()
        ordered: list[int] = []
        for entry in self.entries:
            if entry.record.tag not in seen:
                seen.add(entry.record.tag)
                ordered.append(entry.record.tag)
        return ordered


def record_candidates(
    workload: ProcessWorkload, config: SystemConfig
) -> PromotionSchedule:
    """Step one: offline TLB+PCC simulation, promotions only recorded.

    The PCC is flushed at every interval exactly as the online loop
    does, but page tables never change — candidates are written to the
    schedule "as if they have been promoted" (the paper removes them
    from the PCC at this point, which the flush accomplishes).
    """
    kernel = SimulatedKernel(config, policy=HugePagePolicy.NONE)
    process = kernel.spawn(workload.layout, pid=1)
    core = Core(config)
    schedule = PromotionSchedule()
    interval = config.os.promote_every_accesses
    done = 0
    since_tick = 0
    for thread in workload.threads:
        vpns = thread.trace.vpns
        counts = thread.trace.counts
        for i in range(len(vpns)):
            vpn = int(vpns[i])
            repeat = int(counts[i])
            vaddr = vpn << BASE_PAGE_SHIFT
            if not process.page_table.is_mapped(vaddr):
                kernel.handle_fault(1, vaddr)
            core.access_page(vpn, process.page_table, repeat=repeat)
            done += repeat
            since_tick += repeat
            if since_tick >= interval:
                since_tick = 0
                _drain_pcc(core, schedule, done)
    _drain_pcc(core, schedule, done)
    return schedule


def _drain_pcc(core: Core, schedule: PromotionSchedule, at_access: int) -> None:
    for entry in core.pcc.flush():
        schedule.entries.append(
            ScheduledPromotion(
                at_access=at_access,
                record=CandidateRecord(
                    pid=1, core=0, tag=entry.tag, frequency=entry.frequency
                ),
            )
        )


def replay_with_schedule(
    workload: ProcessWorkload,
    schedule: PromotionSchedule,
    config: SystemConfig,
    fragmentation: float = 0.0,
    budget_regions: int | None = None,
) -> SimulationResult:
    """Step two: re-run the workload applying scheduled promotions.

    The replay uses the PCC-policy kernel but feeds it the *recorded*
    candidates at each interval instead of live PCC dumps — the
    simulation equivalent of the paper's userspace promotion thread
    reading the candidate address trace.
    """
    params = KernelParams(
        regions_to_promote=config.os.regions_to_promote,
        promotion_budget_regions=budget_regions,
    )
    simulator = _ScheduledSimulator(
        config,
        schedule=schedule,
        params=params,
        fragmentation=fragmentation,
    )
    return simulator.run([workload])


class _ScheduledSimulator(Simulator):
    """Simulator whose promotion ticks consume a recorded schedule."""

    def __init__(self, config, schedule: PromotionSchedule, **kwargs) -> None:
        super().__init__(config, policy=HugePagePolicy.PCC, **kwargs)
        self._schedule = sorted(schedule.entries, key=lambda e: e.at_access)
        self._next_entry = 0
        self._accesses_seen = 0

    def _promotion_tick(self, cores, ledgers):
        # Candidates become visible once their recorded time has passed.
        self._accesses_seen = sum(core.stats.accesses for core in cores)
        records: list[CandidateRecord] = []
        while (
            self._next_entry < len(self._schedule)
            and self._schedule[self._next_entry].at_access <= self._accesses_seen
        ):
            records.append(self._schedule[self._next_entry].record)
            self._next_entry += 1
        # Hardware PCCs still get flushed (their dumps are discarded, the
        # schedule stands in for them) so state matches the online loop.
        for core in cores:
            core.pcc.flush()

        def on_shootdown(pid: int, prefix: int) -> None:
            for core in cores:
                core.shootdown(prefix)

        outcome = self.kernel.promotion_tick(
            pcc_records=records, on_shootdown=on_shootdown
        )
        if (outcome.promoted or outcome.demoted) and ledgers:
            ledgers[0].charge_promotions(
                promotions=len(outcome.promoted),
                shootdown_broadcasts=outcome.shootdowns,
                migrated_pages=outcome.pages_migrated,
                cores=len(ledgers),
            )
        return outcome
