"""Unified metrics bus for the simulation engine.

Every statistics bag in the system (per-TLB :class:`~repro.tlb.tlb.TLBStats`,
per-core :class:`~repro.engine.cpu.CoreStats`, the cycle ledgers, kernel
fault/promotion counters, and the translation fast path) registers into one
:class:`MetricsRegistry` per run. The registry offers:

- named monotone :class:`Counter` objects for ad-hoc instrumentation,
- provider registration for existing counter bags (zero hot-path cost:
  providers are only read at snapshot time),
- ``snapshot()`` / ``delta()`` semantics for before/after comparisons,
- per-interval ``sample()`` records aligned with the OS promotion ticks,
- a stable-schema JSON export (``repro.metrics/v1``) surfaced as
  ``SimulationResult.metrics`` and written by
  ``python -m repro <experiment> --metrics-out FILE``.

The CLI/benchmark side uses :func:`collecting` to gather the per-run
exports of every simulation executed inside a ``with`` block.
"""

from repro.metrics.collector import (
    MetricsCollector,
    collecting,
    publish_run,
)
from repro.metrics.registry import (
    SCHEMA,
    Counter,
    MetricsRegistry,
)

__all__ = [
    "SCHEMA",
    "Counter",
    "MetricsRegistry",
    "MetricsCollector",
    "collecting",
    "publish_run",
]
