"""Session-level collection of per-run metrics exports.

A :class:`MetricsCollector` gathers the export of every simulation run
executed while it is active (the engine calls :func:`publish_run` at
the end of each run). The CLI's ``--metrics-out`` and the benchmark
harness both wrap execution in :func:`collecting` and write the
aggregate file afterwards.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path

from repro.metrics.registry import SCHEMA
from repro.obs.runid import current_run_id

#: Stack of active collectors (nested ``collecting()`` blocks all receive
#: published runs; normally there is zero or one).
_ACTIVE: list["MetricsCollector"] = []


class MetricsCollector:
    """Accumulates the per-run metrics exports of many simulations."""

    def __init__(self) -> None:
        self.runs: list[dict] = []

    def publish(self, run_export: dict) -> None:
        """Record one run's :meth:`MetricsRegistry.export` dict."""
        self.runs.append(run_export)

    def export(self) -> dict:
        """Aggregate document: schema header, run id, all collected runs.

        The top-level ``run_id`` names the *invocation* (one CLI call);
        it matches the ``run_id`` each per-run export carries in its
        meta, plus journal shards, trace files, and structured logs.
        """
        return {"schema": SCHEMA, "run_id": current_run_id(), "runs": list(self.runs)}

    def write_json(self, path: str | Path) -> Path:
        """Write the aggregate export to ``path``; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.export(), indent=2, sort_keys=True))
        return path


@contextmanager
def collecting():
    """Collect every simulation run's metrics inside the ``with`` block."""
    collector = MetricsCollector()
    _ACTIVE.append(collector)
    try:
        yield collector
    finally:
        _ACTIVE.remove(collector)


def publish_run(run_export: dict) -> None:
    """Hand one run's export to every active collector (no-op if none)."""
    for collector in _ACTIVE:
        collector.publish(run_export)
