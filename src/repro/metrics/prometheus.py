"""Prometheus text exposition v0.0.4: rendering and a validating parser.

:func:`render` turns the repro metric surfaces — monotone counters from
the resilience bus, point-in-time gauges from the serving daemon, the
log-bucketed :class:`~repro.obs.histo.Histogram` distributions, and the
windowed per-second rates — into the plain-text format every Prometheus
scraper (and ``promtool``) understands, with no client library.

Histograms translate natively: our buckets are half-open geometric
intervals with fixed boundaries, so the cumulative ``_bucket{le="hi"}``
series is a running sum over the sparse buckets in index order, the
underflow bucket (samples ``<= 0``) becomes ``le="0"``, and ``+Inf``
closes the series at the total count — exactly the invariants
:func:`parse_exposition` checks. Dotted repro names map to the
Prometheus grammar by s/[.-]/_/ under a ``repro_`` namespace prefix.

:func:`parse_exposition` is the consumer-side half: a strict parser
used by ``repro top``, the serve load harness, and CI to prove the
endpoint emits well-formed exposition (sample syntax, label escaping,
bucket monotonicity, ``+Inf`` == ``_count``) rather than merely
200-OK text.
"""

from __future__ import annotations

import math
import re

from repro.obs.histo import _UNDERFLOW, Histogram, bucket_bounds

#: Namespace prefix for every rendered metric family.
PREFIX = "repro_"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def metric_name(name: str) -> str:
    """Map a dotted repro metric name onto the Prometheus grammar."""
    clean = re.sub(r"[^a-zA-Z0-9_:]", "_", name.replace(".", "_"))
    if not clean.startswith(PREFIX):
        clean = PREFIX + clean
    return clean


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _labels(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape(val)}"' for key, val in labels.items())
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render(
    counters: dict[str, int] | None = None,
    gauges: dict | None = None,
    histograms: dict[str, Histogram] | None = None,
    rates: dict[str, dict[str, float]] | None = None,
    info: dict[str, str] | None = None,
) -> str:
    """One scrape body. All sections optional; families sorted by name.

    ``counters`` get the ``_total`` suffix and ``counter`` type;
    ``gauges`` map name → value, or name → list of ``(labels, value)``
    pairs for labeled series (breaker state one-hots, per-tenant queue
    depths); ``histograms`` render as native cumulative ``_bucket``
    series; ``rates`` is ``{window: {counter: per_second}}`` from the
    windowed aggregator, rendered as ``*_per_second{window="..."}``
    gauges; ``info`` becomes the conventional always-1 info gauge
    carrying identity labels (run id, version).
    """
    lines: list[str] = []

    if info:
        name = PREFIX + "serve_info"
        lines.append(f"# HELP {name} Serving daemon identity labels.")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{_labels(info)} 1")

    for raw in sorted(counters or {}):
        name = metric_name(raw) + "_total"
        lines.append(f"# HELP {name} Monotone counter {raw}.")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(counters[raw])}")

    for raw in sorted(gauges or {}):
        value = gauges[raw]
        name = metric_name(raw)
        lines.append(f"# HELP {name} Gauge {raw}.")
        lines.append(f"# TYPE {name} gauge")
        if isinstance(value, list):
            for labels, point in value:
                lines.append(f"{name}{_labels(labels)} {_fmt(point)}")
        else:
            lines.append(f"{name} {_fmt(value)}")

    if rates:
        seen: dict[str, list[str]] = {}
        for window in rates:
            for raw, per_second in rates[window].items():
                name = metric_name(raw) + "_per_second"
                seen.setdefault(name, []).append(
                    f'{name}{{window="{window}"}} {_fmt(per_second)}'
                )
        for name in sorted(seen):
            lines.append(f"# HELP {name} Trailing-window event rate.")
            lines.append(f"# TYPE {name} gauge")
            lines.extend(seen[name])

    for raw in sorted(histograms or {}):
        histogram = histograms[raw]
        name = metric_name(raw)
        unit = f" ({histogram.unit})" if histogram.unit else ""
        lines.append(f"# HELP {name} Distribution {raw}{unit}.")
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for index in sorted(histogram.counts):
            cumulative += histogram.counts[index]
            le = "0" if index == _UNDERFLOW else _fmt(bucket_bounds(index)[1])
            lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f'{name}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{name}_sum {_fmt(histogram.total)}")
        lines.append(f"{name}_count {histogram.count}")

    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# validating parser

def _parse_value(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    return float(token)


def parse_exposition(text: str) -> dict[str, dict]:
    """Parse a scrape body; raise ``ValueError`` on any malformation.

    Returns ``{family: {"type": ..., "help": ..., "samples":
    [(name, labels, value), ...]}}`` where histogram samples (bucket /
    sum / count) group under their base family name. Beyond syntax,
    enforces the histogram contract: bucket counts non-decreasing in
    ``le`` order, a ``+Inf`` bucket present and equal to ``_count``.
    """
    families: dict[str, dict] = {}

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            base = sample_name.removesuffix(suffix)
            if base != sample_name and base in families:
                return base
        return sample_name

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: malformed HELP")
            name = parts[2]
            families.setdefault(name, {"type": None, "help": None, "samples": []})
            families[name]["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            family = name.removesuffix("_total") if kind == "counter" else name
            if name not in families and family in families:
                name = family
            families.setdefault(name, {"type": None, "help": None, "samples": []})
            families[name]["type"] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line.strip())
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        sample_name = match.group("name")
        if not _NAME_OK.match(sample_name):
            raise ValueError(f"line {lineno}: bad metric name {sample_name!r}")
        raw_labels = match.group("labels")
        labels: dict[str, str] = {}
        if raw_labels:
            consumed = 0
            for found in _LABEL.finditer(raw_labels):
                labels[found.group(1)] = (
                    found.group(2)
                    .replace(r"\n", "\n")
                    .replace(r"\"", '"')
                    .replace(r"\\", "\\")
                )
                consumed += len(found.group(0))
            stripped = re.sub(r"[,\s]", "", raw_labels)
            parsed = re.sub(r"[,\s]", "", "".join(
                found.group(0) for found in _LABEL.finditer(raw_labels)
            ))
            if stripped != parsed:
                raise ValueError(f"line {lineno}: malformed labels {raw_labels!r}")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad value {match.group('value')!r}"
            ) from None
        base = None
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            candidate = sample_name.removesuffix(suffix)
            if candidate != sample_name and candidate in families:
                base = candidate
                break
        if base is None:
            if sample_name in families:
                base = sample_name
            else:
                raise ValueError(
                    f"line {lineno}: sample {sample_name!r} has no TYPE"
                )
        families[base]["samples"].append((sample_name, labels, value))

    for name, family in families.items():
        if family["type"] == "histogram":
            buckets = [
                (labels.get("le"), value)
                for sample_name, labels, value in family["samples"]
                if sample_name == name + "_bucket"
            ]
            if not buckets:
                raise ValueError(f"histogram {name}: no buckets")
            if buckets[-1][0] != "+Inf":
                raise ValueError(f"histogram {name}: missing +Inf bucket")
            previous = -math.inf
            for le, value in buckets:
                if le is None:
                    raise ValueError(f"histogram {name}: bucket without le")
                if value < previous:
                    raise ValueError(
                        f"histogram {name}: bucket counts decrease at le={le}"
                    )
                previous = value
            counts = [
                value
                for sample_name, _labels, value in family["samples"]
                if sample_name == name + "_count"
            ]
            if not counts or counts[0] != buckets[-1][1]:
                raise ValueError(f"histogram {name}: _count != +Inf bucket")
    return families
