"""Central metrics registry: named counters, providers, samples, export.

Counter values are plain ints; names are dotted paths
(``core0.tlb.L1-4K.hits``). The export schema is versioned and stable:
for a fixed machine configuration and policy, two runs produce the same
key set, and every counter is monotone over the run's interval samples.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from repro.obs.histo import Histogram

#: Versioned schema identifier written into every export.
SCHEMA = "repro.metrics/v1"


class Counter:
    """One named monotone counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increment by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative add {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class MetricsRegistry:
    """Registry of counters and counter providers for one run.

    Providers are zero-argument callables returning ``{name: int}``;
    they are invoked only at snapshot/sample time, so registering an
    existing stats object costs nothing on the simulation hot path.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._providers: list[Callable[[], dict[str, int]]] = []
        self._samples: list[dict] = []
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # registration

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def register(self, provider: Callable[[], dict[str, int]]) -> None:
        """Register a provider of ``{name: value}`` counter readings."""
        self._providers.append(provider)

    def histogram(self, name: str, unit: str = "") -> Histogram:
        """Get or create the named distribution.

        Histograms land in the export's ``distributions`` section; the
        section is always present (``{}`` when nothing recorded) so the
        v1 schema stays uniform whether or not a run was observed.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, unit=unit)
        return histogram

    def histograms(self) -> dict[str, Histogram]:
        """Live view of every registered distribution, by name.

        Read-only by convention: the windowed aggregator and the
        Prometheus renderer walk the live objects rather than paying
        an ``as_dict`` round trip per scrape.
        """
        return self._histograms

    # ------------------------------------------------------------------
    # reading

    def snapshot(self) -> dict[str, int]:
        """Current value of every counter, sorted by name."""
        values: dict[str, int] = {c.name: c.value for c in self._counters.values()}
        for provider in self._providers:
            values.update(provider())
        return dict(sorted(values.items()))

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Per-counter difference between now and a prior snapshot.

        Counters absent from ``before`` are treated as 0 then.
        """
        now = self.snapshot()
        return {name: value - before.get(name, 0) for name, value in now.items()}

    # ------------------------------------------------------------------
    # interval sampling

    def sample(self, at: int) -> None:
        """Record a full snapshot at position ``at`` (accesses done).

        The engine samples at every OS promotion tick, so sample ``at``
        markers align 1:1 with ``SimulationResult.promotion_timeline``.
        """
        self._samples.append({"at": at, "counters": self.snapshot()})

    @property
    def samples(self) -> list[dict]:
        """Interval samples recorded so far."""
        return self._samples

    # ------------------------------------------------------------------
    # export

    def export(self, meta: dict | None = None) -> dict:
        """Stable-schema dict: counters, interval samples, distributions.

        ``distributions`` is ``{}`` for a non-observed run (no
        histograms were created), keeping the key set uniform.
        """
        return {
            "schema": SCHEMA,
            "meta": dict(meta or {}),
            "counters": self.snapshot(),
            "samples": list(self._samples),
            "distributions": {
                name: histogram.as_dict()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def write_json(self, path: str | Path, meta: dict | None = None) -> Path:
        """Write :meth:`export` to ``path`` as JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.export(meta), indent=2, sort_keys=True))
        return path
