"""The ``repro serve`` asyncio HTTP/JSON front end.

Stdlib-only: one :func:`asyncio.start_server` loop parses a minimal
HTTP/1.1 subset (request line, headers, ``Content-Length`` bodies,
keep-alive) and routes to JSON handlers. All admission, breaker, and
job-registry state is confined to the event loop; only the simulation
itself runs off-loop, in ``asyncio.to_thread`` executor slots.

Endpoints::

    POST /v1/jobs             submit a job (202, 200 if duplicate id,
                              400 invalid, 429 saturated + Retry-After,
                              503 draining/fault)
    GET  /v1/jobs/<id>        response envelope for one job
    GET  /v1/jobs/<id>/events live SSE stream: state transitions,
                              progress snapshots, degradation, breaker
                              (Last-Event-ID resumes after reconnect)
    GET  /v1/jobs/<id>/spans  the job's merged span slice from the
                              active tracer (empty + note when off)
    GET  /v1/events           broadcast SSE stream over every job
    GET  /v1/jobs             registry summary (states, queue, tenants)
    GET  /healthz             liveness (always 200 while the loop runs)
    GET  /readyz              readiness (503 while draining)
    GET  /metrics             Prometheus text exposition v0.0.4
    GET  /v1/metrics          JSON counters (deprecated alias; prefer
                              /metrics)
    POST /v1/drain            stop accepting; exit once queue drains

Live telemetry: the daemon advertises a progress spool
(``REPRO_PROGRESS_SPOOL`` under the state directory) so every engine
run — in-process executor threads and fan-out worker processes alike —
appends ``repro.progress/v1`` snapshots there; a loop task tails the
spool and republishes each snapshot as an SSE ``progress`` event on
its job's channel. A second task samples the resilience bus into a
:class:`~repro.obs.window.WindowedAggregator` so ``/metrics`` and
``/v1/metrics`` report trailing 10s/1m/5m rates, not just monotone
totals.

Crash safety: a job is journaled (``JobStore.save``) *before* its 202
is written, and re-journaled at every transition. ``kill -9`` the
server at any point; on restart :meth:`SimulationServer.recover`
requeues every non-terminal job, and the content-addressed results
journal makes the re-execution skip all finished work — zero lost,
zero duplicated.

Chaos hooks: the ``serve.accept``, ``serve.dispatch``, and
``serve.result.publish`` fault sites extend the ``REPRO_FAULTS``
grammar into the serving path. A fault at accept surfaces as a
structured 503; a fault at dispatch or publish requeues the job
through the same at-least-once machinery a crash exercises.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from dataclasses import dataclass
from pathlib import Path

from repro.metrics.prometheus import render as render_prometheus
from repro.obs.log import get_logger, log_event
from repro.obs.progress import SpoolTailer, disable_spool, enable_spool
from repro.obs.runid import current_run_id
from repro.obs.tracer import active_tracer, span
from repro.obs.window import WindowedAggregator
from repro.resilience import bus
from repro.resilience.faults import InjectedFault, fault_point
from repro.resilience.journal import RunJournal
from repro.serve import lifecycle
from repro.serve.admission import AdmissionController
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, SERIAL_TAG, CircuitBreaker
from repro.serve.events import (
    BROADCAST,
    EventBroker,
    format_comment,
    format_event,
)
from repro.serve.lifecycle import (
    MAX_JOB_ATTEMPTS,
    Job,
    JobDeadlineExceeded,
    JobExecutionError,
    JobStore,
    execute_job,
    now_ms,
)
from repro.serve.protocol import SERVE_SCHEMA, JobRequest, RequestError, envelope

_LOG = get_logger("serve.server")

#: Environment default for the service state directory.
STATE_DIR_ENV = "REPRO_SERVE_STATE"

#: Seconds an idle keep-alive connection may sit before we close it.
_IDLE_TIMEOUT = 30.0

#: Largest request body we will read (a full sweep spec is ~KBs).
_MAX_BODY = 1 << 20

#: Seconds between SSE keep-alive comment frames on an idle stream.
_SSE_HEARTBEAT_S = 10.0

#: Seconds between progress-spool polls (snapshot-to-SSE latency cap).
_PROGRESS_POLL_S = 0.2

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


def default_state_dir() -> Path:
    """Service state location: ``$REPRO_SERVE_STATE`` or the user cache."""
    import os

    env = os.environ.get(STATE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-serve"


@dataclass
class ServeConfig:
    """Everything ``repro serve`` lets an operator turn."""

    host: str = "127.0.0.1"
    port: int = 8023
    state_dir: Path | str | None = None
    queue_limit: int = 256
    tenant_quota: int = 64
    #: concurrent executor slots (jobs running simulations at once)
    executors: int = 2
    #: ceiling on a request's ``jobs`` fan-out width
    max_width: int = 2
    breaker_trip_after: int = 3
    breaker_cooldown_s: float = 30.0

    def resolved_state_dir(self) -> Path:
        return Path(self.state_dir) if self.state_dir else default_state_dir()


class SimulationServer:
    """One serving instance: registry, queue, breaker, executors."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        state = config.resolved_state_dir()
        self.store = JobStore(state / "jobs")
        self.results_journal = RunJournal(state / "results")
        self.admission = AdmissionController(
            queue_limit=config.queue_limit,
            tenant_quota=config.tenant_quota,
        )
        self.breaker = CircuitBreaker(
            trip_after=config.breaker_trip_after,
            cooldown_s=config.breaker_cooldown_s,
        )
        self.jobs: dict[str, Job] = {}
        self.running: set[str] = set()
        self.accepting = True
        self.port: int | None = None
        self.started_ms = now_ms()
        self._wake: asyncio.Event | None = None
        self._closed: asyncio.Event | None = None
        self._connections: set = set()
        self._request_wall = bus.histogram("serve.request_wall_us", unit="us")
        self._job_wall = bus.histogram("serve.job_wall_us", unit="us")
        self._queue_wait = bus.histogram("serve.queue_wait_us", unit="us")
        # live telemetry plane: SSE broker, progress spool tailer, and
        # the sliding-window aggregator behind /metrics rates
        self.broker = EventBroker()
        self.window = WindowedAggregator()
        self.progress_spool = state / "progress"
        self.latest_progress: dict[str, dict] = {}
        self._tailer = SpoolTailer(self.progress_spool)
        self._telemetry_tasks: list = []

    # ------------------------------------------------------------------
    # lifecycle

    def recover(self) -> int:
        """Reload journaled jobs; requeue the unfinished ones."""
        unfinished, finished = self.store.recover()
        for job in finished:
            self.jobs[job.id] = job
        for job in reversed(unfinished):
            # reversed + requeue-at-front preserves submission order
            self.jobs[job.id] = job
            job.state = lifecycle.QUEUED
            self.admission.requeue(job)
            bus.counter("serve.recovered").add()
        if unfinished:
            log_event(
                _LOG,
                "recovered unfinished jobs from the journal",
                recovered=len(unfinished),
                finished=len(finished),
            )
        return len(unfinished)

    async def serve_forever(self) -> None:
        """Bind, recover, run executors, and serve until drained."""
        self._wake = asyncio.Event()
        self._closed = asyncio.Event()
        self.broker.bind(asyncio.get_running_loop())
        enable_spool(self.progress_spool)
        recovered = self.recover()
        if recovered:
            self._wake.set()
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        print(
            f"repro-serve: listening on {self.config.host}:{self.port} "
            f"(run {current_run_id()}, {recovered} jobs recovered)",
            flush=True,
        )
        executors = [
            asyncio.ensure_future(self._executor_loop(slot))
            for slot in range(max(1, self.config.executors))
        ]
        self._telemetry_tasks = [
            asyncio.ensure_future(self._window_loop()),
            asyncio.ensure_future(self._progress_loop()),
        ]
        try:
            await self._closed.wait()
        finally:
            disable_spool()
            server.close()
            await server.wait_closed()
            for task in (*executors, *self._telemetry_tasks, *self._connections):
                task.cancel()
            await asyncio.gather(
                *executors, *self._telemetry_tasks, *self._connections,
                return_exceptions=True,
            )

    def request_drain(self) -> None:
        """Stop accepting; the server exits once the backlog is done."""
        self.accepting = False
        self._maybe_close()
        if self._wake is not None:
            self._wake.set()

    def _maybe_close(self) -> None:
        if (
            not self.accepting
            and self.admission.depth == 0
            and not self.running
            and self._closed is not None
        ):
            self._closed.set()

    # ------------------------------------------------------------------
    # telemetry plane

    async def _window_loop(self) -> None:
        """Sample the bus into the sliding-window aggregator."""
        while True:
            self.window.tick()
            await asyncio.sleep(self.window.resolution_s)

    async def _progress_loop(self) -> None:
        """Tail the progress spool; republish snapshots as SSE events."""
        while True:
            self._pump_progress()
            await asyncio.sleep(_PROGRESS_POLL_S)

    def _pump_progress(self) -> int:
        """One spool poll; returns how many snapshots were published.

        Snapshots from fan-out workers carry the job id via the pool's
        ``progress_label`` initarg; in-process runs via the executor
        thread's ``progress_scope``. An unlabeled snapshot (a run
        started outside any scope) is attributed to the only running
        job when exactly one is running, else dropped.
        """
        published = 0
        for snapshot in self._tailer.poll():
            job_id = snapshot.get("job")
            if job_id is None and len(self.running) == 1:
                job_id = next(iter(self.running))
            if job_id is None or job_id not in self.jobs:
                continue
            self.latest_progress[job_id] = snapshot
            self.broker.publish(job_id, "progress", snapshot)
            published += 1
        return published

    def _transition(self, job: Job, **extra) -> None:
        """Journal the job's current state and publish it as SSE."""
        self.store.save(job)
        data = {
            "job": job.id,
            "state": job.state,
            "tenant": job.tenant,
            "attempts": job.attempts,
            "degraded": list(job.degraded),
            "ts_ms": now_ms(),
        }
        data.update(extra)
        self.broker.publish(job.id, "state", data)

    def _note_breaker(self, before: str, job: Job | None = None) -> None:
        """Publish a breaker event if its state changed since ``before``."""
        after = self.breaker.snapshot()
        if after["state"] == before:
            return
        data = {"from": before, **after, "ts_ms": now_ms()}
        if job is not None:
            data["job"] = job.id
        self.broker.publish(job.id if job is not None else BROADCAST,
                            "breaker", data)

    # ------------------------------------------------------------------
    # executors

    async def _executor_loop(self, slot: int) -> None:
        while True:
            # belt and braces with the cancellation in serve_forever:
            # a wait_for whose wake coincides with cancel can swallow
            # the CancelledError (bpo-42130), so check the close event
            if self._closed is not None and self._closed.is_set():
                return
            job = self.admission.next_job()
            if job is None:
                self._maybe_close()
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=0.25)
                except asyncio.TimeoutError:
                    pass
                continue
            await self._run_job(job, slot)

    async def _run_job(self, job: Job, slot: int) -> None:
        job.attempts += 1
        try:
            fault_point("serve.dispatch", detail=f"{job.id} {job.tenant}")
        except InjectedFault as fault:
            self._requeue_or_fail(job, f"dispatch fault: {fault}")
            return
        remaining = job.deadline_remaining()
        if remaining is not None and remaining <= 0:
            self._finish_expired(job, "deadline passed while queued")
            return
        try:
            request = job.request()
        except RequestError as error:
            self._finish_failed(job, {"type": "RequestError", "message": str(error)})
            return
        width = min(request.jobs, self.config.max_width)
        if width > 1 and not self.breaker.allow_pooled():
            width = 1
            if SERIAL_TAG not in job.degraded:
                job.degraded.append(SERIAL_TAG)
            bus.counter("serve.degraded").add()
            self.broker.publish(job.id, "degraded", {
                "job": job.id, "tags": [SERIAL_TAG],
                "reason": "breaker denied pooled execution",
                "ts_ms": now_ms(),
            })
        job.state = lifecycle.RUNNING
        self._transition(job, slot=slot)
        self.running.add(job.id)
        self._queue_wait.record((now_ms() - job.submitted_ms) * 1000.0)
        begun = time.monotonic()
        try:
            with span("serve.job", cat="serve", job=job.id, tenant=job.tenant,
                      slot=slot, attempt=job.attempts):
                work = asyncio.to_thread(
                    execute_job,
                    job,
                    self.results_journal,
                    jobs=width,
                )
                if remaining is not None:
                    summaries, degraded, report = await asyncio.wait_for(
                        work, timeout=remaining
                    )
                else:
                    summaries, degraded, report = await work
        except (JobDeadlineExceeded, asyncio.TimeoutError):
            self._finish_expired(job, "deadline exceeded while running")
            return
        except JobExecutionError as error:
            breaker_before = self.breaker.snapshot()["state"]
            self.breaker.record_failure()
            self._note_breaker(breaker_before, job)
            job.degraded.extend(
                tag for tag in error.degraded if tag not in job.degraded
            )
            self._finish_failed(
                job,
                {
                    "type": "JobExecutionError",
                    "message": str(error),
                    "report": error.report,
                },
            )
            return
        except Exception as error:  # server bug — keep the job, not a 500
            log_event(
                _LOG,
                "unexpected executor failure",
                level=logging.ERROR,
                job=job.id,
                error=f"{type(error).__name__}: {error}",
            )
            self._requeue_or_fail(job, f"{type(error).__name__}: {error}")
            return
        finally:
            self.running.discard(job.id)
        # flush spooled snapshots now so every progress event precedes
        # the terminal state event on the job's SSE stream (the poll
        # task alone could publish them after the stream closed)
        self._pump_progress()
        breaker_before = self.breaker.snapshot()["state"]
        if report is not None:
            self.breaker.record_report(report)
        else:
            self.breaker.record_success()
        self._note_breaker(breaker_before, job)
        fresh_tags = [tag for tag in degraded if tag not in job.degraded]
        job.degraded.extend(fresh_tags)
        if fresh_tags:
            self.broker.publish(job.id, "degraded", {
                "job": job.id, "tags": fresh_tags,
                "reason": "engine tier ladder", "ts_ms": now_ms(),
            })
        try:
            fault_point("serve.result.publish", detail=f"{job.id} {job.tenant}")
        except InjectedFault as fault:
            # the work is in the results journal; re-running the job is
            # a cheap journal replay, so requeue rather than lose state
            self._requeue_or_fail(job, f"publish fault: {fault}")
            return
        job.state = lifecycle.DONE
        job.results = summaries
        job.finished_ms = now_ms()
        self._transition(job, results=len(summaries))
        self._job_wall.record((time.monotonic() - begun) * 1e6)
        bus.counter("serve.completed").add()
        self._maybe_close()

    def _requeue_or_fail(self, job: Job, cause: str) -> None:
        self.running.discard(job.id)
        if job.attempts >= MAX_JOB_ATTEMPTS:
            self._finish_failed(
                job,
                {"type": "RetriesExhausted", "message": cause,
                 "attempts": job.attempts},
            )
            return
        job.state = lifecycle.QUEUED
        self._transition(job, requeued=True, cause=cause)
        self.admission.requeue(job)
        bus.counter("serve.requeued").add()
        if self._wake is not None:
            self._wake.set()

    def _finish_expired(self, job: Job, message: str) -> None:
        self._pump_progress()
        self.running.discard(job.id)
        job.state = lifecycle.EXPIRED
        job.error = {"type": "DeadlineExceeded", "message": message}
        job.finished_ms = now_ms()
        self._transition(job, error="DeadlineExceeded")
        bus.counter("serve.expired").add()
        self._maybe_close()

    def _finish_failed(self, job: Job, error: dict) -> None:
        self._pump_progress()
        self.running.discard(job.id)
        job.state = lifecycle.FAILED
        job.error = error
        job.finished_ms = now_ms()
        self._transition(job, error=error.get("type", "Error"))
        bus.counter("serve.failed").add()
        self._maybe_close()

    # ------------------------------------------------------------------
    # HTTP plumbing

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"), timeout=_IDLE_TIMEOUT
                    )
                except (
                    asyncio.IncompleteReadError,
                    asyncio.TimeoutError,
                    ConnectionResetError,
                    asyncio.LimitOverrunError,
                ):
                    return
                method, path, headers = _parse_head(head)
                length = int(headers.get("content-length", "0") or "0")
                if length > _MAX_BODY:
                    await _respond(writer, 413, {"error": "body too large"})
                    return
                body = await reader.readexactly(length) if length else b""
                keep_alive = headers.get("connection", "").lower() != "close"
                begun = time.monotonic()
                if method == "GET" and path == "/metrics":
                    with span("serve.request", cat="serve", method=method,
                              path=path):
                        text = self._render_prometheus()
                    self._request_wall.record((time.monotonic() - begun) * 1e6)
                    await _respond_text(
                        writer, 200, text,
                        content_type=(
                            "text/plain; version=0.0.4; charset=utf-8"
                        ),
                        keep_alive=keep_alive,
                    )
                    if not keep_alive:
                        return
                    continue
                if method == "GET" and (
                    path == "/v1/events"
                    or (path.startswith("/v1/jobs/")
                        and path.endswith("/events"))
                ):
                    # SSE: the response has no Content-Length and holds
                    # the connection; always closes when the stream ends
                    await self._stream_events(writer, path, headers)
                    return
                with span("serve.request", cat="serve", method=method, path=path):
                    status, doc, extra = self._route(method, path, body)
                self._request_wall.record((time.monotonic() - begun) * 1e6)
                await _respond(writer, status, doc, extra, keep_alive=keep_alive)
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, ValueError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    def _route(self, method: str, path: str, body: bytes):
        """Dispatch one request; returns (status, json_doc, extra_headers)."""
        if path == "/v1/jobs" and method == "POST":
            return self._submit(body)
        if (path.startswith("/v1/jobs/") and path.endswith("/spans")
                and method == "GET"):
            return self._get_spans(path[len("/v1/jobs/"):-len("/spans")])
        if path.startswith("/v1/jobs/") and method == "GET":
            return self._get_job(path[len("/v1/jobs/"):])
        if path == "/v1/jobs" and method == "GET":
            return 200, self._registry_summary(), {}
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True, "run_id": current_run_id(),
                         "uptime_ms": now_ms() - self.started_ms}, {}
        if path == "/readyz" and method == "GET":
            doc = {
                "ready": self.accepting,
                "draining": not self.accepting,
                "queue_depth": self.admission.depth,
                "running": len(self.running),
                "breaker": self.breaker.snapshot(),
            }
            return (200 if self.accepting else 503), doc, {}
        if path == "/v1/metrics" and method == "GET":
            return 200, self._metrics_doc(), {}
        if path == "/v1/drain" and method == "POST":
            self.request_drain()
            return 200, {"draining": True,
                         "queued": self.admission.depth,
                         "running": len(self.running)}, {}
        if path in ("/v1/jobs", "/v1/drain", "/healthz", "/readyz",
                    "/v1/metrics", "/metrics", "/v1/events") or \
                path.startswith("/v1/jobs/"):
            return 405, {"error": f"{method} not allowed on {path}"}, {}
        return 404, {"error": f"no route for {path}"}, {}

    # ------------------------------------------------------------------
    # handlers

    def _submit(self, body: bytes):
        try:
            fault_point("serve.accept", detail="submit")
        except InjectedFault as fault:
            bus.counter("serve.rejected").add()
            return 503, {
                "schema": SERVE_SCHEMA,
                "error": {"type": "InjectedFault", "message": str(fault)},
                "retryable": True,
            }, {"Retry-After": "1"}
        try:
            payload = json.loads(body.decode("utf-8") or "null")
            request = JobRequest.from_payload(payload)
        except RequestError as error:
            return 400, {"schema": SERVE_SCHEMA,
                         "error": {"type": "RequestError",
                                   "message": str(error)}}, {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"schema": SERVE_SCHEMA,
                         "error": {"type": "RequestError",
                                   "message": f"invalid JSON body: {error}"}}, {}
        existing = self.jobs.get(request.id)
        if existing is not None:
            # idempotent resubmission: report, never double-run
            return 200, envelope(existing), {}
        if not self.accepting:
            bus.counter("serve.rejected").add()
            return 503, {
                "schema": SERVE_SCHEMA,
                "error": {"type": "Draining",
                          "message": "server is draining; resubmit elsewhere"},
                "retryable": True,
            }, {"Retry-After": "5"}
        job = Job.from_request(request)
        decision = self.admission.try_admit(job)
        if not decision.admitted:
            bus.counter("serve.rejected").add()
            return 429, {
                "schema": SERVE_SCHEMA,
                "error": {"type": "Saturated", "message": decision.reason},
                "retryable": True,
                "retry_after_s": decision.retry_after,
            }, {"Retry-After": str(decision.retry_after)}
        # journal BEFORE acknowledging: the 202 is a durability promise
        self._transition(job)
        self.jobs[job.id] = job
        bus.counter("serve.accepted").add()
        if self._wake is not None:
            self._wake.set()
        return 202, envelope(job), {}

    def _get_job(self, job_id: str):
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {"schema": SERVE_SCHEMA,
                         "error": {"type": "UnknownJob",
                                   "message": f"no job {job_id!r}"}}, {}
        return 200, envelope(job), {}

    def _progress_digest(self, job_id: str) -> dict | None:
        """Compact progress view of one job for registry summaries."""
        snapshot = self.latest_progress.get(job_id)
        if snapshot is None:
            return None
        total = snapshot.get("records_total") or 0
        done = snapshot.get("records_done") or 0
        return {
            "pct": round(100.0 * done / total, 1) if total else None,
            "tier": snapshot.get("tier"),
            "rate_rps": snapshot.get("rate_rps"),
            "eta_s": snapshot.get("eta_s"),
            "seq": snapshot.get("seq"),
        }

    def _registry_summary(self) -> dict:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "schema": SERVE_SCHEMA,
            "jobs": len(self.jobs),
            "states": states,
            "queue_depth": self.admission.depth,
            "tenants": self.admission.tenants(),
            "running_detail": [
                {
                    "id": job_id,
                    "tenant": self.jobs[job_id].tenant,
                    "attempts": self.jobs[job_id].attempts,
                    "progress": self._progress_digest(job_id),
                }
                for job_id in sorted(self.running)
                if job_id in self.jobs
            ],
        }

    def _engine_tier_counters(self) -> dict[str, int]:
        """The ``engine.*`` tier counters accumulated on the bus."""
        return {
            name: value
            for name, value in bus.snapshot().items()
            if name.startswith("engine.")
        }

    def _metrics_doc(self) -> dict:
        """The deprecated JSON alias of ``/metrics`` (kept stable)."""
        return {
            "schema": SERVE_SCHEMA,
            "run_id": current_run_id(),
            "counters": bus.snapshot(),
            "engine_tiers": self._engine_tier_counters(),
            "breaker": self.breaker.snapshot(),
            "queue_depth": self.admission.depth,
            "running": len(self.running),
            "journal": self.results_journal.stats.as_dict(),
            "rates": {
                window: {
                    name: value
                    for name, value in self.window.rates(window).items()
                    if value > 0
                }
                for window in ("10s", "1m", "5m")
            },
            "deprecated": "prefer GET /metrics (Prometheus text exposition)",
        }

    def _render_prometheus(self) -> str:
        """The ``/metrics`` scrape body (text exposition v0.0.4)."""
        counters = bus.snapshot()
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        breaker_state = self.breaker.snapshot()["state"]
        gauges = {
            "serve.queue_depth": self.admission.depth,
            "serve.running": len(self.running),
            "serve.jobs_known": len(self.jobs),
            "serve.accepting": 1 if self.accepting else 0,
            "serve.uptime_seconds": (now_ms() - self.started_ms) / 1000.0,
            "serve.breaker_state": [
                ({"state": state}, 1 if state == breaker_state else 0)
                for state in (CLOSED, OPEN, HALF_OPEN)
            ],
            "serve.job_states": [
                ({"state": state}, count)
                for state, count in sorted(states.items())
            ],
            "serve.tenant_queue_depth": [
                ({"tenant": tenant}, depth)
                for tenant, depth in sorted(self.admission.tenants().items())
            ],
        }
        rates = {
            window: {
                name: value
                for name, value in self.window.rates(window).items()
                if value > 0
            }
            for window in ("10s", "1m", "5m")
        }
        return render_prometheus(
            counters=counters,
            gauges=gauges,
            histograms=dict(bus.registry().histograms()),
            rates=rates,
            info={"run_id": current_run_id()},
        )

    def _get_spans(self, job_id: str):
        """The job's merged span slice from the active tracer."""
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {"schema": SERVE_SCHEMA,
                         "error": {"type": "UnknownJob",
                                   "message": f"no job {job_id!r}"}}, {}
        tracer = active_tracer()
        if tracer is None:
            return 200, {
                "schema": SERVE_SCHEMA,
                "job": job_id,
                "spans": [],
                "note": "tracing disabled; start the server with "
                        "tracing enabled to record spans",
            }, {}
        events = list(tracer.events) + tracer.collect_shards()
        # seed: spans tagged with this job id; then close over parent
        # links so the slice includes the job's whole subtree
        keep: set[str] = set()
        for event in events:
            args = event.get("args") or {}
            if args.get("job") == job_id and args.get("span"):
                keep.add(args["span"])
        grew = True
        while grew:
            grew = False
            for event in events:
                args = event.get("args") or {}
                span_id = args.get("span")
                if span_id and span_id not in keep and args.get("parent") in keep:
                    keep.add(span_id)
                    grew = True
        spans = [
            event for event in events
            if (event.get("args") or {}).get("span") in keep
        ]
        spans.sort(key=lambda e: (e.get("ts", 0.0), e.get("pid", 0)))
        return 200, {
            "schema": SERVE_SCHEMA,
            "job": job_id,
            "run_id": tracer.run_id,
            "spans": spans,
        }, {}

    # ------------------------------------------------------------------
    # SSE streaming

    async def _stream_events(self, writer, path: str, headers: dict) -> None:
        """Serve one ``text/event-stream`` response until terminal/EOF.

        Replays ring history (honouring ``Last-Event-ID``), then
        forwards live events; heartbeats as comment frames keep the
        connection alive through idle stretches. The stream ends after
        a terminal ``state`` event, when the client disconnects, or
        when the server shuts down (the connection task is cancelled).
        """
        if path == "/v1/events":
            channel = BROADCAST
        else:
            channel = path[len("/v1/jobs/"):-len("/events")]
            if channel not in self.jobs:
                await _respond(
                    writer, 404,
                    {"schema": SERVE_SCHEMA,
                     "error": {"type": "UnknownJob",
                               "message": f"no job {channel!r}"}},
                    keep_alive=False,
                )
                return
        last_event_id: int | None = None
        raw_last = headers.get("last-event-id", "")
        if raw_last.isdigit():
            last_event_id = int(raw_last)
        queue, replay = self.broker.subscribe(channel, last_event_id)
        bus.counter("serve.sse.streams").add()
        try:
            writer.write((
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("latin-1"))
            terminal = False
            for event_id, event, data in replay:
                writer.write(format_event(event_id, event, data))
                terminal = terminal or self._is_terminal_event(channel, event, data)
            # a job already terminal whose transition rolled out of the
            # ring still must end the stream with a state event
            job = self.jobs.get(channel)
            if (not terminal and job is not None
                    and job.state in lifecycle.TERMINAL_STATES):
                writer.write(format_event(
                    self.broker.last_id(channel), "state",
                    {"job": job.id, "state": job.state,
                     "tenant": job.tenant, "attempts": job.attempts,
                     "degraded": list(job.degraded), "ts_ms": now_ms()},
                ))
                terminal = True
            await writer.drain()
            while not terminal:
                try:
                    event_id, event, data = await asyncio.wait_for(
                        queue.get(), timeout=_SSE_HEARTBEAT_S
                    )
                except asyncio.TimeoutError:
                    if self._closed is not None and self._closed.is_set():
                        return
                    writer.write(format_comment())
                    await writer.drain()
                    continue
                writer.write(format_event(event_id, event, data))
                await writer.drain()
                terminal = self._is_terminal_event(channel, event, data)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.broker.unsubscribe(channel, queue)

    def _is_terminal_event(self, channel: str, event: str, data: dict) -> bool:
        """Whether this event ends a per-job stream (broadcast never ends)."""
        return (
            channel != BROADCAST
            and event == "state"
            and data.get("state") in lifecycle.TERMINAL_STATES
        )


# ----------------------------------------------------------------------
# HTTP helpers


def _parse_head(head: bytes):
    """Parse request line + headers from one ``\\r\\n\\r\\n`` block."""
    text = head.decode("latin-1")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ValueError(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    path = target.split("?", 1)[0]
    return method.upper(), path, headers


async def _respond_text(writer, status: int, text: str,
                        content_type: str = "text/plain; charset=utf-8",
                        keep_alive: bool = True) -> None:
    """Write a plain-text response (the Prometheus scrape body)."""
    body = text.encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


async def _respond(writer, status: int, doc, extra: dict | None = None,
                   keep_alive: bool = True) -> None:
    body = json.dumps(doc).encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra or {}).items():
        headers.append(f"{name}: {value}")
    writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


def run(config: ServeConfig) -> int:
    """Synchronous entrypoint: serve until drained or interrupted."""
    server = SimulationServer(config)
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:
        print("repro-serve: interrupted; journaled jobs will resume on restart")
    return 0
