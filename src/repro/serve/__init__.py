"""Simulation-as-a-service: the ``repro serve`` subsystem.

A long-running, stdlib-only asyncio HTTP/JSON front end over the
existing experiment pipeline. The package composes machinery that
already exists elsewhere in the repository rather than reimplementing
it:

* requests run on :func:`repro.experiments.common.run_specs` (the
  resilient :func:`~repro.experiments.parallel.fan_out`);
* every accepted job is journaled through
  :class:`repro.resilience.journal.RunJournal` *before* the client is
  acknowledged, so a ``kill -9`` of the server loses nothing — jobs
  resume on restart (:mod:`repro.serve.lifecycle`);
* results are content-deduplicated through the same journal keys the
  ``--resume`` flag uses, so identical requests cost one simulation;
* admission control (bounded queue, per-tenant fair share, 429 +
  ``Retry-After``) lives in :mod:`repro.serve.admission`;
* graceful degradation (circuit breaker to serial execution, engine
  tier fallback columnar -> fast -> scalar) in :mod:`repro.serve.breaker`;
* the HTTP surface, health/readiness/drain endpoints, and the
  ``serve.accept`` / ``serve.dispatch`` / ``serve.result.publish``
  fault sites in :mod:`repro.serve.server`.
"""

from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.breaker import TIER_LADDER, CircuitBreaker
from repro.serve.lifecycle import Job, JobStore, execute_job
from repro.serve.protocol import (
    SERVE_SCHEMA,
    JobRequest,
    RequestError,
    envelope,
    result_summary,
)
from repro.serve.server import ServeConfig, SimulationServer

__all__ = [
    "SERVE_SCHEMA",
    "AdmissionController",
    "AdmissionDecision",
    "CircuitBreaker",
    "Job",
    "JobRequest",
    "JobStore",
    "RequestError",
    "ServeConfig",
    "SimulationServer",
    "TIER_LADDER",
    "envelope",
    "execute_job",
    "result_summary",
]
