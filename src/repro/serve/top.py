"""``repro top`` / ``repro progress`` — terminal telemetry clients.

A curses-free live dashboard over the serving daemon's telemetry
plane: ``repro top`` polls the JSON registry + metrics endpoints and
repaints an ANSI screen (progress bars per running job, queue depth,
tenant backlogs, breaker state, engine-tier occupancy, windowed
rates); ``repro progress <job-id>`` tails one job's SSE stream and
prints each progress snapshot and state transition as a line, resuming
with ``Last-Event-ID`` across reconnects.

Rendering is split from transport: :func:`render_dashboard` and
:func:`render_progress_line` are pure string functions over plain
dicts, so the test suite exercises layout without sockets, and the
fetch layer is a couple of tiny ``http.client`` wrappers (stdlib only,
matching the server's dependency stance).
"""

from __future__ import annotations

import http.client
import json
import sys
import time
from urllib.parse import urlsplit

from repro.serve.events import TERMINAL_STATES, read_events

#: ANSI: home the cursor and clear to end of screen (repaint in place).
CLEAR = "\x1b[H\x1b[J"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RESET = "\x1b[0m"
_STATE_COLOR = {
    "closed": "\x1b[32m", "open": "\x1b[31m", "half-open": "\x1b[33m",
    "running": "\x1b[36m", "done": "\x1b[32m",
    "failed": "\x1b[31m", "expired": "\x1b[33m",
}


def split_url(url: str) -> tuple[str, int]:
    """``host:port`` from a server URL (scheme optional)."""
    if "//" not in url:
        url = "http://" + url
    parts = urlsplit(url)
    return parts.hostname or "127.0.0.1", parts.port or 8023


def fetch_json(host: str, port: int, path: str, timeout: float = 10.0) -> dict:
    """One GET returning a decoded JSON document."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
    finally:
        conn.close()
    if response.status != 200 and response.status != 503:
        raise RuntimeError(f"GET {path}: HTTP {response.status}")
    return json.loads(body)


def progress_bar(pct: float | None, width: int = 24) -> str:
    """``[#####....] 42.0%`` — or a spinner-less unknown marker."""
    if pct is None:
        return "[" + "?" * width + "]   ?.?%"
    pct = max(0.0, min(100.0, pct))
    filled = int(width * pct / 100.0)
    return f"[{'#' * filled}{'.' * (width - filled)}] {pct:5.1f}%"


def _colored_state(state: str) -> str:
    color = _STATE_COLOR.get(state, "")
    return f"{color}{state}{_RESET}" if color else state


def render_dashboard(registry: dict, metrics: dict, *, ansi: bool = True) -> str:
    """The full ``repro top`` frame from the two JSON documents.

    ``registry`` is ``GET /v1/jobs``, ``metrics`` is ``GET /v1/metrics``.
    With ``ansi=False`` the frame carries no escape codes (tests, logs).
    """
    bold, dim, reset = (_BOLD, _DIM, _RESET) if ansi else ("", "", "")

    def state_of(name: str) -> str:
        return _colored_state(name) if ansi else name

    breaker = metrics.get("breaker", {})
    lines = [
        f"{bold}repro top{reset} — run {metrics.get('run_id', '?')}   "
        f"queue {registry.get('queue_depth', 0)}   "
        f"running {metrics.get('running', 0)}   "
        f"breaker {state_of(breaker.get('state', '?'))}"
        f" (trips {breaker.get('trips', 0)})",
        "",
    ]

    states = registry.get("states", {})
    if states:
        summary = "  ".join(
            f"{state_of(name)}:{count}" for name, count in sorted(states.items())
        )
        lines.append(f"jobs: {registry.get('jobs', 0)}   {summary}")
    tenants = registry.get("tenants", {})
    if tenants:
        backlog = "  ".join(
            f"{tenant}:{depth}" for tenant, depth in sorted(tenants.items())
        )
        lines.append(f"tenant backlog: {backlog}")

    detail = registry.get("running_detail", [])
    lines.append("")
    lines.append(f"{bold}running jobs{reset}")
    if not detail:
        lines.append(f"  {dim}(idle){reset}")
    for entry in detail:
        progress = entry.get("progress") or {}
        bar = progress_bar(progress.get("pct"))
        tier = progress.get("tier") or "?"
        rate = progress.get("rate_rps")
        eta = progress.get("eta_s")
        rate_txt = f"{rate / 1e6:.2f}M rec/s" if rate else ""
        eta_txt = f"eta {eta:.0f}s" if eta else ""
        lines.append(
            f"  {entry.get('id', '?'):<20} {bar}  "
            f"{tier:<8} {rate_txt:<14} {eta_txt}"
        )

    tiers = {
        name.removeprefix("engine.tier.").removesuffix(".jobs"): value
        for name, value in metrics.get("engine_tiers", {}).items()
        if name.startswith("engine.tier.") and name.endswith(".jobs")
    }
    if tiers:
        occupancy = "  ".join(
            f"{tier}:{count}" for tier, count in sorted(tiers.items())
        )
        lines.append("")
        lines.append(f"{bold}engine tiers{reset} (jobs completed)  {occupancy}")

    rates = (metrics.get("rates") or {}).get("1m", {})
    interesting = {
        name.removeprefix("resilience.serve."): value
        for name, value in rates.items()
        if name.startswith("resilience.serve.") and value > 0
    }
    if interesting:
        rate_txt = "  ".join(
            f"{name}:{value:g}/s" for name, value in sorted(interesting.items())
        )
        lines.append("")
        lines.append(f"{bold}1m rates{reset}  {rate_txt}")

    lines.append("")
    lines.append(f"{dim}ctrl-c to exit{reset}")
    return "\n".join(lines)


def render_progress_line(event: dict, *, ansi: bool = True) -> str:
    """One ``repro progress`` output line for an SSE event dict."""
    kind = event.get("event")
    data = event.get("data", {})
    if kind == "progress":
        total = data.get("records_total") or 0
        done = data.get("records_done") or 0
        pct = 100.0 * done / total if total else None
        bar = progress_bar(pct, width=30)
        rate = data.get("rate_rps") or 0
        eta = data.get("eta_s")
        eta_txt = f" eta {eta:.0f}s" if eta else ""
        return (
            f"{bar}  {data.get('tier', '?'):<8} "
            f"{rate / 1e6:6.2f}M rec/s{eta_txt}"
        )
    if kind == "state":
        state = data.get("state", "?")
        label = _colored_state(state) if ansi else state
        extra = ""
        if data.get("error"):
            extra = f" ({data['error']})"
        return f"-- {label}{extra}"
    if kind == "degraded":
        return f"-- degraded: {', '.join(data.get('tags', []))}"
    if kind == "breaker":
        return f"-- breaker: {data.get('from', '?')} -> {data.get('state', '?')}"
    return f"-- {kind}: {json.dumps(data)[:100]}"


def run_top(
    url: str,
    interval_s: float = 1.0,
    once: bool = False,
    iterations: int | None = None,
    out=None,
) -> int:
    """Poll-and-repaint loop behind ``repro top``."""
    out = out or sys.stdout
    host, port = split_url(url)
    painted = 0
    while True:
        try:
            registry = fetch_json(host, port, "/v1/jobs")
            metrics = fetch_json(host, port, "/v1/metrics")
        except (OSError, RuntimeError, ValueError) as error:
            print(f"repro top: {url}: {error}", file=sys.stderr)
            return 1
        ansi = not once and out.isatty()
        frame = render_dashboard(registry, metrics, ansi=ansi)
        if ansi:
            out.write(CLEAR)
        out.write(frame + "\n")
        out.flush()
        painted += 1
        if once or (iterations is not None and painted >= iterations):
            return 0
        time.sleep(interval_s)


def run_progress(job_id: str, url: str, out=None, timeout_s: float = 600.0) -> int:
    """Tail one job's SSE stream until a terminal state (``repro
    progress``). Reconnects with ``Last-Event-ID`` on a dropped
    connection; exits 0 on ``done``, 1 on ``failed``/``expired`` or
    timeout."""
    out = out or sys.stdout
    host, port = split_url(url)
    last_id: int | None = None
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        headers = {}
        if last_id is not None:
            headers["Last-Event-ID"] = str(last_id)
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events", headers=headers)
            response = conn.getresponse()
            if response.status != 200:
                body = response.read()
                print(f"repro progress: HTTP {response.status}: "
                      f"{body.decode('utf-8', 'replace')[:200]}",
                      file=sys.stderr)
                return 1
            for event in read_events(response):
                if event.get("id") is not None:
                    last_id = event["id"]
                ansi = out.isatty()
                print(render_progress_line(event, ansi=ansi), file=out)
                data = event.get("data", {})
                if (event.get("event") == "state"
                        and data.get("state") in TERMINAL_STATES):
                    return 0 if data.get("state") == "done" else 1
        except (OSError, http.client.HTTPException):
            time.sleep(0.5)  # server restarting; retry with Last-Event-ID
        finally:
            conn.close()
    print(f"repro progress: timed out after {timeout_s:.0f}s", file=sys.stderr)
    return 1
