"""Admission control and backpressure for the simulation service.

The server accepts work only while it can still honor it: one bounded
queue caps total exposure, and a per-tenant quota keeps a single noisy
tenant from starving everyone else. Rejections are *structured* — a
:class:`AdmissionDecision` carries the reason and a ``Retry-After``
hint derived from the current backlog, so clients can back off
intelligently instead of hammering a saturated server.

Dispatch order is **fair share**: tenants are drained round-robin, one
job per turn, regardless of how deep any single tenant's backlog is.
Within one tenant, jobs run in submission order. Jobs requeued by the
crash-recovery path (or by a fault at a ``serve.*`` site) bypass the
quota check — they were already admitted once; refusing them would
turn recovery into loss.

The controller is deliberately lock-free: the server is a single
asyncio loop, and every admission mutation happens on that loop.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from dataclasses import dataclass

#: Default ceilings; the CLI exposes both as flags.
DEFAULT_QUEUE_LIMIT = 256
DEFAULT_TENANT_QUOTA = 64


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt."""

    admitted: bool
    reason: str = ""
    #: seconds the client should wait before retrying (429 hint)
    retry_after: int = 0


class AdmissionController:
    """Bounded, tenant-fair job queue."""

    def __init__(
        self,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        tenant_quota: int = DEFAULT_TENANT_QUOTA,
        expected_job_seconds: float = 0.25,
    ) -> None:
        self.queue_limit = queue_limit
        self.tenant_quota = tenant_quota
        self.expected_job_seconds = expected_job_seconds
        #: per-tenant FIFO backlogs, in round-robin rotation order
        self._queues: "OrderedDict[str, deque]" = OrderedDict()
        self._depth = 0

    # ------------------------------------------------------------------
    # admission

    def try_admit(self, job) -> AdmissionDecision:
        """Admit ``job`` into its tenant's backlog, or refuse with a hint."""
        if self._depth >= self.queue_limit:
            return AdmissionDecision(
                admitted=False,
                reason=f"queue full ({self._depth}/{self.queue_limit} jobs)",
                retry_after=self._retry_after(),
            )
        backlog = self._queues.get(job.tenant)
        if backlog is not None and len(backlog) >= self.tenant_quota:
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"tenant {job.tenant!r} at quota "
                    f"({len(backlog)}/{self.tenant_quota} queued jobs)"
                ),
                retry_after=self._retry_after(len(backlog)),
            )
        self._push(job)
        return AdmissionDecision(admitted=True)

    def requeue(self, job) -> None:
        """Re-enter an already-admitted job (recovery / fault retry).

        Quota-exempt: the job was accepted before; dropping it now
        would violate the zero-lost-jobs contract.
        """
        self._push(job, front=True)

    def _push(self, job, front: bool = False) -> None:
        backlog = self._queues.get(job.tenant)
        if backlog is None:
            backlog = deque()
            self._queues[job.tenant] = backlog
        if front:
            backlog.appendleft(job)
        else:
            backlog.append(job)
        self._depth += 1

    def _retry_after(self, tenant_backlog: int | None = None) -> int:
        """Seconds until capacity plausibly frees up.

        Scales with whichever backlog caused the rejection, so a
        tenant over quota on an otherwise idle server is told to come
        back sooner than anyone is during full saturation.
        """
        backlog = self._depth if tenant_backlog is None else tenant_backlog
        return max(1, math.ceil(backlog * self.expected_job_seconds))

    # ------------------------------------------------------------------
    # dispatch

    def next_job(self):
        """Pop the next job, round-robin across tenants; ``None`` if idle."""
        while self._queues:
            tenant, backlog = next(iter(self._queues.items()))
            # rotate: this tenant goes to the back whether or not it
            # still has work, giving every other tenant a turn first
            self._queues.move_to_end(tenant)
            if backlog:
                self._depth -= 1
                job = backlog.popleft()
                if not backlog:
                    del self._queues[tenant]
                return job
            del self._queues[tenant]
        return None

    # ------------------------------------------------------------------
    # introspection

    @property
    def depth(self) -> int:
        """Jobs currently queued (all tenants)."""
        return self._depth

    def tenants(self) -> dict[str, int]:
        """Queued-job count per tenant (for /readyz and /v1/metrics)."""
        return {tenant: len(q) for tenant, q in self._queues.items() if q}
