"""Request/response wire format for the simulation service.

One schema tag (``repro.serve/v1``) covers both directions. A request
is a JSON object naming a tenant and one or more simulation runs; each
run maps onto a :class:`~repro.experiments.common.RunSpec`, the same
picklable value the figure sweeps fan out, so the service schedules
exactly the computation the CLI does. Responses are **envelopes**: job
identity and state, the run id that produced any artifacts, a
``degraded`` list naming every fallback the service took on the job's
behalf (serial execution, engine-tier descent), and either a result
summary or a structured error — degradation is data, never a 500.

Validation is strict and front-loaded: a malformed request raises
:class:`RequestError` (rendered as a 400) before anything is journaled
or queued, so the crash-safe lifecycle only ever stores replayable
jobs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.obs.runid import new_run_id
from repro.os.kernel import HugePagePolicy

#: Schema tag stamped into every response envelope.
SERVE_SCHEMA = "repro.serve/v1"

#: Client-suppliable job ids: filesystem- and URL-safe, bounded.
_JOB_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Tenant names: same shape, shorter.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,31}$")

#: ``runs[*]`` keys accepted from the wire, with per-key coercers.
_RUN_FIELDS = {
    "app": str,
    "policy": str,
    "dataset": str,
    "graph_scale": int,
    "proxy_accesses": int,
    "fragmentation": float,
    "budget_percent": int,
    "demotion": bool,
    "promote_every_accesses": int,
    "seed": int,
    "label": str,
}

#: Ceilings a single request may ask for; the service exists to run
#: *small* requests at volume, not to be a batch queue for full-scale
#: figure sweeps (those belong to the CLI).
MAX_RUNS_PER_JOB = 64
MAX_GRAPH_SCALE = 16
MAX_PROXY_ACCESSES = 2_000_000


class RequestError(ValueError):
    """A request failed validation; rendered as a 400 with detail."""


@dataclass
class JobRequest:
    """One validated submission, ready to journal and enqueue."""

    id: str
    tenant: str
    runs: list[dict]
    deadline_s: float | None = None
    jobs: int = 1
    #: the raw payload, kept verbatim so the journaled job record can
    #: rebuild this request bit-for-bit after a server restart
    payload: dict = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload) -> "JobRequest":
        """Validate one decoded JSON body into a request."""
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        job_id = payload.get("id")
        if job_id is None:
            job_id = f"job-{new_run_id()}"
        if not isinstance(job_id, str) or not _JOB_ID_RE.match(job_id):
            raise RequestError(
                "id must match [A-Za-z0-9][A-Za-z0-9._-]{0,63}"
            )
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
            raise RequestError(
                "tenant must match [A-Za-z0-9][A-Za-z0-9._-]{0,31}"
            )
        deadline_s = payload.get("deadline_s")
        if deadline_s is not None:
            try:
                deadline_s = float(deadline_s)
            except (TypeError, ValueError):
                raise RequestError("deadline_s must be a number") from None
            if deadline_s <= 0:
                raise RequestError("deadline_s must be positive")
        jobs = payload.get("jobs", 1)
        if not isinstance(jobs, int) or jobs < 1:
            raise RequestError("jobs must be a positive integer")
        raw_runs = payload.get("runs")
        if not isinstance(raw_runs, list) or not raw_runs:
            raise RequestError("runs must be a non-empty list")
        if len(raw_runs) > MAX_RUNS_PER_JOB:
            raise RequestError(
                f"runs is capped at {MAX_RUNS_PER_JOB} per job"
            )
        runs = [_validate_run(index, run) for index, run in enumerate(raw_runs)]
        return cls(
            id=job_id,
            tenant=tenant,
            runs=runs,
            deadline_s=deadline_s,
            jobs=jobs,
            payload=dict(payload),
        )

    def to_specs(self, engine_tier: str | None = None):
        """The request's runs as :class:`RunSpec` values (one tier)."""
        from repro.experiments.common import RunSpec

        return [
            RunSpec(engine_tier=engine_tier, **run) for run in self.runs
        ]


def _validate_run(index: int, run) -> dict:
    """One ``runs[index]`` entry, checked and coerced field by field."""
    if not isinstance(run, dict):
        raise RequestError(f"runs[{index}] must be an object")
    unknown = sorted(set(run) - set(_RUN_FIELDS))
    if unknown:
        raise RequestError(
            f"runs[{index}] has unknown fields {unknown}; "
            f"accepted: {sorted(_RUN_FIELDS)}"
        )
    if "app" not in run:
        raise RequestError(f"runs[{index}] names no app")
    out: dict = {}
    for name, value in run.items():
        coerce = _RUN_FIELDS[name]
        if value is None and name in ("budget_percent", "seed",
                                      "promote_every_accesses"):
            continue
        try:
            out[name] = coerce(value)
        except (TypeError, ValueError):
            raise RequestError(
                f"runs[{index}].{name} must be {coerce.__name__}"
            ) from None
    policy = out.setdefault("policy", HugePagePolicy.PCC.value)
    try:
        HugePagePolicy(policy)
    except ValueError:
        choices = sorted(p.value for p in HugePagePolicy)
        raise RequestError(
            f"runs[{index}].policy {policy!r} unknown; choose from {choices}"
        ) from None
    out.setdefault("graph_scale", 10)
    out.setdefault("proxy_accesses", 20_000)
    if out["graph_scale"] > MAX_GRAPH_SCALE:
        raise RequestError(
            f"runs[{index}].graph_scale is capped at {MAX_GRAPH_SCALE}"
        )
    if out["proxy_accesses"] > MAX_PROXY_ACCESSES:
        raise RequestError(
            f"runs[{index}].proxy_accesses is capped at {MAX_PROXY_ACCESSES}"
        )
    fragmentation = out.get("fragmentation", 0.0)
    if not 0.0 <= fragmentation <= 1.0:
        raise RequestError(
            f"runs[{index}].fragmentation must be within [0, 1]"
        )
    return out


def result_summary(result) -> dict:
    """JSON-safe digest of one :class:`SimulationResult`.

    The service returns summaries, not pickled result objects: the
    fields every figure and report derives from, small enough to embed
    thousands of per-job envelopes in one load-test artifact.
    """
    return {
        "policy": result.policy,
        "total_cycles": result.total_cycles,
        "accesses": result.accesses,
        "walks": result.walks,
        "walk_rate": round(result.walk_rate, 6),
        "l1_hits": result.l1_hits,
        "l2_hits": result.l2_hits,
        "promotions": result.promotions,
        "demotions": result.demotions,
    }


def envelope(job) -> dict:
    """The response envelope for one :class:`~repro.serve.lifecycle.Job`."""
    return {
        "schema": SERVE_SCHEMA,
        "job": {
            "id": job.id,
            "tenant": job.tenant,
            "state": job.state,
            "run_id": job.run_id,
            "submitted_ms": job.submitted_ms,
            "finished_ms": job.finished_ms,
            "attempts": job.attempts,
        },
        "degraded": list(job.degraded),
        "result": job.results,
        "error": job.error,
    }
