"""Crash-safe job lifecycle for the simulation service.

The contract the server makes when it returns ``202 Accepted``: the
job now exists durably and will eventually reach a terminal state,
surviving any crash of the server in between. The machinery is the
repository's existing checkpoint journal
(:class:`~repro.resilience.journal.RunJournal`):

* the job record is committed as a journal shard **before** the accept
  response is written — a shard is published with an atomic rename, so
  a ``kill -9`` at any instant leaves either no job (client never got
  its 202, and retries) or a complete, replayable record;
* every state transition re-commits the shard under the same key
  (last write wins, still atomic), so the record always names the
  job's current state;
* on startup :meth:`JobStore.recover` loads every shard and returns
  the non-terminal jobs for requeueing — the resume path after a kill;
* the *results* of a job's simulation runs are committed through the
  ordinary results journal by :func:`~repro.experiments.common.run_specs`
  (``resume=True``), keyed by run content. Re-executing a recovered or
  requeued job therefore recomputes nothing that already finished, and
  two different jobs asking for the same run share one simulation:
  content-level exactly-once effects on top of at-least-once dispatch.

:func:`execute_job` is the worker-thread body: it walks the engine
tier ladder (columnar -> fast -> scalar) so an engine-level failure
degrades the job instead of failing it, and threads the request
deadline into the fan-out's :class:`~repro.resilience.retry.RetryPolicy`
timeout (the ``REPRO_TASK_TIMEOUT`` path) so an overrunning fan-out is
cancelled rather than orphaned.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field, replace

from repro.obs.log import get_logger, log_event
from repro.obs.progress import progress_scope
from repro.obs.runid import current_run_id
from repro.resilience import bus
from repro.resilience.journal import RunJournal
from repro.resilience.retry import RetryPolicy
from repro.serve.breaker import TIER_LADDER
from repro.serve.protocol import JobRequest, result_summary

_LOG = get_logger("serve.lifecycle")

#: Job states. ``queued`` and ``running`` are recoverable; the rest
#: are terminal.
QUEUED, RUNNING, DONE, FAILED, EXPIRED = (
    "queued", "running", "done", "failed", "expired",
)
TERMINAL_STATES = frozenset({DONE, FAILED, EXPIRED})

#: Dispatch attempts a job gets before it is failed outright (guards
#: against a job that crashes the server every time it runs).
MAX_JOB_ATTEMPTS = 3

#: Journal-key prefix for job records (results shards use content
#: hashes, which never collide with this).
_KEY_PREFIX = "job."


def now_ms() -> int:
    """Wall-clock epoch milliseconds (journaled; human-correlatable)."""
    return int(time.time() * 1000)


@dataclass
class Job:
    """One journaled job: request payload plus lifecycle bookkeeping."""

    id: str
    tenant: str
    payload: dict
    state: str = QUEUED
    submitted_ms: int = 0
    finished_ms: int | None = None
    run_id: str = ""
    attempts: int = 0
    degraded: list = field(default_factory=list)
    results: list | None = None
    error: dict | None = None

    @classmethod
    def from_request(cls, request: JobRequest) -> "Job":
        return cls(
            id=request.id,
            tenant=request.tenant,
            payload=request.payload,
            submitted_ms=now_ms(),
            run_id=current_run_id(),
        )

    def request(self) -> JobRequest:
        """Rebuild the validated request from the journaled payload."""
        return JobRequest.from_payload(self.payload)

    # ------------------------------------------------------------------
    # deadline

    def deadline_remaining(self) -> float | None:
        """Seconds left before this job's deadline, or ``None``."""
        deadline_s = self.payload.get("deadline_s")
        if deadline_s is None:
            return None
        elapsed = (now_ms() - self.submitted_ms) / 1000.0
        return float(deadline_s) - elapsed

    # ------------------------------------------------------------------
    # (de)serialization — shards hold plain dicts, not Job instances,
    # so old servers can read records written by newer ones

    def to_record(self) -> dict:
        return {
            "id": self.id,
            "tenant": self.tenant,
            "payload": self.payload,
            "state": self.state,
            "submitted_ms": self.submitted_ms,
            "finished_ms": self.finished_ms,
            "run_id": self.run_id,
            "attempts": self.attempts,
            "degraded": list(self.degraded),
            "results": self.results,
            "error": self.error,
        }

    @classmethod
    def from_record(cls, record: dict) -> "Job":
        return cls(**{f: record.get(f) for f in (
            "id", "tenant", "payload", "state", "submitted_ms",
            "finished_ms", "run_id", "attempts", "results", "error",
        )}, degraded=list(record.get("degraded") or []))


class JobStore:
    """Durable job records on a :class:`RunJournal` directory."""

    def __init__(self, directory) -> None:
        self.journal = RunJournal(directory)

    def key_of(self, job_id: str) -> str:
        return f"{_KEY_PREFIX}{job_id}"

    def save(self, job: Job) -> None:
        """Atomically commit the job's current state as its shard."""
        self.journal.commit(self.key_of(job.id), job.to_record())

    def load(self, job_id: str) -> Job | None:
        record = self.journal.load(self.key_of(job_id))
        if record is None:
            return None
        return Job.from_record(record)

    def recover(self) -> tuple[list[Job], list[Job]]:
        """All journaled jobs, split into (unfinished, finished).

        Unfinished jobs — ``queued`` or ``running`` at crash time — are
        the server's restart obligation: requeue and run them. A shard
        the journal quarantines as corrupt simply drops out of the
        listing; its job was never acknowledged completely or will be
        resubmitted by the client, both of which the dedup layer makes
        safe.
        """
        unfinished: list[Job] = []
        finished: list[Job] = []
        for key in self.journal.keys():
            if not key.startswith(_KEY_PREFIX):
                continue
            record = self.journal.load(key)
            if not isinstance(record, dict) or "id" not in record:
                continue
            job = Job.from_record(record)
            if job.state in TERMINAL_STATES:
                finished.append(job)
            else:
                unfinished.append(job)
        unfinished.sort(key=lambda job: (job.submitted_ms, job.id))
        finished.sort(key=lambda job: (job.submitted_ms, job.id))
        return unfinished, finished


#: Per-run counter infix whose per-core readings are folded onto the
#: process-global bus as ``engine.<name>`` (tier activity: fast hits,
#: batch retirements, columnar epochs, fallbacks).
_TIER_COUNTER_MARKER = ".fastpath."


def accumulate_engine_counters(results) -> None:
    """Fold per-run engine-tier counters onto the resilience bus.

    The per-run registries are ephemeral (they live on the result
    object); the serving daemon's ``/metrics`` and ``/v1/metrics``
    surfaces need cumulative tier activity across every job, so the
    tier counters are re-published here under ``engine.*`` — an
    un-prefixed name, hence ``bus.registry()`` rather than
    ``bus.counter`` (which would stamp ``resilience.``).
    """
    registry = bus.registry()
    for result in results:
        metrics = getattr(result, "metrics", None)
        if not isinstance(metrics, dict):
            continue
        for name, value in metrics.get("counters", {}).items():
            position = name.find(_TIER_COUNTER_MARKER)
            if position < 0 or not isinstance(value, int) or value <= 0:
                continue
            short = name[position + len(_TIER_COUNTER_MARKER):]
            registry.counter(f"engine.{short}").add(value)


class JobExecutionError(RuntimeError):
    """A job failed on every rung of the tier ladder."""

    def __init__(self, message: str, degraded: list, report: dict | None) -> None:
        super().__init__(message)
        self.degraded = degraded
        self.report = report


class JobDeadlineExceeded(RuntimeError):
    """A job's deadline expired while it was executing."""


def deadline_policy(
    base: RetryPolicy, deadline_remaining: float | None
) -> RetryPolicy:
    """Retry policy with the job deadline folded into the task timeout.

    The fan-out's per-task timeout is the cancellation mechanism for
    overrunning work (`REPRO_TASK_TIMEOUT` path): a task that outlives
    the job's remaining deadline is expired and its pool recycled, so
    a doomed job releases its workers instead of holding them hostage.
    """
    if deadline_remaining is None:
        return base
    ceiling = max(0.1, deadline_remaining)
    if base.timeout is None or base.timeout > ceiling:
        return replace(base, timeout=ceiling)
    return base


def execute_job(
    job: Job,
    results_journal: RunJournal | None,
    *,
    jobs: int = 1,
    ladder: tuple = TIER_LADDER,
    retry_policy: RetryPolicy | None = None,
) -> tuple[list[dict], list[str], dict | None]:
    """Run one job's simulations; returns (summaries, degraded, report).

    Worker-thread body. Walks ``ladder`` from the engine default
    downward: any execution failure on a higher tier degrades to the
    next rung (recorded in the returned ``degraded`` tags) instead of
    failing the job; only failure on the final rung raises
    :class:`JobExecutionError`. ``report`` is the last
    :class:`~repro.experiments.parallel.FanOutReport` observed (for
    the circuit breaker), ``None`` when every fan-out stayed clean.
    """
    from repro.experiments.common import run_specs
    from repro.experiments.parallel import FanOutError

    request = job.request()
    policy = deadline_policy(
        retry_policy or RetryPolicy.from_env(), job.deadline_remaining()
    )
    degraded: list[str] = []
    report: dict | None = None
    last_error: Exception | None = None
    for rung, tier in enumerate(ladder):
        remaining = job.deadline_remaining()
        if remaining is not None and remaining <= 0:
            # the server turns this into EXPIRED, not FAILED
            raise JobDeadlineExceeded(f"job {job.id} deadline expired")
        specs = request.to_specs(engine_tier=tier)
        try:
            # the scope labels in-process runs with the job id (the
            # pooled path gets the same label via progress_label ->
            # worker initargs), so live progress snapshots attribute
            # to this job whichever execution path runs the specs
            with progress_scope(job.id):
                results = run_specs(
                    specs,
                    jobs=jobs,
                    resume=True,
                    journal=results_journal,
                    policy=policy,
                    progress_label=job.id,
                )
        except FanOutError as error:
            report = error.report.as_dict()
            last_error = error
        except Exception as error:  # engine/encoding/compile failures
            last_error = error
        else:
            accumulate_engine_counters(results)
            bus.registry().counter(
                f"engine.tier.{tier or 'columnar'}.jobs"
            ).add()
            return [result_summary(result) for result in results], degraded, report
        if rung + 1 < len(ladder):
            tag = f"tier:{ladder[rung + 1]}"
            degraded.append(tag)
            bus.counter("serve.degraded").add()
            log_event(
                _LOG,
                "job degraded to a lower engine tier",
                level=logging.WARNING,
                job=job.id,
                tier=ladder[rung + 1],
                cause=str(last_error)[:300],
            )
    raise JobExecutionError(
        f"job {job.id} failed on every engine tier: {last_error}",
        degraded=degraded,
        report=report,
    )
