"""Server-Sent Events plumbing for the serving daemon.

:class:`EventBroker` is the in-process pub/sub hub between the job
lifecycle (state transitions, degradation, breaker trips — published
from the executor coroutines) plus the progress spool tailer, and any
number of open ``GET /v1/jobs/<id>/events`` streams. Design points:

- **per-channel ids + bounded replay.** Every channel (one per job id,
  plus the ``"*"`` broadcast the dashboard tails) numbers its events
  from 1 and keeps the last :data:`HISTORY` in a ring. A client that
  reconnects with ``Last-Event-ID: n`` replays everything after ``n``
  that is still in the ring — the standard SSE resumption contract —
  so a dropped TCP connection loses nothing that happened within the
  ring's horizon.
- **late subscribers see the story so far.** A subscription with no
  ``Last-Event-ID`` replays the full ring too: a client attaching to a
  job mid-run immediately sees the queued→running transition and the
  latest progress snapshots instead of silence until the next emit.
- **thread-agnostic publish.** Almost everything publishes from the
  event loop; anything else is bounced through
  ``loop.call_soon_threadsafe``. Subscriber queues are plain
  ``asyncio.Queue`` drained by the per-connection stream coroutine.

The module also carries both wire codecs: :func:`format_event` writes
the ``id:``/``event:``/``data:`` frame, and :func:`read_events` is the
blocking client-side parser used by ``repro top``, ``repro progress``,
the load harness, and the protocol tests.
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections import deque

#: Events retained per channel for replay after reconnect.
HISTORY = 256

#: Channel id carrying every event of every job (the dashboard feed).
BROADCAST = "*"

#: ``state`` event payload values that end a job's stream.
TERMINAL_STATES = ("done", "failed", "expired")


def format_event(event_id: int, event: str, data: dict) -> bytes:
    """One SSE frame: id, event name, single-line JSON data."""
    payload = json.dumps(data, separators=(",", ":"))
    return f"id: {event_id}\nevent: {event}\ndata: {payload}\n\n".encode()


def format_comment(text: str = "ping") -> bytes:
    """A comment frame — the keep-alive heartbeat clients ignore."""
    return f": {text}\n\n".encode()


def read_events(fp):
    """Parse SSE frames from a blocking file-like; yields event dicts.

    ``fp`` needs only ``readline()`` returning bytes (an
    ``http.client.HTTPResponse`` qualifies). Yields
    ``{"id": int | None, "event": str, "data": dict}`` per frame,
    skipping comments; returns when the stream closes. Tolerates
    ``\\r\\n`` line endings and multi-line ``data:`` fields.
    """
    event_id: int | None = None
    event_name = "message"
    data_lines: list[str] = []
    while True:
        raw = fp.readline()
        if not raw:
            return
        line = raw.decode("utf-8", "replace").rstrip("\r\n")
        if not line:
            if data_lines:
                try:
                    data = json.loads("\n".join(data_lines))
                except ValueError:
                    data = {"raw": "\n".join(data_lines)}
                yield {"id": event_id, "event": event_name, "data": data}
            event_id = None
            event_name = "message"
            data_lines = []
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(":")
        value = value.removeprefix(" ")
        if field == "id":
            try:
                event_id = int(value)
            except ValueError:
                event_id = None
        elif field == "event":
            event_name = value
        elif field == "data":
            data_lines.append(value)


class EventBroker:
    """Per-channel event rings with asyncio subscriber fan-out."""

    def __init__(self, history: int = HISTORY) -> None:
        self.history = history
        self._rings: dict[str, deque] = {}
        self._next_id: dict[str, int] = {}
        self._queues: dict[str, set[asyncio.Queue]] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: int | None = None

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Adopt the serving loop; must be called from that loop."""
        self._loop = loop
        self._loop_thread = threading.get_ident()

    # ------------------------------------------------------------------
    # publishing

    def publish(self, channel: str, event: str, data: dict,
                broadcast: bool = True) -> None:
        """Append an event to ``channel`` (and mirror it to ``"*"``).

        Safe from any thread: off-loop calls are marshalled with
        ``call_soon_threadsafe``. The broadcast mirror carries its own
        id sequence and a ``channel`` field so dashboard clients can
        demultiplex.
        """
        if (
            self._loop is not None
            and threading.get_ident() != self._loop_thread
            and self._loop.is_running()
        ):
            self._loop.call_soon_threadsafe(
                self._publish, channel, event, data, broadcast
            )
            return
        self._publish(channel, event, data, broadcast)

    def _publish(self, channel: str, event: str, data: dict,
                 broadcast: bool) -> None:
        self._append(channel, event, data)
        if broadcast and channel != BROADCAST:
            self._append(BROADCAST, event, {"channel": channel, **data})

    def _append(self, channel: str, event: str, data: dict) -> None:
        ring = self._rings.get(channel)
        if ring is None:
            ring = self._rings[channel] = deque(maxlen=self.history)
            self._next_id[channel] = 0
        self._next_id[channel] += 1
        entry = (self._next_id[channel], event, data)
        ring.append(entry)
        for queue in self._queues.get(channel, ()):  # snapshot-safe: set copy below
            try:
                queue.put_nowait(entry)
            except asyncio.QueueFull:  # pragma: no cover - unbounded queues
                pass

    # ------------------------------------------------------------------
    # subscribing

    def subscribe(
        self, channel: str, last_event_id: int | None = None
    ) -> tuple[asyncio.Queue, list[tuple[int, str, dict]]]:
        """Attach a queue to ``channel``; returns ``(queue, replay)``.

        ``replay`` is every ring entry with id greater than
        ``last_event_id`` (or the whole ring when ``None``) — emit it
        before awaiting the queue and the client never sees a gap,
        because ids are assigned on the loop thread that also fans out
        to queues.
        """
        queue: asyncio.Queue = asyncio.Queue()
        self._queues.setdefault(channel, set()).add(queue)
        ring = self._rings.get(channel, ())
        if last_event_id is None:
            replay = list(ring)
        else:
            replay = [entry for entry in ring if entry[0] > last_event_id]
        return queue, replay

    def unsubscribe(self, channel: str, queue: asyncio.Queue) -> None:
        """Detach a queue (idempotent)."""
        queues = self._queues.get(channel)
        if queues is not None:
            queues.discard(queue)
            if not queues:
                del self._queues[channel]

    # ------------------------------------------------------------------
    # introspection

    def last_id(self, channel: str) -> int:
        """Highest id assigned on ``channel`` (0 before any event)."""
        return self._next_id.get(channel, 0)

    def events(self, channel: str) -> list[tuple[int, str, dict]]:
        """The channel's current ring contents (oldest first)."""
        return list(self._rings.get(channel, ()))
