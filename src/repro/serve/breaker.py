"""Graceful degradation: circuit breaker and engine-tier ladder.

Two independent mechanisms keep the service answering when its fastest
machinery is failing:

* The :class:`CircuitBreaker` watches
  :class:`~repro.experiments.parallel.FanOutReport` outcomes. Repeated
  worker quarantines or pool deaths trip it **open**: jobs then run
  serially in-process (``jobs=1``), trading throughput for certainty
  that no process pool is involved. After a cooldown the breaker goes
  **half-open** and lets one job try the pool again; success closes
  the circuit, failure reopens it.

* The tier ladder (:data:`TIER_LADDER`) degrades the engine itself:
  when a job fails on the default columnar tier (numba probe-compile
  blowups, columnar encoding failures, or anything else the fast path
  trips over), the job is retried on the ``fast`` tier and finally the
  ``scalar`` reference tier. The four tiers are bit-identical by
  construction (the differential oracle's core invariant), so a
  degraded answer is a *slower* answer, never a different one.

Every degradation a job absorbs is recorded on the job's ``degraded``
list and surfaced in its response envelope — the client sees exactly
what the service did on its behalf instead of a 500.
"""

from __future__ import annotations

import time

from repro.resilience import bus

#: Engine tiers tried in order. ``None`` means "engine default" (the
#: columnar whole-epoch tier); each later rung switches the Simulator
#: to a strictly simpler, strictly better-understood path.
TIER_LADDER: tuple[str | None, ...] = (None, "fast", "scalar")

#: Degradation tag recorded when the breaker forces serial execution.
SERIAL_TAG = "serial-execution"

#: Breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Trips from pooled to serial execution on repeated fan-out damage.

    ``clock`` is injectable for tests; production uses
    ``time.monotonic``. The breaker is loop-confined like the admission
    controller — no locking.
    """

    def __init__(
        self,
        trip_after: int = 3,
        cooldown_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        self.trip_after = trip_after
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self._opened_at = 0.0
        #: True while one half-open trial job is in flight
        self._probing = False

    # ------------------------------------------------------------------
    # observations

    def record_report(self, report: dict) -> None:
        """Account one fan-out report that carried quarantine damage."""
        damage = bool(report.get("quarantined")) or bool(
            report.get("pool_rebuilds")
        )
        if damage:
            self.record_failure()
        else:
            self.record_success()

    def record_failure(self) -> None:
        """One damaged execution; may trip or re-open the circuit."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            self._open()
        elif self.state == CLOSED and self.consecutive_failures >= self.trip_after:
            self._open()
        self._probing = False

    def record_success(self) -> None:
        """One clean execution; closes a half-open circuit."""
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.state = CLOSED
        self._probing = False

    def _open(self) -> None:
        self.state = OPEN
        self.trips += 1
        self._opened_at = self._clock()
        bus.counter("breaker.trips").add()

    # ------------------------------------------------------------------
    # decisions

    def allow_pooled(self) -> bool:
        """Whether the next job may use the process pool.

        While open, everything is serial. After the cooldown the first
        caller becomes the half-open probe; concurrent jobs stay serial
        until the probe's outcome is recorded.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock() - self._opened_at < self.cooldown_s:
                return False
            self.state = HALF_OPEN
        if self.state == HALF_OPEN:
            if self._probing:
                return False
            self._probing = True
            return True
        return True

    def snapshot(self) -> dict:
        """JSON-safe state for /readyz and /v1/metrics."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
        }
