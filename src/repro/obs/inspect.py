"""Run inspector: summarize and validate observability artifacts.

``repro inspect <file>`` accepts either artifact the pipeline writes —

* a **metrics** file (``repro.metrics/v1``): one registry export or the
  collector aggregate ``--metrics-out`` produces, and
* a **trace** file (``repro.trace/v1``): the Chrome trace-event JSON
  ``--trace-out`` produces —

and prints a terminal report: slowest spans, hottest PCC regions (from
the sampled ``pcc_state`` snapshots), and p50/p95/p99 for every
recorded distribution. ``--check`` additionally validates the document
against its schema and fails on any violation, which is what CI runs
over freshly produced artifacts.

All summaries are plain dicts (JSON-safe) so tests can golden-pin the
rendered text without touching live simulations.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.histo import Histogram
from repro.obs.tracer import TRACE_SCHEMA, thread_lane_name

#: Metrics schema accepted by the inspector (see repro.metrics.registry).
METRICS_SCHEMA = "repro.metrics/v1"

#: Event phases the trace validator accepts (the subset the tracer emits).
_KNOWN_PHASES = {"X", "i", "M", "s", "f"}


# ----------------------------------------------------------------------
# validation


def validate_trace(doc) -> list[str]:
    """Schema violations in a trace document (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["trace document is not a JSON object"]
    other = doc.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != TRACE_SCHEMA:
        errors.append(f"otherData.schema is not {TRACE_SCHEMA!r}")
    elif not other.get("run_id"):
        errors.append("otherData.run_id is missing")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return errors + ["traceEvents is not a list"]
    for index, event in enumerate(events):
        if len(errors) >= 20:
            errors.append("... further errors suppressed")
            break
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int):
            errors.append(f"{where}: missing pid")
        if ph != "M":
            if not isinstance(event.get("ts"), (int, float)):
                errors.append(f"{where}: missing ts")
        if ph == "X":
            if not isinstance(event.get("dur"), (int, float)):
                errors.append(f"{where}: X event missing dur")
            args = event.get("args")
            if not isinstance(args, dict) or "span" not in args:
                errors.append(f"{where}: X event missing args.span")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: instant event missing scope")
        if ph in ("s", "f") and "id" not in event:
            errors.append(f"{where}: flow event missing id")
    return errors


def _validate_one_run(doc, where: str, errors: list[str]) -> None:
    if not isinstance(doc, dict):
        errors.append(f"{where}: not an object")
        return
    if doc.get("schema") != METRICS_SCHEMA:
        errors.append(f"{where}: schema is not {METRICS_SCHEMA!r}")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        errors.append(f"{where}: counters is not an object")
    elif any(not isinstance(v, int) for v in counters.values()):
        errors.append(f"{where}: non-integer counter value")
    if not isinstance(doc.get("samples"), list):
        errors.append(f"{where}: samples is not a list")
    distributions = doc.get("distributions")
    if not isinstance(distributions, dict):
        errors.append(f"{where}: distributions is not an object")
        return
    for name, dist in distributions.items():
        if not isinstance(dist, dict):
            errors.append(f"{where}: distribution {name!r} is not an object")
            continue
        for key in ("count", "sum", "percentiles", "buckets"):
            if key not in dist:
                errors.append(f"{where}: distribution {name!r} missing {key!r}")


def validate_metrics(doc) -> list[str]:
    """Schema violations in a metrics document (single run or aggregate)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["metrics document is not a JSON object"]
    if "runs" in doc:
        if doc.get("schema") != METRICS_SCHEMA:
            errors.append(f"schema is not {METRICS_SCHEMA!r}")
        if not doc.get("run_id"):
            errors.append("run_id is missing")
        runs = doc.get("runs")
        if not isinstance(runs, list):
            return errors + ["runs is not a list"]
        for index, run in enumerate(runs):
            _validate_one_run(run, f"runs[{index}]", errors)
    else:
        _validate_one_run(doc, "document", errors)
    return errors


# ----------------------------------------------------------------------
# summaries


def summarize_trace(doc: dict, top: int = 10) -> dict:
    """Digest of one trace file: span census, slowest spans, hot regions."""
    events = [e for e in doc.get("traceEvents", []) if isinstance(e, dict)]
    spans = [e for e in events if e.get("ph") == "X"]
    by_name: dict[str, dict] = {}
    for event in spans:
        entry = by_name.setdefault(
            event.get("name", "?"), {"count": 0, "total_us": 0.0, "max_us": 0.0}
        )
        dur = float(event.get("dur", 0.0))
        entry["count"] += 1
        entry["total_us"] = round(entry["total_us"] + dur, 3)
        entry["max_us"] = max(entry["max_us"], dur)
    slowest = sorted(
        spans,
        key=lambda e: (-float(e.get("dur", 0.0)), e.get("ts", 0.0), e.get("name", "")),
    )[:top]
    # Hottest regions: peak PCC frequency per (pid, region) across every
    # sampled pcc_state snapshot.
    peak: dict[tuple[int, int], int] = {}
    for event in events:
        if event.get("ph") != "i" or event.get("name") != "pcc_state":
            continue
        for pid, region, freq in (event.get("args") or {}).get("top_regions", []):
            key = (int(pid), int(region))
            peak[key] = max(peak.get(key, 0), int(freq))
    hot_regions = sorted(
        ([pid, region, freq] for (pid, region), freq in peak.items()),
        key=lambda row: (-row[2], row[0], row[1]),
    )[:top]
    return {
        "kind": "trace",
        "run_id": (doc.get("otherData") or {}).get("run_id"),
        "events": len(events),
        "spans": len(spans),
        "processes": sorted({e.get("pid") for e in spans}),
        "by_name": dict(sorted(by_name.items())),
        "slowest": [
            {
                "name": e.get("name"),
                "dur_us": float(e.get("dur", 0.0)),
                "ts_us": float(e.get("ts", 0.0)),
                "pid": e.get("pid"),
                "lane": thread_lane_name(int(e.get("tid", 0))),
                "span": (e.get("args") or {}).get("span"),
            }
            for e in slowest
        ],
        "hot_regions": hot_regions,
    }


def _merged_distributions(runs: list[dict]) -> dict[str, Histogram]:
    merged: dict[str, Histogram] = {}
    for run in runs:
        for name, dist in (run.get("distributions") or {}).items():
            histogram = Histogram.from_dict(name, dist)
            if name in merged:
                merged[name].merge(histogram)
            else:
                merged[name] = histogram
    return dict(sorted(merged.items()))


def _engine_tier_counters(runs: list[dict]) -> dict[str, int]:
    """Adaptive-tier retirement counters, summed across cores and runs.

    The pipeline exports its tier instrumentation per core as
    ``core<N>.fastpath.<counter>``; the inspector folds those into one
    machine-wide view (fast_hits, batch_retired, columnar_retired,
    fallbacks, ...) plus the power-of-two epoch-length histogram
    (``columnar_epoch_p2_<k>`` buckets).
    """
    totals: dict[str, int] = {}
    for run in runs:
        for name, value in (run.get("counters") or {}).items():
            if ".fastpath." not in name or not isinstance(value, int):
                continue
            counter = name.split(".fastpath.", 1)[1]
            totals[counter] = totals.get(counter, 0) + value
    return dict(sorted(totals.items()))


def summarize_metrics(doc: dict) -> dict:
    """Digest of one metrics file; distributions merged across runs."""
    runs = doc["runs"] if "runs" in doc else [doc]
    merged = _merged_distributions(runs)
    distributions = {}
    for name, histogram in merged.items():
        distributions[name] = {
            "unit": histogram.unit,
            "count": histogram.count,
            "mean": round(histogram.mean, 6),
            "min": histogram.min if histogram.min is not None else 0.0,
            "max": histogram.max if histogram.max is not None else 0.0,
            **histogram.percentiles(),
        }
    totals: dict[str, int] = {}
    for run in runs:
        for key in ("accesses", "walks", "promotions", "demotions"):
            value = (run.get("meta") or {}).get(key)
            if isinstance(value, int):
                totals[key] = totals.get(key, 0) + value
    return {
        "kind": "metrics",
        "run_id": doc.get("run_id")
        or (runs[0].get("meta") or {}).get("run_id")
        or (runs[0].get("run_id") if runs else None),
        "runs": len(runs),
        "totals": totals,
        "engine_tiers": _engine_tier_counters(runs),
        "distributions": distributions,
    }


# ----------------------------------------------------------------------
# file entry point + rendering


def load_document(path: str | Path) -> dict:
    """Parse one artifact file; raises ``ValueError`` on non-JSON input."""
    text = Path(path).read_text()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not JSON ({exc})") from exc
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return doc


def kind_of(doc: dict) -> str:
    """``"trace"`` or ``"metrics"``, by document shape."""
    return "trace" if "traceEvents" in doc else "metrics"


def inspect_document(doc: dict, top: int = 10) -> dict:
    """Dispatching summary of one loaded artifact document."""
    if kind_of(doc) == "trace":
        return summarize_trace(doc, top=top)
    return summarize_metrics(doc)


def inspect_file(path: str | Path, top: int = 10) -> dict:
    """Load + summarize one artifact file."""
    return inspect_document(load_document(path), top=top)


def validate_document(doc: dict) -> list[str]:
    """Dispatching validation of one loaded artifact document."""
    if kind_of(doc) == "trace":
        return validate_trace(doc)
    return validate_metrics(doc)


def _fmt_us(us: float) -> str:
    if us >= 1_000_000:
        return f"{us / 1e6:.2f}s"
    if us >= 1_000:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.1f}us"


def render(summary: dict) -> str:
    """Terminal report for one summary dict (deterministic)."""
    lines: list[str] = []
    if summary["kind"] == "trace":
        lines.append(
            f"trace  run {summary['run_id'] or '?'}  "
            f"{summary['events']} events, {summary['spans']} spans, "
            f"{len(summary['processes'])} process(es)"
        )
        if summary["by_name"]:
            lines.append("span census (count, total, max):")
            for name, entry in summary["by_name"].items():
                lines.append(
                    f"  {name:<24} x{entry['count']:<6} "
                    f"total {_fmt_us(entry['total_us']):>10}  "
                    f"max {_fmt_us(entry['max_us']):>10}"
                )
        if summary["slowest"]:
            lines.append("slowest spans:")
            for rank, row in enumerate(summary["slowest"], start=1):
                lines.append(
                    f"  {rank:>2}. {row['name']:<24} {_fmt_us(row['dur_us']):>10}  "
                    f"at {_fmt_us(row['ts_us'])} (pid {row['pid']}, {row['lane']})"
                )
        if summary["hot_regions"]:
            lines.append("hottest regions (peak PCC frequency):")
            for pid, region, freq in summary["hot_regions"]:
                lines.append(f"  pid {pid} region {region:#x}  freq {freq}")
    else:
        lines.append(
            f"metrics  run {summary['run_id'] or '?'}  "
            f"{summary['runs']} run(s)"
        )
        if summary["totals"]:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(summary["totals"].items()))
            lines.append(f"totals: {parts}")
        tiers = summary.get("engine_tiers") or {}
        plain = {k: v for k, v in tiers.items()
                 if not k.startswith("columnar_epoch_p2_")}
        if plain:
            lines.append("engine tier counters (all cores, all runs):")
            for counter, value in plain.items():
                lines.append(f"  {counter:<24} {value:>12,}")
            buckets = {
                int(k.rsplit("_", 1)[1]): v
                for k, v in tiers.items()
                if k.startswith("columnar_epoch_p2_")
            }
            if buckets:
                census = " ".join(
                    f"2^{k}:{buckets[k]}" for k in sorted(buckets)
                )
                lines.append(f"  epoch-length histogram   {census}")
        if summary["distributions"]:
            lines.append("distributions:")
            for name, dist in summary["distributions"].items():
                unit = f" {dist['unit']}" if dist["unit"] else ""
                lines.append(
                    f"  {name}: n={dist['count']} mean={dist['mean']:.1f} "
                    f"p50={dist['p50']:.1f} p95={dist['p95']:.1f} "
                    f"p99={dist['p99']:.1f}"
                    f" (min {dist['min']:.1f}, max {dist['max']:.1f}{unit})"
                )
        else:
            lines.append("distributions: none recorded (run was not observed)")
    return "\n".join(lines)
