"""Run inspector: summarize and validate observability artifacts.

``repro inspect <file>`` accepts either artifact the pipeline writes —

* a **metrics** file (``repro.metrics/v1``): one registry export or the
  collector aggregate ``--metrics-out`` produces, and
* a **trace** file (``repro.trace/v1``): the Chrome trace-event JSON
  ``--trace-out`` produces —

plus the two live-telemetry artifacts the streaming plane produces —

* a **progress** spool or snapshot (``repro.progress/v1``): the JSONL
  files ``REPRO_PROGRESS_SPOOL`` collects, or one snapshot object, and
* an **events** capture: SSE events recorded off a
  ``/v1/jobs/<id>/events`` stream (as the serve load harness writes
  them), ``{"events": [{"id", "event", "data"}, ...]}`` —

and prints a terminal report: slowest spans, hottest PCC regions (from
the sampled ``pcc_state`` snapshots), and p50/p95/p99 for every
recorded distribution. ``--check`` additionally validates the document
against its schema and fails on any violation, which is what CI runs
over freshly produced artifacts.

All summaries are plain dicts (JSON-safe) so tests can golden-pin the
rendered text without touching live simulations.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.histo import Histogram
from repro.obs.progress import PROGRESS_SCHEMA
from repro.obs.tracer import TRACE_SCHEMA, thread_lane_name

#: Metrics schema accepted by the inspector (see repro.metrics.registry).
METRICS_SCHEMA = "repro.metrics/v1"

#: Event phases the trace validator accepts (the subset the tracer emits).
_KNOWN_PHASES = {"X", "i", "M", "s", "f"}

#: Engine tiers a progress snapshot may name (see Machine.run).
_KNOWN_TIERS = {"scalar", "fast", "batch", "columnar"}

#: SSE event names the serving daemon publishes.
_KNOWN_EVENTS = {"progress", "state", "degraded", "breaker", "message"}

#: ``state`` event payload values (see repro.serve.lifecycle).
_KNOWN_STATES = {"queued", "running", "done", "failed", "expired"}


# ----------------------------------------------------------------------
# validation


def validate_trace(doc) -> list[str]:
    """Schema violations in a trace document (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["trace document is not a JSON object"]
    other = doc.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != TRACE_SCHEMA:
        errors.append(f"otherData.schema is not {TRACE_SCHEMA!r}")
    elif not other.get("run_id"):
        errors.append("otherData.run_id is missing")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return errors + ["traceEvents is not a list"]
    for index, event in enumerate(events):
        if len(errors) >= 20:
            errors.append("... further errors suppressed")
            break
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int):
            errors.append(f"{where}: missing pid")
        if ph != "M":
            if not isinstance(event.get("ts"), (int, float)):
                errors.append(f"{where}: missing ts")
        if ph == "X":
            if not isinstance(event.get("dur"), (int, float)):
                errors.append(f"{where}: X event missing dur")
            args = event.get("args")
            if not isinstance(args, dict) or "span" not in args:
                errors.append(f"{where}: X event missing args.span")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: instant event missing scope")
        if ph in ("s", "f") and "id" not in event:
            errors.append(f"{where}: flow event missing id")
    return errors


def _validate_one_run(doc, where: str, errors: list[str]) -> None:
    if not isinstance(doc, dict):
        errors.append(f"{where}: not an object")
        return
    if doc.get("schema") != METRICS_SCHEMA:
        errors.append(f"{where}: schema is not {METRICS_SCHEMA!r}")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        errors.append(f"{where}: counters is not an object")
    elif any(not isinstance(v, int) for v in counters.values()):
        errors.append(f"{where}: non-integer counter value")
    if not isinstance(doc.get("samples"), list):
        errors.append(f"{where}: samples is not a list")
    distributions = doc.get("distributions")
    if not isinstance(distributions, dict):
        errors.append(f"{where}: distributions is not an object")
        return
    for name, dist in distributions.items():
        if not isinstance(dist, dict):
            errors.append(f"{where}: distribution {name!r} is not an object")
            continue
        for key in ("count", "sum", "percentiles", "buckets"):
            if key not in dist:
                errors.append(f"{where}: distribution {name!r} missing {key!r}")


def validate_metrics(doc) -> list[str]:
    """Schema violations in a metrics document (single run or aggregate)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["metrics document is not a JSON object"]
    if "runs" in doc:
        if doc.get("schema") != METRICS_SCHEMA:
            errors.append(f"schema is not {METRICS_SCHEMA!r}")
        if not doc.get("run_id"):
            errors.append("run_id is missing")
        runs = doc.get("runs")
        if not isinstance(runs, list):
            return errors + ["runs is not a list"]
        for index, run in enumerate(runs):
            _validate_one_run(run, f"runs[{index}]", errors)
    else:
        _validate_one_run(doc, "document", errors)
    return errors


def _validate_snapshot(snapshot, where: str, errors: list[str]) -> None:
    """One ``repro.progress/v1`` snapshot's field contract."""
    if not isinstance(snapshot, dict):
        errors.append(f"{where}: not an object")
        return
    if snapshot.get("schema") != PROGRESS_SCHEMA:
        errors.append(f"{where}: schema is not {PROGRESS_SCHEMA!r}")
    if not snapshot.get("run_id"):
        errors.append(f"{where}: run_id is missing")
    for field, kind in (
        ("pid", int), ("seq", int), ("ts_ms", int),
        ("records_done", int), ("accesses", int), ("ticks", int),
        ("promotions", int), ("epochs", int),
    ):
        value = snapshot.get(field)
        if not isinstance(value, kind) or isinstance(value, bool) or value < 0:
            errors.append(f"{where}: {field} is not a non-negative integer")
    if not isinstance(snapshot.get("seq"), bool) and snapshot.get("seq") == 0:
        errors.append(f"{where}: seq must start at 1")
    total = snapshot.get("records_total")
    if total is not None:
        if not isinstance(total, int) or isinstance(total, bool) or total < 0:
            errors.append(f"{where}: records_total is not an integer")
        elif (isinstance(snapshot.get("records_done"), int)
              and snapshot["records_done"] > total):
            errors.append(f"{where}: records_done exceeds records_total")
    if snapshot.get("tier") not in _KNOWN_TIERS:
        errors.append(f"{where}: unknown tier {snapshot.get('tier')!r}")
    rate = snapshot.get("rate_rps")
    if not isinstance(rate, (int, float)) or isinstance(rate, bool) or rate < 0:
        errors.append(f"{where}: rate_rps is not a non-negative number")
    eta = snapshot.get("eta_s")
    if eta is not None and (
        not isinstance(eta, (int, float)) or isinstance(eta, bool) or eta < 0
    ):
        errors.append(f"{where}: eta_s is neither null nor a non-negative number")
    if not isinstance(snapshot.get("final"), bool):
        errors.append(f"{where}: final is not a boolean")
    job = snapshot.get("job")
    if job is not None and not isinstance(job, str):
        errors.append(f"{where}: job is neither null nor a string")


def validate_progress(doc) -> list[str]:
    """Schema violations in a progress artifact (snapshot or spool).

    Beyond per-snapshot field checks, a multi-snapshot document gets the
    stream invariants: within one emitter (``run_id``, ``pid``), ``seq``
    strictly increases and nothing follows a ``final`` snapshot.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["progress document is not a JSON object"]
    snapshots = doc.get("snapshots")
    if snapshots is None:
        _validate_snapshot(doc, "snapshot", errors)
        return errors
    if not isinstance(snapshots, list):
        return ["snapshots is not a list"]
    last_seq: dict[tuple, int] = {}
    finished: set = set()
    for index, snapshot in enumerate(snapshots):
        if len(errors) >= 20:
            errors.append("... further errors suppressed")
            break
        where = f"snapshots[{index}]"
        _validate_snapshot(snapshot, where, errors)
        if not isinstance(snapshot, dict):
            continue
        emitter = (snapshot.get("run_id"), snapshot.get("pid"),
                   snapshot.get("job"))
        seq = snapshot.get("seq")
        if isinstance(seq, int):
            if emitter in finished:
                errors.append(f"{where}: snapshot after a final snapshot")
            if seq <= last_seq.get(emitter, 0):
                errors.append(
                    f"{where}: seq {seq} does not increase "
                    f"(previous {last_seq.get(emitter, 0)})"
                )
            last_seq[emitter] = seq
        if snapshot.get("final") is True:
            finished.add(emitter)
    return errors


def validate_events(doc) -> list[str]:
    """Schema violations in a captured SSE event stream."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["events document is not a JSON object"]
    events = doc.get("events")
    if not isinstance(events, list):
        return ["events is not a list"]
    last_id = 0
    for index, event in enumerate(events):
        if len(errors) >= 20:
            errors.append("... further errors suppressed")
            break
        where = f"events[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        name = event.get("event")
        if name not in _KNOWN_EVENTS:
            errors.append(f"{where}: unknown event {name!r}")
            continue
        event_id = event.get("id")
        if event_id is not None:
            if not isinstance(event_id, int) or event_id < 1:
                errors.append(f"{where}: id is not a positive integer")
            elif event_id <= last_id:
                errors.append(
                    f"{where}: id {event_id} does not increase "
                    f"(previous {last_id})"
                )
            else:
                last_id = event_id
        data = event.get("data")
        if not isinstance(data, dict):
            errors.append(f"{where}: data is not an object")
            continue
        if name == "progress":
            _validate_snapshot(data, where, errors)
        elif name == "state":
            if data.get("state") not in _KNOWN_STATES:
                errors.append(f"{where}: unknown state {data.get('state')!r}")
            if not data.get("job"):
                errors.append(f"{where}: state event missing job")
        elif name == "degraded":
            if not isinstance(data.get("tags"), list):
                errors.append(f"{where}: degraded event missing tags")
        elif name == "breaker":
            if not data.get("state"):
                errors.append(f"{where}: breaker event missing state")
    return errors


# ----------------------------------------------------------------------
# summaries


def summarize_trace(doc: dict, top: int = 10) -> dict:
    """Digest of one trace file: span census, slowest spans, hot regions."""
    events = [e for e in doc.get("traceEvents", []) if isinstance(e, dict)]
    spans = [e for e in events if e.get("ph") == "X"]
    by_name: dict[str, dict] = {}
    for event in spans:
        entry = by_name.setdefault(
            event.get("name", "?"), {"count": 0, "total_us": 0.0, "max_us": 0.0}
        )
        dur = float(event.get("dur", 0.0))
        entry["count"] += 1
        entry["total_us"] = round(entry["total_us"] + dur, 3)
        entry["max_us"] = max(entry["max_us"], dur)
    slowest = sorted(
        spans,
        key=lambda e: (-float(e.get("dur", 0.0)), e.get("ts", 0.0), e.get("name", "")),
    )[:top]
    # Hottest regions: peak PCC frequency per (pid, region) across every
    # sampled pcc_state snapshot.
    peak: dict[tuple[int, int], int] = {}
    for event in events:
        if event.get("ph") != "i" or event.get("name") != "pcc_state":
            continue
        for pid, region, freq in (event.get("args") or {}).get("top_regions", []):
            key = (int(pid), int(region))
            peak[key] = max(peak.get(key, 0), int(freq))
    hot_regions = sorted(
        ([pid, region, freq] for (pid, region), freq in peak.items()),
        key=lambda row: (-row[2], row[0], row[1]),
    )[:top]
    return {
        "kind": "trace",
        "run_id": (doc.get("otherData") or {}).get("run_id"),
        "events": len(events),
        "spans": len(spans),
        "processes": sorted({e.get("pid") for e in spans}),
        "by_name": dict(sorted(by_name.items())),
        "slowest": [
            {
                "name": e.get("name"),
                "dur_us": float(e.get("dur", 0.0)),
                "ts_us": float(e.get("ts", 0.0)),
                "pid": e.get("pid"),
                "lane": thread_lane_name(int(e.get("tid", 0))),
                "span": (e.get("args") or {}).get("span"),
            }
            for e in slowest
        ],
        "hot_regions": hot_regions,
    }


def _merged_distributions(runs: list[dict]) -> dict[str, Histogram]:
    merged: dict[str, Histogram] = {}
    for run in runs:
        for name, dist in (run.get("distributions") or {}).items():
            histogram = Histogram.from_dict(name, dist)
            if name in merged:
                merged[name].merge(histogram)
            else:
                merged[name] = histogram
    return dict(sorted(merged.items()))


def _engine_tier_counters(runs: list[dict]) -> dict[str, int]:
    """Adaptive-tier retirement counters, summed across cores and runs.

    The pipeline exports its tier instrumentation per core as
    ``core<N>.fastpath.<counter>``; the inspector folds those into one
    machine-wide view (fast_hits, batch_retired, columnar_retired,
    fallbacks, ...) plus the power-of-two epoch-length histogram
    (``columnar_epoch_p2_<k>`` buckets).
    """
    totals: dict[str, int] = {}
    for run in runs:
        for name, value in (run.get("counters") or {}).items():
            if ".fastpath." not in name or not isinstance(value, int):
                continue
            counter = name.split(".fastpath.", 1)[1]
            totals[counter] = totals.get(counter, 0) + value
    return dict(sorted(totals.items()))


def summarize_metrics(doc: dict) -> dict:
    """Digest of one metrics file; distributions merged across runs."""
    runs = doc["runs"] if "runs" in doc else [doc]
    merged = _merged_distributions(runs)
    distributions = {}
    for name, histogram in merged.items():
        distributions[name] = {
            "unit": histogram.unit,
            "count": histogram.count,
            "mean": round(histogram.mean, 6),
            "min": histogram.min if histogram.min is not None else 0.0,
            "max": histogram.max if histogram.max is not None else 0.0,
            **histogram.percentiles(),
        }
    totals: dict[str, int] = {}
    for run in runs:
        for key in ("accesses", "walks", "promotions", "demotions"):
            value = (run.get("meta") or {}).get(key)
            if isinstance(value, int):
                totals[key] = totals.get(key, 0) + value
    return {
        "kind": "metrics",
        "run_id": doc.get("run_id")
        or (runs[0].get("meta") or {}).get("run_id")
        or (runs[0].get("run_id") if runs else None),
        "runs": len(runs),
        "totals": totals,
        "engine_tiers": _engine_tier_counters(runs),
        "distributions": distributions,
    }


def summarize_progress(doc: dict) -> dict:
    """Digest of a progress artifact: per-job completion and throughput."""
    snapshots = doc.get("snapshots")
    if snapshots is None:
        snapshots = [doc]
    snapshots = [s for s in snapshots if isinstance(s, dict)]
    jobs: dict[str, dict] = {}
    for snapshot in snapshots:
        label = snapshot.get("job") or "(unlabeled)"
        entry = jobs.setdefault(label, {
            "snapshots": 0, "emitters": set(), "final": False,
            "records_done": 0, "records_total": None,
            "accesses": 0, "promotions": 0, "epochs": 0,
            "tier": None, "peak_rate_rps": 0.0,
        })
        entry["snapshots"] += 1
        entry["emitters"].add(
            (snapshot.get("run_id"), snapshot.get("pid"))
        )
        entry["final"] = entry["final"] or bool(snapshot.get("final"))
        for field in ("records_done", "accesses", "promotions", "epochs"):
            value = snapshot.get(field)
            if isinstance(value, int):
                entry[field] = max(entry[field], value)
        total = snapshot.get("records_total")
        if isinstance(total, int):
            entry["records_total"] = total
        entry["tier"] = snapshot.get("tier") or entry["tier"]
        rate = snapshot.get("rate_rps")
        if isinstance(rate, (int, float)):
            entry["peak_rate_rps"] = max(entry["peak_rate_rps"], float(rate))
    for entry in jobs.values():
        entry["emitters"] = len(entry["emitters"])
    return {
        "kind": "progress",
        "snapshots": len(snapshots),
        "jobs": dict(sorted(jobs.items())),
    }


def summarize_events(doc: dict) -> dict:
    """Digest of a captured SSE stream: census plus the state story."""
    events = [e for e in doc.get("events", []) if isinstance(e, dict)]
    census: dict[str, int] = {}
    states: list[str] = []
    progress = 0
    for event in events:
        name = event.get("event") or "?"
        census[name] = census.get(name, 0) + 1
        data = event.get("data") or {}
        if name == "state" and data.get("state"):
            states.append(data["state"])
        if name == "progress":
            progress += 1
    return {
        "kind": "events",
        "events": len(events),
        "census": dict(sorted(census.items())),
        "states": states,
        "progress_events": progress,
        "terminal": states[-1] if states and states[-1] in
        ("done", "failed", "expired") else None,
    }


# ----------------------------------------------------------------------
# file entry point + rendering


def load_document(path: str | Path) -> dict:
    """Parse one artifact file; raises ``ValueError`` on non-JSON input.

    A progress spool file is JSON *Lines*, not one JSON value, so when
    whole-file parsing fails the loader retries line-by-line and wraps
    the snapshots as ``{"schema": ..., "snapshots": [...]}`` — the
    shape the progress validator and summarizer accept directly.
    """
    text = Path(path).read_text()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        lines = [line for line in text.splitlines() if line.strip()]
        try:
            snapshots = [json.loads(line) for line in lines]
        except json.JSONDecodeError:
            raise ValueError(f"{path}: not JSON ({exc})") from exc
        if not snapshots or not all(isinstance(s, dict) for s in snapshots):
            raise ValueError(f"{path}: not JSON ({exc})") from exc
        return {"schema": PROGRESS_SCHEMA, "snapshots": snapshots}
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return doc


def kind_of(doc: dict) -> str:
    """One of ``trace``/``progress``/``events``/``metrics``, by shape."""
    if "traceEvents" in doc:
        return "trace"
    if doc.get("schema") == PROGRESS_SCHEMA or "snapshots" in doc:
        return "progress"
    if "events" in doc and "counters" not in doc and "runs" not in doc:
        return "events"
    return "metrics"


def inspect_document(doc: dict, top: int = 10) -> dict:
    """Dispatching summary of one loaded artifact document."""
    kind = kind_of(doc)
    if kind == "trace":
        return summarize_trace(doc, top=top)
    if kind == "progress":
        return summarize_progress(doc)
    if kind == "events":
        return summarize_events(doc)
    return summarize_metrics(doc)


def inspect_file(path: str | Path, top: int = 10) -> dict:
    """Load + summarize one artifact file."""
    return inspect_document(load_document(path), top=top)


def validate_document(doc: dict) -> list[str]:
    """Dispatching validation of one loaded artifact document."""
    kind = kind_of(doc)
    if kind == "trace":
        return validate_trace(doc)
    if kind == "progress":
        return validate_progress(doc)
    if kind == "events":
        return validate_events(doc)
    return validate_metrics(doc)


def _fmt_us(us: float) -> str:
    if us >= 1_000_000:
        return f"{us / 1e6:.2f}s"
    if us >= 1_000:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.1f}us"


def render(summary: dict) -> str:
    """Terminal report for one summary dict (deterministic)."""
    lines: list[str] = []
    if summary["kind"] == "trace":
        lines.append(
            f"trace  run {summary['run_id'] or '?'}  "
            f"{summary['events']} events, {summary['spans']} spans, "
            f"{len(summary['processes'])} process(es)"
        )
        if summary["by_name"]:
            lines.append("span census (count, total, max):")
            for name, entry in summary["by_name"].items():
                lines.append(
                    f"  {name:<24} x{entry['count']:<6} "
                    f"total {_fmt_us(entry['total_us']):>10}  "
                    f"max {_fmt_us(entry['max_us']):>10}"
                )
        if summary["slowest"]:
            lines.append("slowest spans:")
            for rank, row in enumerate(summary["slowest"], start=1):
                lines.append(
                    f"  {rank:>2}. {row['name']:<24} {_fmt_us(row['dur_us']):>10}  "
                    f"at {_fmt_us(row['ts_us'])} (pid {row['pid']}, {row['lane']})"
                )
        if summary["hot_regions"]:
            lines.append("hottest regions (peak PCC frequency):")
            for pid, region, freq in summary["hot_regions"]:
                lines.append(f"  pid {pid} region {region:#x}  freq {freq}")
    elif summary["kind"] == "progress":
        lines.append(
            f"progress  {summary['snapshots']} snapshot(s), "
            f"{len(summary['jobs'])} job(s)"
        )
        for label, entry in summary["jobs"].items():
            total = entry["records_total"]
            done = entry["records_done"]
            pct = f"{100.0 * done / total:.1f}%" if total else "?"
            state = "final" if entry["final"] else "in flight"
            lines.append(
                f"  {label}: {done}/{total or '?'} records ({pct}), "
                f"tier {entry['tier'] or '?'}, "
                f"peak {entry['peak_rate_rps']:,.0f} rec/s, "
                f"{entry['snapshots']} snapshot(s) from "
                f"{entry['emitters']} emitter(s), {state}"
            )
    elif summary["kind"] == "events":
        census = ", ".join(
            f"{name}:{count}" for name, count in summary["census"].items()
        )
        lines.append(f"events  {summary['events']} event(s)  [{census}]")
        if summary["states"]:
            lines.append(f"state story: {' -> '.join(summary['states'])}")
        lines.append(
            f"progress events: {summary['progress_events']}, "
            f"terminal state: {summary['terminal'] or 'none'}"
        )
    else:
        lines.append(
            f"metrics  run {summary['run_id'] or '?'}  "
            f"{summary['runs']} run(s)"
        )
        if summary["totals"]:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(summary["totals"].items()))
            lines.append(f"totals: {parts}")
        tiers = summary.get("engine_tiers") or {}
        plain = {k: v for k, v in tiers.items()
                 if not k.startswith("columnar_epoch_p2_")}
        if plain:
            lines.append("engine tier counters (all cores, all runs):")
            for counter, value in plain.items():
                lines.append(f"  {counter:<24} {value:>12,}")
            buckets = {
                int(k.rsplit("_", 1)[1]): v
                for k, v in tiers.items()
                if k.startswith("columnar_epoch_p2_")
            }
            if buckets:
                census = " ".join(
                    f"2^{k}:{buckets[k]}" for k in sorted(buckets)
                )
                lines.append(f"  epoch-length histogram   {census}")
        if summary["distributions"]:
            lines.append("distributions:")
            for name, dist in summary["distributions"].items():
                unit = f" {dist['unit']}" if dist["unit"] else ""
                lines.append(
                    f"  {name}: n={dist['count']} mean={dist['mean']:.1f} "
                    f"p50={dist['p50']:.1f} p95={dist['p95']:.1f} "
                    f"p99={dist['p99']:.1f}"
                    f" (min {dist['min']:.1f}, max {dist['max']:.1f}{unit})"
                )
        else:
            lines.append("distributions: none recorded (run was not observed)")
    return "\n".join(lines)
