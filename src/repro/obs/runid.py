"""One stable run id per pipeline invocation.

A run id names *one CLI invocation (or API session)* — not one
simulation — so every artifact that invocation produces (metrics
aggregate, per-run exports, journal shards, resilience publications,
structured logs, trace files and their worker shards) carries the same
identifier and ``repro inspect`` can correlate them.

The id propagates to worker processes through ``REPRO_RUN_ID``: the
parent exports it before fanning out, forked and spawned workers alike
read it back, so shards written by any process of the invocation agree.
"""

from __future__ import annotations

import binascii
import os

#: Environment variable carrying the invocation's run id to workers.
RUN_ID_ENV = "REPRO_RUN_ID"

#: Lazily generated process-local fallback (no env, no explicit set).
_GENERATED: str | None = None


def new_run_id() -> str:
    """A fresh 12-hex-digit run id (48 random bits)."""
    return binascii.hexlify(os.urandom(6)).decode()


def current_run_id() -> str:
    """The invocation's run id.

    Resolution order: ``$REPRO_RUN_ID`` (set by the CLI or an enclosing
    parent process), then a process-local id generated on first use.
    The generated fallback is *not* exported to the environment — only
    :func:`set_run_id` publishes an id to child processes.
    """
    env = os.environ.get(RUN_ID_ENV)
    if env:
        return env
    global _GENERATED
    if _GENERATED is None:
        _GENERATED = new_run_id()
    return _GENERATED


def set_run_id(run_id: str | None = None) -> str:
    """Pin the invocation's run id and export it to child processes.

    ``None`` keeps an id already present in the environment, else mints
    a fresh one. Returns the effective id.
    """
    if run_id is None:
        run_id = os.environ.get(RUN_ID_ENV) or new_run_id()
    os.environ[RUN_ID_ENV] = run_id
    return run_id
