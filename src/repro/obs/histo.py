"""Log-bucketed latency histograms for the ``distributions`` export.

A :class:`Histogram` counts samples into geometric buckets with fixed,
instance-independent boundaries: bucket ``i`` spans
``[RATIO**i, RATIO**(i+1))`` with ``RATIO = 2**(1/8)`` (eight buckets
per octave, ~9% relative width). Fixed boundaries make histograms from
different processes and different runs mergeable bucket-by-bucket, and
bound the error of interpolated percentiles by one bucket's width —
the property the numpy-reference tests assert.

Recording is O(1) (one ``log`` and one dict increment), so hot-ish
paths like per-walk latency can record unconditionally once a run is
observed. Values ``<= 0`` land in a dedicated underflow bucket and
participate in percentiles as zero.
"""

from __future__ import annotations

import math
from typing import Iterable

#: Geometric bucket growth factor: eight buckets per power of two.
RATIO = 2.0 ** 0.125

_LOG_RATIO = math.log(RATIO)

#: Sentinel index for samples <= 0 (cycle counts are never negative,
#: but a zero-duration span must not crash the log).
_UNDERFLOW = -(10**9)


def bucket_index(value: float) -> int:
    """Index of the geometric bucket containing ``value``."""
    if value <= 0:
        return _UNDERFLOW
    return math.floor(math.log(value) / _LOG_RATIO + 1e-12)


def bucket_bounds(index: int) -> tuple[float, float]:
    """``[lo, hi)`` boundaries of bucket ``index``."""
    if index == _UNDERFLOW:
        return (0.0, 0.0)
    return (RATIO**index, RATIO ** (index + 1))


class Histogram:
    """One named distribution: sparse geometric buckets plus extrema."""

    __slots__ = ("name", "unit", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.counts: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    # ------------------------------------------------------------------
    # recording

    def record(self, value: float) -> None:
        """Count one sample."""
        index = bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def record_many(self, values: Iterable[float]) -> None:
        """Count every sample in ``values``."""
        for value in values:
            self.record(value)

    # ------------------------------------------------------------------
    # reading

    @property
    def mean(self) -> float:
        """Arithmetic mean of every recorded sample."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Interpolated ``q``-th percentile (0..100).

        Uses numpy's ``linear`` convention — target rank
        ``q/100 * (count - 1)`` — resolved to a bucket by cumulative
        count, then linearly interpolated inside the bucket. Exact to
        within one bucket's ~9% relative width, which is what the
        reference tests assert.
        """
        if not self.count:
            return 0.0
        if self.count == 1:
            return float(self.min or 0.0)
        target = (q / 100.0) * (self.count - 1)
        cumulative = 0
        for index in sorted(self.counts):
            bucket_count = self.counts[index]
            if cumulative + bucket_count > target:
                lo, hi = bucket_bounds(index)
                # clamp the edge buckets to the observed extrema so the
                # interpolation never reports a value outside the data
                lo = max(lo, self.min or lo) if index != _UNDERFLOW else 0.0
                hi = min(hi, (self.max or hi) if self.max is not None else hi)
                if bucket_count <= 1 or hi <= lo:
                    return lo
                fraction = (target - cumulative) / bucket_count
                return lo + fraction * (hi - lo)
            cumulative += bucket_count
        return float(self.max or 0.0)

    def percentiles(self, qs: tuple[float, ...] = (50.0, 95.0, 99.0)) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` for the given ``qs``."""
        return {f"p{q:g}": round(self.percentile(q), 6) for q in qs}

    # ------------------------------------------------------------------
    # merge / serialization

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s samples into this histogram (same bounds)."""
        for index, bucket_count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + bucket_count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    def as_dict(self) -> dict:
        """JSON-safe form for the ``distributions`` export section."""
        return {
            "unit": self.unit,
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 6),
            "percentiles": self.percentiles(),
            # [lo, hi, count] per non-empty bucket, ascending
            "buckets": [
                [round(bucket_bounds(i)[0], 6), round(bucket_bounds(i)[1], 6), c]
                for i, c in sorted(self.counts.items())
            ],
        }

    @classmethod
    def from_dict(cls, name: str, doc: dict) -> "Histogram":
        """Rebuild a histogram from its :meth:`as_dict` form.

        Bucket boundaries are fixed, so the stored ``lo`` edge maps
        straight back to a bucket index; merged inspect views rely on
        this round trip.
        """
        histogram = cls(name, unit=doc.get("unit", ""))
        histogram.count = int(doc.get("count", 0))
        histogram.total = float(doc.get("sum", 0.0))
        histogram.min = doc.get("min")
        histogram.max = doc.get("max")
        for lo, _hi, bucket_count in doc.get("buckets", []):
            index = _UNDERFLOW if lo <= 0 else bucket_index(lo * RATIO**0.5)
            histogram.counts[index] = histogram.counts.get(index, 0) + int(bucket_count)
        return histogram
