"""Sliding-window rates and percentiles over a metrics registry.

The bus (:mod:`repro.resilience.bus`) and the per-run registries only
carry *monotone totals* — correct for post-hoc aggregation, useless for
"how busy is the server right now". :class:`WindowedAggregator` closes
that gap: it periodically snapshots a registry's counters and histogram
buckets into a ring of timestamped samples and answers rate and
percentile queries over the trailing 10s/1m/5m windows by differencing
the window's edge samples.

Differencing works because everything sampled is monotone: counters
only grow, and histogram buckets only gain counts (fixed geometric
boundaries make bucket-wise subtraction exact — the same property that
makes cross-process merges exact). The windowed histogram is therefore
a true histogram of *only the samples recorded inside the window*, and
its percentiles come from the ordinary interpolation path.

The aggregator is passive: something must call :meth:`tick` on a
cadence (the serving daemon runs a ~2s ticker task; tests inject a
fake clock and tick manually). Queries between ticks see the window
ending at the newest sample, not at "now" — a deliberate trade that
keeps scrapes allocation-light.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable

from repro.obs.histo import _UNDERFLOW, Histogram, bucket_bounds

#: Named trailing windows answered by the aggregator, in seconds.
WINDOWS: dict[str, float] = {"10s": 10.0, "1m": 60.0, "5m": 300.0}

#: Default seconds between samples when the owner runs a ticker.
DEFAULT_RESOLUTION_S = 2.0


class WindowedAggregator:
    """Ring of registry samples answering trailing-window queries."""

    def __init__(
        self,
        registry=None,
        clock: Callable[[], float] = time.monotonic,
        resolution_s: float = DEFAULT_RESOLUTION_S,
    ) -> None:
        if registry is None:
            from repro.resilience import bus

            registry = bus.registry()
        self.registry = registry
        self.resolution_s = resolution_s
        self._clock = clock
        self._span_s = max(WINDOWS.values())
        #: (t, {counter: value}, {hist: (counts, count, total)})
        self._samples: deque[tuple[float, dict, dict]] = deque()

    # ------------------------------------------------------------------
    # sampling

    def tick(self) -> None:
        """Record one sample and evict those past the longest window."""
        now = self._clock()
        counters = self.registry.snapshot()
        hists = {
            name: (dict(h.counts), h.count, h.total)
            for name, h in self.registry.histograms().items()
        }
        self._samples.append((now, counters, hists))
        horizon = now - self._span_s - self.resolution_s
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def __len__(self) -> int:
        return len(self._samples)

    # ------------------------------------------------------------------
    # queries

    def _edges(self, window: str):
        """(oldest-in-window, newest) sample pair, or ``None`` if <2."""
        if window not in WINDOWS:
            raise KeyError(f"unknown window {window!r} (have {sorted(WINDOWS)})")
        if len(self._samples) < 2:
            return None
        newest = self._samples[-1]
        cutoff = newest[0] - WINDOWS[window]
        oldest = None
        for sample in self._samples:
            if sample[0] >= cutoff:
                oldest = sample
                break
        if oldest is None or oldest is newest or newest[0] <= oldest[0]:
            return None
        return oldest, newest

    def rates(self, window: str = "1m") -> dict[str, float]:
        """Per-counter events/second over the trailing window.

        Empty when fewer than two samples fall inside the window (a
        just-started server has no rate yet, not a zero rate).
        """
        edges = self._edges(window)
        if edges is None:
            return {}
        (t0, old, _), (t1, new, _) = edges
        dt = t1 - t0
        return {
            name: round(max(0.0, value - old.get(name, 0)) / dt, 6)
            for name, value in new.items()
        }

    def windowed_histogram(self, name: str, window: str = "1m") -> Histogram | None:
        """Histogram of only the samples recorded inside the window.

        Bucket-wise subtraction of the edge snapshots; exact because
        boundaries are fixed and buckets are monotone. The extrema are
        approximated by the outermost non-empty delta buckets' bounds
        (the true min/max of just-the-window samples is not recoverable
        from totals), keeping percentile error within one bucket width.
        ``None`` when the histogram is absent or the window has no
        usable edge pair.
        """
        edges = self._edges(window)
        if edges is None:
            return None
        (_, _, old_h), (_, _, new_h) = edges
        if name not in new_h:
            return None
        new_counts, new_count, new_total = new_h[name]
        old_counts, old_count, old_total = old_h.get(name, ({}, 0, 0.0))
        unit = ""
        live = self.registry.histograms().get(name)
        if live is not None:
            unit = live.unit
        delta = Histogram(name, unit=unit)
        for index, count in new_counts.items():
            d = count - old_counts.get(index, 0)
            if d > 0:
                delta.counts[index] = d
        delta.count = max(0, new_count - old_count)
        delta.total = max(0.0, new_total - old_total)
        if delta.counts:
            indices = sorted(delta.counts)
            lo_idx, hi_idx = indices[0], indices[-1]
            delta.min = 0.0 if lo_idx == _UNDERFLOW else bucket_bounds(lo_idx)[0]
            delta.max = 0.0 if hi_idx == _UNDERFLOW else bucket_bounds(hi_idx)[1]
        return delta

    def percentiles(
        self,
        name: str,
        window: str = "1m",
        qs: tuple[float, ...] = (50.0, 95.0, 99.0),
    ) -> dict[str, float]:
        """Windowed percentiles for one histogram (``{}`` when empty)."""
        delta = self.windowed_histogram(name, window)
        if delta is None or not delta.count:
            return {}
        return delta.percentiles(qs)

    def summary(self, windows: tuple[str, ...] = ("10s", "1m", "5m")) -> dict:
        """Rates plus histogram digests for every requested window.

        The shape feeding ``/v1/metrics`` and the SSE metrics frames:
        ``{window: {"rates": {...}, "histograms": {name: digest}}}``
        with zero-rate counters elided to keep payloads small.
        """
        doc: dict = {}
        for window in windows:
            rates = {k: v for k, v in self.rates(window).items() if v > 0}
            hists = {}
            for name in self.registry.histograms():
                delta = self.windowed_histogram(name, window)
                if delta is not None and delta.count:
                    hists[name] = {
                        "count": delta.count,
                        "mean": round(delta.mean, 6),
                        **delta.percentiles(),
                    }
            doc[window] = {"rates": rates, "histograms": hists}
        return doc
