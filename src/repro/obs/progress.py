"""Live job-progress reporting (``repro.progress/v1``).

The streaming counterpart of :mod:`repro.obs.tracer`: where the tracer
records *what happened* for post-hoc inspection, the progress reporter
answers *how far along is this run, right now* — accesses retired,
epochs, OS ticks, promotions, the engine tier currently executing, and
an ETA derived from a throughput EWMA.

Like every ``repro.obs`` facility it is **off by default and free when
disabled**: :func:`progress_for_run` returns ``None`` unless a sink is
installed, and the engine's hot loop guards on ``prog is not None``
plus a single :meth:`ProgressReporter.due` clock check per scheduler
round. Crucially, progress is *independent* of the
:class:`~repro.obs.observer.RunObserver` path — an observed run drops
off the columnar tier (per-record hooks), a progress-reported run does
not, which is what makes the bit-identity acceptance gate hold.

Three delivery paths compose freely:

- **thread-scoped sinks** (:func:`progress_scope`): the serving daemon
  labels in-process runs with the job id without touching process
  globals, so concurrent executor threads never cross streams;
- **process-global sinks** (:func:`add_sink`): tests and the CLI;
- **the spool** (``REPRO_PROGRESS_SPOOL``): the cross-process path,
  mirroring ``REPRO_TRACE_SPOOL``. Every reporter appends snapshots to
  ``progress-<runid>-<pid>.jsonl`` as single atomic ``O_APPEND``
  writes; :class:`SpoolTailer` incrementally reads complete lines, so
  a fan-out worker's progress reaches the parent (or the serving
  daemon) with no pipe plumbing. Worker attribution rides per-pool
  initargs (:func:`set_worker_label`), not env vars, so two concurrent
  pools never mislabel each other's snapshots.

Snapshot cadence is ``REPRO_PROGRESS_EVERY_MS`` (default 250 ms; ``0``
emits on every feed point — useful in tests).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable

from repro.obs.runid import current_run_id

#: Versioned schema tag stamped into every snapshot.
PROGRESS_SCHEMA = "repro.progress/v1"

#: Spool directory for cross-process snapshots; presence enables spooling.
SPOOL_ENV = "REPRO_PROGRESS_SPOOL"
#: Minimum milliseconds between snapshots (``0`` = every feed point).
CADENCE_ENV = "REPRO_PROGRESS_EVERY_MS"
#: Default cadence when ``REPRO_PROGRESS_EVERY_MS`` is unset.
DEFAULT_CADENCE_MS = 250

#: EWMA smoothing factor for the records/second throughput estimate.
RATE_ALPHA = 0.3

Sink = Callable[[dict], None]

_SINKS: list[Sink] = []
_LOCAL = threading.local()
_WORKER_LABEL: str | None = None


# ----------------------------------------------------------------------
# sink installation

def add_sink(sink: Sink) -> Sink:
    """Install a process-global snapshot sink; returns it for removal."""
    _SINKS.append(sink)
    return sink


def remove_sink(sink: Sink) -> None:
    """Uninstall a process-global sink (ignores one already removed)."""
    try:
        _SINKS.remove(sink)
    except ValueError:
        pass


@contextmanager
def progress_scope(label: str, sink: Sink | None = None):
    """Label (and optionally sink) runs on this thread only.

    The serving daemon wraps each in-process job execution in a scope so
    snapshots carry the job id; concurrent executor threads each see
    their own scope. Scopes nest; the innermost wins.
    """
    prev = getattr(_LOCAL, "scope", None)
    _LOCAL.scope = (label, sink)
    try:
        yield
    finally:
        _LOCAL.scope = prev


def set_worker_label(label: str | None) -> None:
    """Pin the snapshot label for this (worker) process.

    Called from the fan-out pool initializer with the per-pool
    ``progress_label`` initarg — the process is dedicated to one pool,
    so a process global is the right scope there (unlike the serving
    parent, where threads multiplex jobs and scopes are used instead).
    """
    global _WORKER_LABEL
    _WORKER_LABEL = label


def current_label() -> str | None:
    """The label a reporter created now would carry, or ``None``."""
    scope = getattr(_LOCAL, "scope", None)
    if scope is not None and scope[0] is not None:
        return scope[0]
    return _WORKER_LABEL


# ----------------------------------------------------------------------
# the spool (cross-process path)

class SpoolSink:
    """Append snapshots to ``progress-<runid>-<pid>.jsonl`` in a spool.

    Each snapshot is one JSON line written with a single ``os.write``
    on an ``O_APPEND`` descriptor — atomic on POSIX for writes of this
    size, so concurrent emitters into one directory never interleave
    and a tailer only ever sees whole lines (modulo the final partial
    one, which :class:`SpoolTailer` leaves for the next poll).
    """

    def __init__(self, spool_dir: str | os.PathLike) -> None:
        self.spool_dir = Path(spool_dir)

    def __call__(self, snapshot: dict) -> None:
        path = self.spool_dir / (
            f"progress-{snapshot.get('run_id', 'run')}-{snapshot['pid']}.jsonl"
        )
        line = json.dumps(snapshot, separators=(",", ":")) + "\n"
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)


class SpoolTailer:
    """Incrementally read new snapshots from a progress spool.

    Tracks a byte offset per spool file and only consumes complete
    lines, so it can be polled while emitters are mid-append. Corrupt
    lines (torn by a crashed emitter) are skipped, not fatal.
    """

    def __init__(self, spool_dir: str | os.PathLike) -> None:
        self.spool_dir = Path(spool_dir)
        self._offsets: dict[str, int] = {}

    def poll(self) -> list[dict]:
        """Every snapshot appended since the previous poll, in file order."""
        snapshots: list[dict] = []
        if not self.spool_dir.is_dir():
            return snapshots
        for path in sorted(self.spool_dir.glob("progress-*.jsonl")):
            offset = self._offsets.get(path.name, 0)
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
            except OSError:
                continue
            if not chunk:
                continue
            complete, _, _partial = chunk.rpartition(b"\n")
            if not complete and b"\n" not in chunk:
                continue
            self._offsets[path.name] = offset + len(complete) + 1
            for line in complete.split(b"\n"):
                if not line:
                    continue
                try:
                    snapshot = json.loads(line)
                except (ValueError, UnicodeDecodeError):
                    continue
                if isinstance(snapshot, dict):
                    snapshots.append(snapshot)
        return snapshots


def read_spool(spool_dir: str | os.PathLike) -> list[dict]:
    """Read every complete snapshot currently in ``spool_dir``."""
    return SpoolTailer(spool_dir).poll()


def enable_spool(spool_dir: str | os.PathLike) -> Path:
    """Create ``spool_dir`` and advertise it via ``REPRO_PROGRESS_SPOOL``.

    After this, every run in this process *and* every fan-out worker it
    spawns spools progress snapshots there.
    """
    path = Path(spool_dir)
    path.mkdir(parents=True, exist_ok=True)
    os.environ[SPOOL_ENV] = str(path)
    return path


def disable_spool() -> None:
    """Retract the spool advertisement (existing files are untouched)."""
    os.environ.pop(SPOOL_ENV, None)


# ----------------------------------------------------------------------
# the reporter

def _cadence_s(cadence_ms: float | None) -> float:
    if cadence_ms is None:
        raw = os.environ.get(CADENCE_ENV, "")
        try:
            cadence_ms = float(raw) if raw else DEFAULT_CADENCE_MS
        except ValueError:
            cadence_ms = DEFAULT_CADENCE_MS
    return max(0.0, cadence_ms) / 1000.0


class ProgressReporter:
    """Rate-limited snapshot emitter for one engine run.

    The engine calls :meth:`due` once per scheduler round (one
    ``monotonic()`` read) and :meth:`emit` only when due, so enabled
    progress costs a clock check per round and a dict + sink fan-out
    a few times per second — never per record.
    """

    __slots__ = (
        "label", "total", "run_id", "pid",
        "_sinks", "_clock", "_every_s", "_next_due",
        "_seq", "_rate", "_last_t", "_last_done",
    )

    def __init__(
        self,
        label: str | None,
        total: int | None,
        sinks: list[Sink],
        cadence_ms: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.label = label
        self.total = int(total) if total else None
        self.run_id = current_run_id()
        self.pid = os.getpid()
        self._sinks = list(sinks)
        self._clock = clock
        self._every_s = _cadence_s(cadence_ms)
        # First feed point emits immediately: SSE clients see a
        # snapshot as soon as the run starts, not one cadence later.
        self._next_due = clock()
        self._seq = 0
        self._rate = 0.0
        self._last_t: float | None = None
        self._last_done = 0

    def due(self) -> bool:
        """Whether enough time has passed to emit another snapshot."""
        return self._clock() >= self._next_due

    def emit(
        self,
        *,
        done: int = 0,
        accesses: int = 0,
        ticks: int = 0,
        promotions: int = 0,
        epochs: int = 0,
        tier: str = "scalar",
        final: bool = False,
    ) -> dict:
        """Build one snapshot, update the EWMA, and fan out to sinks.

        Sinks must never break the run: a raising sink is dropped from
        this reporter (the run continues; remaining sinks still fire).
        """
        now = self._clock()
        if self._last_t is not None:
            dt = now - self._last_t
            if dt > 0:
                inst = (done - self._last_done) / dt
                if self._seq <= 1:
                    self._rate = inst
                else:
                    self._rate = RATE_ALPHA * inst + (1.0 - RATE_ALPHA) * self._rate
        self._last_t = now
        self._last_done = done
        self._next_due = now + self._every_s
        self._seq += 1
        eta_s: float | None = None
        if not final and self.total and self._rate > 0 and done < self.total:
            eta_s = round((self.total - done) / self._rate, 3)
        snapshot = {
            "schema": PROGRESS_SCHEMA,
            "run_id": self.run_id,
            "pid": self.pid,
            "job": self.label,
            "seq": self._seq,
            "ts_ms": int(time.time() * 1000),
            "records_done": int(done),
            "records_total": self.total,
            "accesses": int(accesses),
            "ticks": int(ticks),
            "promotions": int(promotions),
            "epochs": int(epochs),
            "tier": tier,
            "rate_rps": round(self._rate, 3),
            "eta_s": eta_s,
            "final": bool(final),
        }
        for sink in list(self._sinks):
            try:
                sink(snapshot)
            except Exception:
                self._sinks.remove(sink)
        return snapshot

    def finish(self, **fields) -> dict:
        """Emit the terminal snapshot (ignores the cadence gate)."""
        return self.emit(final=True, **fields)


def progress_enabled() -> bool:
    """Whether a reporter created now would have at least one sink."""
    scope = getattr(_LOCAL, "scope", None)
    if scope is not None and scope[1] is not None:
        return True
    return bool(_SINKS) or bool(os.environ.get(SPOOL_ENV))


def progress_for_run(
    label: str | None = None,
    total: int | None = None,
) -> ProgressReporter | None:
    """One progress decision per run: a reporter, or ``None`` when off.

    Sinks are gathered from the thread scope, the process-global list,
    and the spool (in that order); with no sink anywhere the answer is
    ``None`` and the engine pays nothing further. The label defaults to
    the innermost scope label, then the worker label.
    """
    sinks: list[Sink] = []
    scope = getattr(_LOCAL, "scope", None)
    if scope is not None and scope[1] is not None:
        sinks.append(scope[1])
    sinks.extend(_SINKS)
    spool = os.environ.get(SPOOL_ENV)
    if spool:
        sinks.append(SpoolSink(spool))
    if not sinks:
        return None
    if label is None:
        label = current_label()
    return ProgressReporter(label, total, sinks)
