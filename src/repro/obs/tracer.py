"""Hierarchical span tracing with Chrome trace-event export.

The tracer is process-global and **off by default**: :func:`enable`
installs a :class:`SpanTracer`, and until then every module-level hook
(:func:`span`, :func:`traced`) short-circuits on a single ``is None``
check. Instrumented code therefore never pays for tracing it is not
doing; hot loops additionally keep their own ``obs is not None`` guard
so they skip even the generator construction.

Spans use ``time.perf_counter_ns`` (CLOCK_MONOTONIC on Linux, so
timestamps are comparable across processes on one host) relative to a
shared epoch, and are emitted as Chrome trace-event ``"X"`` complete
events — the JSON that Perfetto and ``chrome://tracing`` load directly.

Cross-process story (``fan_out`` workers):

- the parent :func:`enable` exports ``REPRO_TRACE_SPOOL`` (shard
  directory — its presence is the "tracing is on" signal for workers),
  ``REPRO_TRACE_EPOCH`` (shared time origin) and ``REPRO_TRACE_OWNER``
  (parent pid) before the pool spawns;
- each worker's initializer calls :func:`worker_setup`, which builds a
  fresh tracer against the shared epoch (and defuses a tracer object
  inherited through ``fork`` so parent events are never re-reported);
- after every task the worker ships its accumulated events to the
  spool as an atomically renamed shard file keyed by run id and pid;
- the parent's :meth:`SpanTracer.finalize` merges its own events with
  every shard of the same run id, sorts them deterministically by
  ``(ts, pid, tid, name)`` and writes one trace file.

Span identity: each span gets an id ``"<pid>:<seq>"`` unique across
processes; ids and parent links ride in the event ``args`` (the Chrome
format has no native span ids) so ``repro inspect`` and the structured
log can reconstruct the hierarchy. Parent linkage crosses the process
boundary via the task's pickled ``trace_parent`` attribute plus a
``"s"``/``"f"`` flow-event pair that draws the arrow in Perfetto.

The pipeline is single-threaded per process, so the open-span stack is
a plain list; lanes within a process are modelled with explicit ``tid``
values instead (lane 1 = machine/OS phases, lane ``10 + core_id`` =
per-core scheduling quanta).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from functools import wraps
from pathlib import Path

from repro.obs.runid import current_run_id, set_run_id

#: Schema tag stamped into exported trace files (``otherData.schema``).
TRACE_SCHEMA = "repro.trace/v1"

#: Shard directory for worker span shards; presence enables worker tracing.
SPOOL_ENV = "REPRO_TRACE_SPOOL"
#: Shared ``perf_counter_ns`` origin so worker timestamps line up.
EPOCH_ENV = "REPRO_TRACE_EPOCH"
#: Pid of the process that owns the trace (writes the final file).
OWNER_ENV = "REPRO_TRACE_OWNER"

#: Default lane for machine phases, OS ticks, and experiment spans.
MAIN_TID = 1
#: Per-core scheduling lanes start here: lane = CORE_TID_BASE + core_id.
CORE_TID_BASE = 10


def thread_lane_name(tid: int) -> str:
    """Human name for a ``tid`` lane, by convention rather than registry."""
    if tid == MAIN_TID:
        return "main"
    if tid >= CORE_TID_BASE:
        return f"core-{tid - CORE_TID_BASE}"
    return f"lane-{tid}"


class SpanTracer:
    """Collects trace events for one process of one observed run."""

    def __init__(
        self,
        run_id: str | None = None,
        epoch_ns: int | None = None,
        spool_dir: str | os.PathLike | None = None,
    ) -> None:
        self.run_id = run_id or current_run_id()
        self.epoch_ns = int(epoch_ns) if epoch_ns is not None else time.perf_counter_ns()
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        self.pid = os.getpid()
        self.events: list[dict] = []
        self._stack: list[str] = []
        self._seq = 0
        self._shard = 0

    # ------------------------------------------------------------------
    # identity / clock

    def next_id(self) -> str:
        """Fresh span/flow id, unique across every process of the run."""
        self._seq += 1
        return f"{self.pid}:{self._seq}"

    def current_span_id(self) -> str | None:
        """Id of the innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def _now_us(self) -> float:
        return (time.perf_counter_ns() - self.epoch_ns) / 1000.0

    # ------------------------------------------------------------------
    # emitting

    @contextmanager
    def span(self, name: str, cat: str = "repro", tid: int = MAIN_TID, **args):
        """Time a block as one ``"X"`` complete event; exception-safe.

        ``args`` become the event's ``args`` (values must be JSON-safe).
        A reserved ``parent=`` argument links to an explicit parent span
        id — used by worker task spans, whose real parent lives in the
        parent process — but an enclosing local span always wins.
        An exception propagates unchanged; the span still closes, tagged
        with ``args.error`` naming the exception type.
        """
        explicit_parent = args.pop("parent", None)
        parent = self._stack[-1] if self._stack else explicit_parent
        span_id = self.next_id()
        self._stack.append(span_id)
        error = None
        start = time.perf_counter_ns()
        try:
            yield span_id
        except BaseException as exc:
            error = type(exc).__name__
            raise
        finally:
            end = time.perf_counter_ns()
            self._stack.pop()
            event_args = {"span": span_id}
            if parent is not None:
                event_args["parent"] = parent
            if error is not None:
                event_args["error"] = error
            event_args.update(args)
            self.events.append(
                {
                    "ph": "X",
                    "name": name,
                    "cat": cat,
                    "ts": round((start - self.epoch_ns) / 1000.0, 3),
                    "dur": round((end - start) / 1000.0, 3),
                    "pid": self.pid,
                    "tid": tid,
                    "args": event_args,
                }
            )

    def instant(self, name: str, cat: str = "repro", tid: int = MAIN_TID, **args) -> None:
        """Emit a zero-duration ``"i"`` instant event (thread scope)."""
        self.events.append(
            {
                "ph": "i",
                "s": "t",
                "name": name,
                "cat": cat,
                "ts": round(self._now_us(), 3),
                "pid": self.pid,
                "tid": tid,
                "args": args,
            }
        )

    def flow_start(self, flow_id: str, name: str = "task", cat: str = "fanout",
                   tid: int = MAIN_TID) -> None:
        """Open a flow arrow (``"s"``) — pair with :meth:`flow_end`."""
        self.events.append(
            {
                "ph": "s",
                "id": flow_id,
                "name": name,
                "cat": cat,
                "ts": round(self._now_us(), 3),
                "pid": self.pid,
                "tid": tid,
            }
        )

    def flow_end(self, flow_id: str, name: str = "task", cat: str = "fanout",
                 tid: int = MAIN_TID) -> None:
        """Close a flow arrow (``"f"``, binding to the enclosing slice)."""
        self.events.append(
            {
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "name": name,
                "cat": cat,
                "ts": round(self._now_us(), 3),
                "pid": self.pid,
                "tid": tid,
            }
        )

    # ------------------------------------------------------------------
    # cross-process shards

    def ship_shard(self) -> Path | None:
        """Spool accumulated events to a shard file and clear the buffer.

        Called by workers after each task. Atomic rename, shard name
        keyed by ``(run_id, pid, sequence)`` so concurrent workers never
        collide and the parent can glob one run's shards.
        """
        if self.spool_dir is None or not self.events:
            return None
        self._shard += 1
        path = self.spool_dir / f"shard-{self.run_id}-{self.pid}-{self._shard:04d}.json"
        tmp = self.spool_dir / (path.name + ".tmp")
        tmp.write_text(json.dumps(self.events))
        os.replace(tmp, path)
        self.events = []
        return path

    def collect_shards(self) -> list[dict]:
        """Read every spooled shard of this run id (unreadable ones skipped)."""
        if self.spool_dir is None:
            return []
        events: list[dict] = []
        for path in sorted(self.spool_dir.glob(f"shard-{self.run_id}-*.json")):
            try:
                events.extend(json.loads(path.read_text()))
            except (OSError, json.JSONDecodeError, ValueError):
                continue
        return events

    # ------------------------------------------------------------------
    # export

    def export(self) -> dict:
        """Merged, deterministically ordered Chrome trace-event document."""
        events = list(self.events) + self.collect_shards()
        events.sort(
            key=lambda e: (e.get("ts", 0.0), e.get("pid", 0), e.get("tid", 0), e.get("name", ""))
        )
        lanes = {(e.get("pid", self.pid), e.get("tid", MAIN_TID)) for e in events}
        metadata: list[dict] = []
        for pid in sorted({pid for pid, _tid in lanes}):
            label = "repro" if pid == self.pid else f"worker-{pid}"
            metadata.append(
                {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                 "args": {"name": label}}
            )
        for pid, tid in sorted(lanes):
            metadata.append(
                {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                 "args": {"name": thread_lane_name(tid)}}
            )
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA, "run_id": self.run_id},
        }

    def finalize(self, path: str | os.PathLike) -> dict:
        """Write the merged trace document to ``path`` and return it."""
        doc = self.export()
        out = Path(path)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, separators=(",", ":")) + "\n")
        return doc


# ----------------------------------------------------------------------
# process-global switch

_ACTIVE: SpanTracer | None = None


def active_tracer() -> SpanTracer | None:
    """The process's installed tracer, or ``None`` when tracing is off."""
    return _ACTIVE


def tracing_enabled() -> bool:
    """Whether a tracer is installed in this process."""
    return _ACTIVE is not None


def enable(run_id: str | None = None,
           spool_dir: str | os.PathLike | None = None) -> SpanTracer:
    """Install a tracer as this run's owner and export the worker env.

    Pins the run id (``REPRO_RUN_ID``), publishes the shared epoch and
    owner pid, and — when ``spool_dir`` is given — creates the shard
    spool and advertises it so fan-out workers trace themselves too.
    """
    global _ACTIVE
    run_id = set_run_id(run_id)
    epoch = os.environ.get(EPOCH_ENV)
    tracer = SpanTracer(
        run_id=run_id,
        epoch_ns=int(epoch) if epoch else None,
        spool_dir=spool_dir,
    )
    os.environ[EPOCH_ENV] = str(tracer.epoch_ns)
    os.environ[OWNER_ENV] = str(tracer.pid)
    if tracer.spool_dir is not None:
        tracer.spool_dir.mkdir(parents=True, exist_ok=True)
        os.environ[SPOOL_ENV] = str(tracer.spool_dir)
    _ACTIVE = tracer
    return tracer


def disable() -> SpanTracer | None:
    """Uninstall the tracer; the owning process also retracts the env."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    if tracer is not None and tracer.pid == os.getpid():
        for env in (SPOOL_ENV, EPOCH_ENV, OWNER_ENV):
            os.environ.pop(env, None)
    return tracer


def worker_setup() -> SpanTracer | None:
    """Initialise tracing inside a fan-out worker process.

    With no spool advertised, tracing stays off — but a tracer object
    inherited through ``fork`` is defused so the child can never
    re-report (or mutate) the parent's event buffer. With a spool, the
    worker gets a fresh tracer on the shared epoch; the run id arrives
    via ``REPRO_RUN_ID``.
    """
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE.pid != os.getpid():
        _ACTIVE = None
    spool = os.environ.get(SPOOL_ENV)
    if not spool:
        return None
    owner = os.environ.get(OWNER_ENV)
    if owner and owner.isdigit() and int(owner) == os.getpid():
        return _ACTIVE
    epoch = os.environ.get(EPOCH_ENV)
    tracer = SpanTracer(epoch_ns=int(epoch) if epoch else None, spool_dir=spool)
    _ACTIVE = tracer
    return tracer


# ----------------------------------------------------------------------
# module-level instrumentation API

@contextmanager
def span(name: str, cat: str = "repro", tid: int = MAIN_TID, **args):
    """Trace a block against the active tracer; no-op when tracing is off."""
    tracer = _ACTIVE
    if tracer is None:
        yield None
        return
    with tracer.span(name, cat=cat, tid=tid, **args) as span_id:
        yield span_id


def traced(name=None, cat: str = "repro"):
    """Decorator form of :func:`span`; usable bare or with arguments.

    The enabled/disabled decision happens at call time, so decorated
    functions respond to :func:`enable`/:func:`disable` dynamically.
    """

    def decorate(fn):
        label = name if isinstance(name, str) else fn.__qualname__

        @wraps(fn)
        def wrapper(*fn_args, **fn_kwargs):
            tracer = _ACTIVE
            if tracer is None:
                return fn(*fn_args, **fn_kwargs)
            with tracer.span(label, cat=cat):
                return fn(*fn_args, **fn_kwargs)

        return wrapper

    if callable(name):
        return decorate(name)
    return decorate


def current_span_id() -> str | None:
    """Innermost open span id in this process, or ``None``."""
    tracer = _ACTIVE
    return tracer.current_span_id() if tracer is not None else None
