"""Deep observability for the reproduction pipeline (``repro.obs``).

Four cooperating pieces, all **off by default** and free when disabled:

- :mod:`repro.obs.tracer` — a low-overhead hierarchical span tracer
  (context-manager + decorator API over a monotonic clock) whose output
  is Chrome trace-event JSON, loadable in Perfetto or ``chrome://
  tracing``. Worker processes spool span shards to disk and the parent
  merges them by run id, so one ``--jobs N`` sweep yields one timeline.
- :mod:`repro.obs.histo` — fixed-boundary log-bucketed histograms
  (walk latency, tick duration, promotion lag, fan-out task wall time)
  exported under the ``distributions`` section of the
  ``repro.metrics/v1`` schema.
- :mod:`repro.obs.observer` — the engine-side hook bundle: when a run
  is observed, :class:`~repro.engine.machine.Machine` emits spans for
  run phases, scheduling quanta, and OS-tick stages, records the
  histograms above, and samples PCC/TLB state snapshots per dump
  interval. When not observed, the only engine cost is a handful of
  ``is None`` checks per quantum/tick.
- :mod:`repro.obs.log` — structured run logging: ``REPRO_LOG=json``
  switches every pipeline log record to JSON lines tagged with the run
  id and the currently open span.
- :mod:`repro.obs.progress` — live ``repro.progress/v1`` snapshots
  (records done, tier, throughput EWMA, ETA) emitted at a bounded
  cadence from the engine's scheduler loop and delivered via scoped
  sinks or the cross-process spool; the feed behind the serving
  daemon's SSE streams and ``repro top``.
- :mod:`repro.obs.window` — sliding-window (10s/1m/5m) rates and
  percentiles over the resilience bus, feeding ``/metrics``.

One stable **run id** (:mod:`repro.obs.runid`) threads through metrics
exports, journal shards, resilience-bus publications, structured logs,
and trace files, so ``repro inspect`` can correlate every artifact of a
single invocation.
"""

from repro.obs.histo import Histogram
from repro.obs.progress import (
    PROGRESS_SCHEMA,
    ProgressReporter,
    add_sink,
    progress_enabled,
    progress_for_run,
    progress_scope,
    remove_sink,
)
from repro.obs.runid import RUN_ID_ENV, current_run_id, new_run_id, set_run_id
from repro.obs.tracer import SpanTracer, active_tracer, span, traced, tracing_enabled

__all__ = [
    "Histogram",
    "PROGRESS_SCHEMA",
    "ProgressReporter",
    "RUN_ID_ENV",
    "SpanTracer",
    "active_tracer",
    "add_sink",
    "current_run_id",
    "new_run_id",
    "progress_enabled",
    "progress_for_run",
    "progress_scope",
    "remove_sink",
    "set_run_id",
    "span",
    "traced",
    "tracing_enabled",
]
