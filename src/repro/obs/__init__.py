"""Deep observability for the reproduction pipeline (``repro.obs``).

Four cooperating pieces, all **off by default** and free when disabled:

- :mod:`repro.obs.tracer` — a low-overhead hierarchical span tracer
  (context-manager + decorator API over a monotonic clock) whose output
  is Chrome trace-event JSON, loadable in Perfetto or ``chrome://
  tracing``. Worker processes spool span shards to disk and the parent
  merges them by run id, so one ``--jobs N`` sweep yields one timeline.
- :mod:`repro.obs.histo` — fixed-boundary log-bucketed histograms
  (walk latency, tick duration, promotion lag, fan-out task wall time)
  exported under the ``distributions`` section of the
  ``repro.metrics/v1`` schema.
- :mod:`repro.obs.observer` — the engine-side hook bundle: when a run
  is observed, :class:`~repro.engine.machine.Machine` emits spans for
  run phases, scheduling quanta, and OS-tick stages, records the
  histograms above, and samples PCC/TLB state snapshots per dump
  interval. When not observed, the only engine cost is a handful of
  ``is None`` checks per quantum/tick.
- :mod:`repro.obs.log` — structured run logging: ``REPRO_LOG=json``
  switches every pipeline log record to JSON lines tagged with the run
  id and the currently open span.

One stable **run id** (:mod:`repro.obs.runid`) threads through metrics
exports, journal shards, resilience-bus publications, structured logs,
and trace files, so ``repro inspect`` can correlate every artifact of a
single invocation.
"""

from repro.obs.histo import Histogram
from repro.obs.runid import RUN_ID_ENV, current_run_id, new_run_id, set_run_id
from repro.obs.tracer import SpanTracer, active_tracer, span, traced, tracing_enabled

__all__ = [
    "Histogram",
    "RUN_ID_ENV",
    "SpanTracer",
    "active_tracer",
    "current_run_id",
    "new_run_id",
    "set_run_id",
    "span",
    "traced",
    "tracing_enabled",
]
