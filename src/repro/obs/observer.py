"""Engine-side observation bundle (:class:`RunObserver`).

:class:`~repro.engine.machine.Machine` owns *one* observability
decision per run: :meth:`RunObserver.for_run` returns ``None`` unless
observation was requested, and every engine hook site guards on
``obs is not None`` — so a non-observed run pays a handful of attribute
checks per scheduling quantum / OS tick and *nothing* per memory
access (the per-walk hook swaps in a wrapped translate method only
when an observer exists).

When a run *is* observed the bundle provides:

- span/instant emission against the process's active tracer (absent
  tracer → histograms only, e.g. ``REPRO_OBS=1 --metrics-out``);
- the engine histograms of the ``distributions`` metrics section:
  ``walk_latency_cycles``, ``tick_duration_us``, and
  ``promotion_lag_accesses`` (first walk of a region → its promotion,
  measured in retired accesses, the engine's logical clock);
- top-K PCC/TLB state snapshots per OS tick, emitted as trace instant
  events for heatmap timelines.

Observation never mutates simulation state — every input it takes is
read-only — which is what keeps observed stats bit-identical.
"""

from __future__ import annotations

import os
from contextlib import nullcontext

from repro.obs.tracer import active_tracer, tracing_enabled

#: Truthy value requests observation (histograms/snapshots) even
#: without a tracer, e.g. ``REPRO_OBS=1 repro fig7 --metrics-out ...``.
OBS_ENV = "REPRO_OBS"
#: Regions per PCC snapshot (default 8).
TOPK_ENV = "REPRO_OBS_TOPK"

_TRUTHY = {"1", "true", "yes", "on"}


def observation_requested() -> bool:
    """Whether auto mode should observe: tracer active or ``REPRO_OBS`` set."""
    return tracing_enabled() or os.environ.get(OBS_ENV, "").strip().lower() in _TRUTHY


class RunObserver:
    """Per-run observation state: histograms, first-walk table, tracer."""

    __slots__ = (
        "registry",
        "tracer",
        "top_k",
        "walk_latency",
        "tick_duration",
        "promotion_lag",
        "_first_walk",
    )

    def __init__(self, registry, tracer=None, top_k: int | None = None) -> None:
        self.registry = registry
        self.tracer = tracer
        if top_k is None:
            raw = os.environ.get(TOPK_ENV, "")
            top_k = int(raw) if raw.isdigit() and int(raw) > 0 else 8
        self.top_k = top_k
        self.walk_latency = registry.histogram("walk_latency_cycles", unit="cycles")
        self.tick_duration = registry.histogram("tick_duration_us", unit="us")
        self.promotion_lag = registry.histogram("promotion_lag_accesses", unit="accesses")
        # (pid, region) -> total_accesses when the region first took a walk
        self._first_walk: dict[tuple[int, int], int] = {}

    @classmethod
    def for_run(cls, observe: bool | None, registry) -> "RunObserver | None":
        """The run's observer, or ``None`` when the run is not observed.

        ``observe=False`` is the hard-off used by perf A/B comparisons;
        ``observe=None`` auto-enables iff a tracer is active or
        ``REPRO_OBS`` is truthy; ``observe=True`` forces observation.
        """
        if observe is False:
            return None
        if observe is None and not observation_requested():
            return None
        return cls(registry, tracer=active_tracer())

    # ------------------------------------------------------------------
    # tracer passthrough (histogram-only observers get no-ops)

    def span(self, name: str, **args):
        """A tracer span, or an inert context when no tracer is active."""
        tracer = self.tracer
        if tracer is None:
            return nullcontext()
        return tracer.span(name, **args)

    def instant(self, name: str, **args) -> None:
        """A tracer instant event; dropped when no tracer is active."""
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(name, **args)

    # ------------------------------------------------------------------
    # engine hooks

    def note_walk(self, pid: int, region: int, cycles: int, now_accesses: int) -> None:
        """One completed page walk: latency sample + first-walk stamp."""
        self.walk_latency.record(cycles)
        key = (pid, region)
        if key not in self._first_walk:
            self._first_walk[key] = now_accesses

    def note_tick(self, duration_us: float) -> None:
        """Wall-clock duration of one OS tick (scan+rank+promote+flush)."""
        self.tick_duration.record(duration_us)

    def note_promotions(self, promoted, now_accesses: int) -> None:
        """Promotion lag per promoted region: first walk → promotion.

        ``promoted`` is the kernel's list of candidate records carrying
        ``pid`` and ``tag`` (the region number the PCC tracked).
        Regions promoted without a recorded first walk (e.g. resident
        before observation started) are skipped rather than guessed.
        """
        if not promoted:
            return
        first_walk = self._first_walk
        for record in promoted:
            start = first_walk.get((record.pid, record.tag))
            if start is not None:
                self.promotion_lag.record(now_accesses - start)

    def snapshot(self, now_accesses: int, tick_index: int,
                 regions, tlb_occupancy) -> None:
        """Top-K PCC region counts + TLB occupancy as a trace instant.

        ``regions`` is an iterable of ``(pid, region, frequency)``
        already ranked hottest-first; only the top K are emitted.
        """
        tracer = self.tracer
        if tracer is None:
            return
        top = [[pid, region, frequency] for pid, region, frequency in regions[: self.top_k]]
        tracer.instant(
            "pcc_state",
            cat="snapshot",
            accesses=now_accesses,
            tick=tick_index,
            top_regions=top,
            tlb=tlb_occupancy,
        )
