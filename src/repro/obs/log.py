"""Structured run logging for the pipeline (``REPRO_LOG=json``).

Pipeline modules log through ``get_logger(...)`` /
``log_event(...)`` instead of ad-hoc ``print`` / ``warnings.warn``.
Every record carries the invocation's run id and the innermost open
trace span id, so a log line can be correlated with the metrics file,
journal shards, and trace spans of the same run.

Output format is selected by the ``REPRO_LOG`` environment variable:

- unset (default): terse text on stderr, warnings and above only —
  normal runs stay as quiet as before;
- ``REPRO_LOG=json``: one JSON object per line with ``ts``, ``level``,
  ``logger``, ``event``, ``run_id``, ``span``, and any structured
  fields passed via :func:`log_event`; info level and above.

``REPRO_LOG_LEVEL`` overrides the level in either mode. Handlers are
installed on the ``repro`` logger namespace only; propagation is left
on so test harnesses (caplog) still see the records.
"""

from __future__ import annotations

import json
import logging
import os
import sys

from repro.obs.runid import current_run_id
from repro.obs.tracer import current_span_id

#: Selects the output format; ``json`` switches to JSON lines.
LOG_ENV = "REPRO_LOG"
#: Optional level override (e.g. ``DEBUG``); beats the mode default.
LEVEL_ENV = "REPRO_LOG_LEVEL"

_CONFIGURED = False


def json_mode() -> bool:
    """Whether ``REPRO_LOG=json`` structured output is requested."""
    return os.environ.get(LOG_ENV, "").strip().lower() == "json"


class _ContextFilter(logging.Filter):
    """Stamp each record with the current run id and open span id."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.run_id = current_run_id()
        record.span = current_span_id()
        return True


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record; structured fields are merged in."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
            "run_id": getattr(record, "run_id", None),
            "span": getattr(record, "span", None),
        }
        doc.update(getattr(record, "fields", None) or {})
        if record.exc_info:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, default=str)


class TextFormatter(logging.Formatter):
    """Terse human form: ``repro[run_id] level logger: event k=v ...``."""

    def format(self, record: logging.LogRecord) -> str:
        fields = getattr(record, "fields", None) or {}
        suffix = "".join(f" {key}={value}" for key, value in fields.items())
        run_id = getattr(record, "run_id", "-")
        return (
            f"repro[{run_id}] {record.levelname.lower()} "
            f"{record.name}: {record.getMessage()}{suffix}"
        )


def configure(force: bool = False) -> None:
    """Install the namespace handler once (idempotent; ``force`` redoes it).

    Re-running with ``force=True`` picks up a changed ``REPRO_LOG`` /
    ``REPRO_LOG_LEVEL`` — the CLI does this at startup so the env of the
    invocation, not of the first import, decides the format.
    """
    global _CONFIGURED
    if _CONFIGURED and not force:
        return
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler._repro_obs = True
    handler.setFormatter(JsonLineFormatter() if json_mode() else TextFormatter())
    handler.addFilter(_ContextFilter())
    root.addHandler(handler)
    level = os.environ.get(LEVEL_ENV, "").strip().upper()
    if level:
        root.setLevel(level)
    else:
        root.setLevel(logging.INFO if json_mode() else logging.WARNING)
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace, handlers configured."""
    configure()
    return logging.getLogger(f"repro.{name}")


def log_event(logger: logging.Logger, event: str, *,
              level: int = logging.INFO, **fields) -> None:
    """Log ``event`` with structured ``fields`` riding the record."""
    logger.log(level, event, extra={"fields": fields})
