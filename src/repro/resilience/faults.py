"""Deterministic fault injection for the experiment pipeline.

The resilience machinery (retries, pool rebuilds, cache self-healing,
checkpoint/resume) is only trustworthy if the *real* code paths are
exercised under the failures they claim to survive. This module plants
named instrumentation points — :func:`fault_point` calls — in the
production pipeline and fires scripted faults at them, driven entirely
by environment variables so CI chaos jobs and worker processes inherit
the plan without code changes.

A plan is a comma-separated list of fault specs::

    REPRO_FAULTS="crash@worker.task, hang@worker.task:2=30, exc@workload.build~BFS"

Each spec is ``kind@site[:nth][~match][=arg]``:

* ``kind`` — what happens when the fault fires:
  ``crash`` hard-kills the worker process (``os._exit``; in the main
  process it degrades to a raised :class:`InjectedFault` so a serial
  sweep is never killed), ``hang`` sleeps ``arg`` seconds (default 30),
  ``exc`` raises a transient :class:`InjectedFault`, and ``corrupt``
  overwrites the file a site offers with deterministic garbage.
* ``site`` — the named :func:`fault_point` to strike (e.g.
  ``worker.task``, ``workload.build``, ``trace.cache.read``,
  ``cache.publish``, ``engine.columnar.encode``, and the serving
  path's ``serve.accept``, ``serve.dispatch``,
  ``serve.result.publish``).
* ``:nth`` — fire on the nth matching occurrence *in one process*
  (default: the first).
* ``~match`` — only count occurrences whose detail string contains
  this substring (e.g. a task label).
* ``=arg`` — numeric argument (hang duration in seconds).

Every fault fires **exactly once across all processes**: firing claims
a marker file in the shared state directory (``REPRO_FAULT_STATE``)
with an atomic ``O_CREAT|O_EXCL`` open, so the retry that follows a
crash or hang runs clean instead of re-triggering the same fault. With
no state directory the claim set is process-local, which is sufficient
for serial runs.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.resilience import bus

#: Environment variable carrying the comma-separated fault plan.
FAULTS_ENV = "REPRO_FAULTS"
#: Environment variable naming the shared fired-marker directory.
FAULT_STATE_ENV = "REPRO_FAULT_STATE"

#: Recognised fault kinds.
KINDS = ("crash", "hang", "exc", "corrupt")

#: Exit code a ``crash`` fault kills the worker with (visible in
#: pool-death diagnostics).
CRASH_EXIT_CODE = 70

#: Default ``hang`` duration when the spec carries no ``=arg``.
DEFAULT_HANG_SECONDS = 30.0


class InjectedFault(RuntimeError):
    """A transient failure raised by the fault-injection harness."""


class FaultSpecError(ValueError):
    """A fault plan string could not be parsed."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: what to inject, where, and when."""

    kind: str
    site: str
    nth: int = 1
    match: str = ""
    arg: float | None = None

    @property
    def ident(self) -> str:
        """Stable identity used for the cross-process fired marker."""
        return f"{self.kind}@{self.site}:{self.nth}~{self.match}"


def parse_faults(text: str) -> tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` plan string into fault specs."""
    specs = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "@" not in chunk:
            raise FaultSpecError(f"fault spec {chunk!r} lacks '@site'")
        kind, rest = chunk.split("@", 1)
        kind = kind.strip()
        if kind not in KINDS:
            raise FaultSpecError(f"unknown fault kind {kind!r} (choose from {KINDS})")
        arg = None
        if "=" in rest:
            rest, raw = rest.rsplit("=", 1)
            try:
                arg = float(raw)
            except ValueError as exc:
                raise FaultSpecError(f"fault arg {raw!r} is not a number") from exc
        match = ""
        if "~" in rest:
            rest, match = rest.split("~", 1)
        nth = 1
        if ":" in rest:
            rest, raw = rest.split(":", 1)
            try:
                nth = int(raw)
            except ValueError as exc:
                raise FaultSpecError(f"fault occurrence {raw!r} is not an integer") from exc
            if nth < 1:
                raise FaultSpecError(f"fault occurrence must be >= 1, got {nth}")
        site = rest.strip()
        if not site:
            raise FaultSpecError(f"fault spec {chunk!r} names no site")
        specs.append(FaultSpec(kind=kind, site=site, nth=nth, match=match.strip(), arg=arg))
    return tuple(specs)


class FaultPlan:
    """Active fault specs plus per-process occurrence counters."""

    def __init__(self, specs: tuple[FaultSpec, ...], state_dir: Path | None) -> None:
        self.specs = specs
        self.state_dir = state_dir
        self._counts: dict[FaultSpec, int] = dict.fromkeys(specs, 0)
        self._local_claims: set[str] = set()

    def due(self, site: str, detail: str) -> FaultSpec | None:
        """Advance occurrence counters; return a spec that is now due."""
        for spec in self.specs:
            if spec.site != site:
                continue
            if spec.match and spec.match not in detail:
                continue
            self._counts[spec] += 1
            if self._counts[spec] == spec.nth:
                return spec
        return None

    def claim(self, spec: FaultSpec) -> bool:
        """Atomically claim the one global firing of ``spec``.

        Returns True exactly once per spec across every process sharing
        the state directory; the losers (and any retry of the claimed
        firing) proceed unfaulted.
        """
        if self.state_dir is None:
            if spec.ident in self._local_claims:
                return False
            self._local_claims.add(spec.ident)
            return True
        self.state_dir.mkdir(parents=True, exist_ok=True)
        marker = self.state_dir / _marker_name(spec.ident)
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True


def _marker_name(ident: str) -> str:
    safe = "".join(c if c.isalnum() or c in "@:~._-" else "_" for c in ident)
    return f"{safe}.fired"


# ----------------------------------------------------------------------
# active plan (lazily rebuilt whenever the environment changes)

_CACHED: tuple[tuple[str, str], FaultPlan | None] = (("", ""), None)


def current_plan() -> FaultPlan | None:
    """The plan described by the environment, or ``None`` when idle.

    The parsed plan (and its occurrence counters) is cached per
    process and rebuilt only when ``REPRO_FAULTS`` / ``REPRO_FAULT_STATE``
    change, so an idle :func:`fault_point` costs two dict lookups.
    """
    global _CACHED
    spec_text = os.environ.get(FAULTS_ENV, "")
    state_text = os.environ.get(FAULT_STATE_ENV, "")
    key = (spec_text, state_text)
    cached_key, cached_plan = _CACHED
    if key == cached_key:
        return cached_plan
    plan = None
    if spec_text.strip():
        state_dir = Path(state_text) if state_text.strip() else None
        plan = FaultPlan(parse_faults(spec_text), state_dir)
    _CACHED = (key, plan)
    return plan


def fault_point(site: str, detail: str = "", paths: list | None = None) -> None:
    """Declare an injectable point in production code.

    A no-op unless the environment carries a fault plan with a spec due
    at this site. ``detail`` is matched against specs' ``~match``
    filters; ``paths`` offers files a ``corrupt`` fault may damage.
    """
    plan = current_plan()
    if plan is None:
        return
    spec = plan.due(site, detail)
    if spec is None or not plan.claim(spec):
        return
    bus.counter("faults.injected").add()
    _execute(spec, site, detail, paths or [])


def _execute(spec: FaultSpec, site: str, detail: str, paths: list) -> None:
    if spec.kind == "exc":
        raise InjectedFault(f"injected transient fault at {site} ({detail})")
    if spec.kind == "hang":
        time.sleep(spec.arg if spec.arg is not None else DEFAULT_HANG_SECONDS)
        return
    if spec.kind == "crash":
        import multiprocessing

        if multiprocessing.parent_process() is None:
            # killing the main process would take the whole sweep (and
            # the test runner) down; degrade to a transient exception
            raise InjectedFault(f"injected crash at {site} ({detail}) in main process")
        os._exit(CRASH_EXIT_CODE)
    if spec.kind == "corrupt":
        for path in paths[:1]:
            corrupt_file(Path(path))


def corrupt_file(path: Path, seed: int = 0) -> None:
    """Deterministically damage a file: truncate and garble its head.

    Used by ``corrupt`` faults and directly by tests; the result is
    both shorter than the original and wrong in its leading bytes, so
    checksum verification and format parsing each catch it.
    """
    try:
        data = path.read_bytes()
    except OSError:
        return
    keep = len(data) // 2
    garbled = bytes((b ^ (0xA5 + seed)) & 0xFF for b in data[: min(keep, 64)])
    path.write_bytes(garbled + data[len(garbled) : keep])


@contextmanager
def injecting(spec: str, state_dir: Path | str | None = None):
    """Activate a fault plan for the duration of a ``with`` block.

    Sets ``REPRO_FAULTS`` (and ``REPRO_FAULT_STATE`` when a state
    directory is given) so both this process and any worker process it
    spawns see the plan; restores the previous environment on exit.
    """
    saved = {
        FAULTS_ENV: os.environ.get(FAULTS_ENV),
        FAULT_STATE_ENV: os.environ.get(FAULT_STATE_ENV),
    }
    os.environ[FAULTS_ENV] = spec
    if state_dir is not None:
        os.environ[FAULT_STATE_ENV] = str(state_dir)
    else:
        os.environ.pop(FAULT_STATE_ENV, None)
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
