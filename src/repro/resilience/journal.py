"""Checkpoint/resume journal for experiment sweeps.

A :class:`RunJournal` is a directory of one **shard per completed
task**: the pickled result of one ``(task function, task)`` pair,
wrapped in a magic header and a SHA-256 digest and published with an
atomic rename — a reader sees a complete, verified shard or nothing.
Because shard keys are content hashes over the task function's
qualified name plus the task's stable JSON form (the same idea as the
trace cache's keys), the journal needs no per-sweep manifest: any
sweep, killed at any point and re-run with ``--resume``, simply skips
every task whose shard already exists and loads the stored result,
yielding outputs bit-identical to an uninterrupted run.

Corrupt or truncated shards self-heal: a shard failing verification is
**quarantined** — moved aside into the journal's ``quarantine/``
subdirectory with a structured warning naming the run that hit it —
and reported as a miss, so the sweep recomputes the task and rewrites
the shard while the damaged bytes stay available for post-mortems.
Resume then proceeds from the last intact checkpoint instead of
aborting (or silently destroying evidence).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.obs.log import get_logger, log_event
from repro.obs.runid import current_run_id
from repro.resilience import bus

_LOG = get_logger("resilience.journal")

#: Environment variable selecting the journal directory. The values
#: ``0``, ``off``, and ``none`` (or unset) disable journaling.
JOURNAL_ENV = "REPRO_JOURNAL"

#: Bump to orphan every existing shard (e.g. after a result-format change).
#: v2 wraps each shard's payload in an envelope recording the run id of
#: the invocation that committed it.
JOURNAL_VERSION = 2

#: Envelope marker key (see :meth:`RunJournal.commit`).
_ENVELOPE_KEY = "__rpj__"

#: Shard header: magic, then the SHA-256 of the pickled payload.
_MAGIC = b"RPJ1"


def default_journal_dir() -> Path:
    """Default shard directory used when the CLI enables journaling."""
    return Path.home() / ".cache" / "repro-journal"


def journal_from_env() -> "RunJournal | None":
    """Journal selected by ``REPRO_JOURNAL``, or ``None`` when disabled."""
    value = os.environ.get(JOURNAL_ENV)
    if not value or value.strip().lower() in ("0", "off", "none"):
        return None
    return RunJournal(value)


@dataclass
class JournalStats:
    """Commit/resume accounting for one :class:`RunJournal` instance."""

    commits: int = 0
    resumed: int = 0
    misses: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict:
        """JSON-safe snapshot (for reports and CI artifacts)."""
        return {
            "commits": self.commits,
            "resumed": self.resumed,
            "misses": self.misses,
            "corrupt": self.corrupt,
        }


class RunJournal:
    """Directory-backed, content-addressed store of completed results."""

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        self.stats = JournalStats()

    @property
    def quarantine_dir(self) -> Path:
        """Where shards that fail verification are moved for post-mortem."""
        return self.directory / "quarantine"

    # ------------------------------------------------------------------
    # keys

    def key_for(self, task_fn, task) -> str:
        """Stable content key for one ``(task function, task)`` pair."""
        ident = {
            "fn": f"{getattr(task_fn, '__module__', '?')}.{getattr(task_fn, '__qualname__', repr(task_fn))}",
            "task": stable_form(task),
            "version": JOURNAL_VERSION,
        }
        body = json.dumps(ident, sort_keys=True)
        return hashlib.sha256(body.encode()).hexdigest()[:24]

    def shard_path(self, key: str) -> Path:
        """On-disk location of one shard."""
        return self.directory / f"{key}.shard"

    # ------------------------------------------------------------------
    # load / commit

    def load(self, key: str):
        """Verified result stored under ``key``, or ``None``.

        A shard that is missing counts as a miss; one that fails the
        magic/digest check or does not unpickle is quarantined (the
        sweep recomputes it) and counted as corrupt.
        """
        path = self.shard_path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        payload = blob[len(_MAGIC) + 32 :]
        if (
            not blob.startswith(_MAGIC)
            or hashlib.sha256(payload).digest() != blob[len(_MAGIC) : len(_MAGIC) + 32]
        ):
            self._discard_corrupt(path)
            return None
        try:
            result = pickle.loads(payload)
        except Exception:
            self._discard_corrupt(path)
            return None
        if isinstance(result, dict) and _ENVELOPE_KEY in result:
            result = result.get("result")
        self.stats.resumed += 1
        bus.counter("tasks.resumed").add()
        return result

    def run_id_of(self, key: str) -> str | None:
        """Run id recorded in ``key``'s shard envelope, if readable.

        Pure inspection: touches no stats counters, so correlating a
        journal with ``repro inspect`` never perturbs resume accounting.
        """
        path = self.shard_path(key)
        try:
            blob = path.read_bytes()
            payload = blob[len(_MAGIC) + 32 :]
            envelope = pickle.loads(payload)
        except Exception:
            return None
        if isinstance(envelope, dict) and _ENVELOPE_KEY in envelope:
            return envelope.get("run_id")
        return None

    def commit(self, key: str, result) -> Path:
        """Atomically persist one completed result under ``key``.

        The pickled payload is an envelope ``{__rpj__, run_id, result}``
        so every shard names the invocation that wrote it; ``load``
        unwraps transparently (and tolerates bare legacy payloads).
        """
        envelope = {
            _ENVELOPE_KEY: JOURNAL_VERSION,
            "run_id": current_run_id(),
            "result": result,
        }
        payload = pickle.dumps(envelope, protocol=4)
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.shard_path(key)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self.stats.commits += 1
        bus.counter("journal.commits").add()
        return path

    def _discard_corrupt(self, path: Path) -> None:
        """Quarantine a shard that failed verification.

        The shard is moved (atomic rename) into ``quarantine/`` rather
        than deleted: the damaged bytes stay inspectable, the key reads
        as a miss so the task is recomputed, and a structured warning
        names the shard, destination, and run id. If even the rename
        fails (e.g. the file vanished underneath us) the shard is
        unlinked as a last resort — a corrupt shard must never satisfy
        a resume either way.
        """
        destination = self.quarantine_dir / path.name
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
            quarantined_to: str | None = str(destination)
            bus.counter("journal.quarantined").add()
        except OSError:
            path.unlink(missing_ok=True)
            quarantined_to = None
        self.stats.corrupt += 1
        self.stats.misses += 1
        bus.counter("journal.corrupt").add()
        log_event(
            _LOG,
            "journal shard failed verification; resuming from intact "
            "checkpoints",
            level=logging.WARNING,
            shard=path.name,
            quarantined_to=quarantined_to,
            run_id=current_run_id(),
        )

    # ------------------------------------------------------------------
    # maintenance

    def keys(self) -> list[str]:
        """Keys of every shard currently committed."""
        if not self.directory.exists():
            return []
        return sorted(path.name[: -len(".shard")] for path in self.directory.glob("*.shard"))

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> int:
        """Delete every shard; returns the number removed."""
        removed = 0
        for key in self.keys():
            self.shard_path(key).unlink(missing_ok=True)
            removed += 1
        return removed


def stable_form(value):
    """JSON-safe, deterministic form of a task for key derivation.

    Dataclasses serialize by type name plus field dict, sequences and
    mappings recurse, primitives pass through, and anything else falls
    back to ``repr`` — sufficient for the pipeline's task shapes
    (frozen ``RunSpec`` dataclasses and tuples of primitives).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            field.name: stable_form(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, "fields": fields}
    if isinstance(value, (list, tuple)):
        return [stable_form(item) for item in value]
    if isinstance(value, dict):
        return {str(key): stable_form(item) for key, item in sorted(value.items())}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
