"""Resilience layer: fault injection, retries, and checkpoint/resume.

The experiment pipeline fans hundreds of deterministic simulation
tasks across worker processes; this package is what lets that pipeline
survive the failures long sweeps actually hit:

- :mod:`repro.resilience.faults` — a deterministic, env-driven fault
  injection harness (worker crashes, hangs, cache corruption,
  transient builder exceptions) striking named points in the real code
  paths, with cross-process exactly-once semantics.
- :mod:`repro.resilience.retry` — the :class:`RetryPolicy` governing
  per-task timeouts, bounded retries with deterministic
  exponential-backoff jitter, and pool-rebuild limits.
- :mod:`repro.resilience.journal` — the content-addressed
  checkpoint/resume shard store behind ``--resume``.
- :mod:`repro.resilience.bus` — process-global retry/quarantine/repair
  counters published through the ``repro.metrics`` bus.

The consumer is :func:`repro.experiments.parallel.fan_out`, which
threads all four through every figure sweep.
"""

from repro.resilience import bus
from repro.resilience.faults import (
    FAULT_STATE_ENV,
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    InjectedFault,
    corrupt_file,
    fault_point,
    injecting,
    parse_faults,
)
from repro.resilience.journal import (
    JOURNAL_ENV,
    JournalStats,
    RunJournal,
    default_journal_dir,
    journal_from_env,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "bus",
    "FAULTS_ENV",
    "FAULT_STATE_ENV",
    "FaultPlan",
    "FaultSpec",
    "FaultSpecError",
    "InjectedFault",
    "corrupt_file",
    "fault_point",
    "injecting",
    "parse_faults",
    "JOURNAL_ENV",
    "JournalStats",
    "RunJournal",
    "default_journal_dir",
    "journal_from_env",
    "RetryPolicy",
]
