"""Process-global resilience counters on the ``repro.metrics`` bus.

Unlike the per-run :class:`~repro.metrics.registry.MetricsRegistry` the
engine creates for every simulation, resilience events (retries, pool
rebuilds, quarantines, cache repairs, journal activity) happen *between*
runs, in the experiment pipeline itself. They accumulate in one
process-global registry and are published to any active
:func:`repro.metrics.collecting` block as a ``repro.metrics/v1`` export
whose meta carries ``component: resilience`` — so ``--metrics-out``
aggregates show exactly how much self-healing a sweep needed.

Every documented counter is pre-registered at import time, so the
export's key set is stable whether or not an event ever fired.
"""

from __future__ import annotations

from repro.metrics import Counter, MetricsRegistry, publish_run
from repro.obs.histo import Histogram
from repro.obs.runid import current_run_id

#: Every counter the resilience layer maintains. Pre-registered so the
#: ``repro.metrics/v1`` export always carries the full, stable key set.
COUNTER_NAMES = (
    "resilience.tasks.retried",
    "resilience.tasks.timeouts",
    "resilience.tasks.quarantined",
    "resilience.tasks.resumed",
    "resilience.pool.rebuilds",
    "resilience.pool.serial_fallbacks",
    "resilience.faults.injected",
    "resilience.cache.corrupted",
    "resilience.cache.repaired",
    "resilience.cache.stale_tmp_removed",
    "resilience.journal.commits",
    "resilience.journal.corrupt",
    "resilience.journal.quarantined",
    "resilience.serve.accepted",
    "resilience.serve.rejected",
    "resilience.serve.completed",
    "resilience.serve.failed",
    "resilience.serve.expired",
    "resilience.serve.requeued",
    "resilience.serve.recovered",
    "resilience.serve.degraded",
    "resilience.breaker.trips",
)

_REGISTRY = MetricsRegistry()
for _name in COUNTER_NAMES:
    _REGISTRY.counter(_name)


def registry() -> MetricsRegistry:
    """The process-global resilience metrics registry."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """The ``resilience.<name>`` counter (created on first use)."""
    return _REGISTRY.counter(f"resilience.{name}")


def histogram(name: str, unit: str = "") -> Histogram:
    """A pipeline-level distribution on the resilience registry.

    Used for observations that happen *between* simulation runs (e.g.
    ``fan_out`` task wall time); exported in the same ``component:
    resilience`` publication as the counters.
    """
    return _REGISTRY.histogram(name, unit=unit)


def snapshot() -> dict[str, int]:
    """Current value of every resilience counter."""
    return _REGISTRY.snapshot()


def publish(meta: dict | None = None) -> dict:
    """Publish the counters to active collectors; returns the export."""
    export = _REGISTRY.export(
        meta={
            "component": "resilience",
            "run_id": current_run_id(),
            **(meta or {}),
        }
    )
    publish_run(export)
    return export
