"""Retry policy for the resilient experiment fan-out.

One frozen :class:`RetryPolicy` travels through
:func:`repro.experiments.parallel.fan_out` and decides how failures are
absorbed: how many attempts each task gets, how long a task may run
before the pool is declared wedged, how the delay between attempts
grows, and how many pool rebuilds are tolerated before the remaining
work falls back to serial in-process execution.

Backoff is exponential with deterministic jitter: the jitter factor is
drawn from a :class:`random.Random` seeded by ``(seed, task key,
attempt)``, so a re-run of the same sweep waits the same amount — no
wall-clock or global RNG state leaks into the pipeline.
"""

from __future__ import annotations

import os
import random
import warnings
from dataclasses import dataclass

#: Environment default for the per-task timeout in seconds.
TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
#: Environment default for the per-task attempt budget.
RETRIES_ENV = "REPRO_TASK_RETRIES"


@dataclass(frozen=True)
class RetryPolicy:
    """How the fan-out absorbs worker failures."""

    #: Total attempts per task (first try included) before quarantine.
    max_attempts: int = 3
    #: Seconds a running task may take before the pool is recycled;
    #: ``None`` disables timeout enforcement.
    timeout: float | None = None
    #: First-retry delay in seconds.
    backoff_base: float = 0.05
    #: Multiplier applied per additional attempt.
    backoff_factor: float = 2.0
    #: Ceiling on any single delay.
    backoff_max: float = 2.0
    #: Fraction of the delay added as deterministic jitter.
    jitter: float = 0.25
    #: Seed for the deterministic jitter stream.
    seed: int = 0
    #: Pool deaths tolerated before falling back to serial execution.
    max_pool_rebuilds: int = 2

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy with ``REPRO_TASK_TIMEOUT`` / ``REPRO_TASK_RETRIES`` applied.

        Garbage values warn (naming the variable) and keep the default
        rather than crashing the sweep.
        """
        timeout = _env_float(TIMEOUT_ENV, cls.timeout)
        attempts = _env_int(RETRIES_ENV, cls.max_attempts)
        return cls(max_attempts=max(1, attempts), timeout=timeout)

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` of ``key``."""
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        fraction = random.Random(f"{self.seed}:{key}:{attempt}").random()
        return base * (1.0 + self.jitter * fraction)


def _env_float(name: str, default: float | None) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        warnings.warn(
            f"{name}={raw!r} is not a number; using default {default!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        warnings.warn(
            f"{name}={raw!r} is not an integer; using default {default!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
