"""Guest-OS / hypervisor co-promotion (§5.4.3).

A guest-initiated huge-page promotion only improves TLB reach when the
hypervisor also backs the guest-physical range with a host huge page;
otherwise "the TLB does not use 2MB entries for the translation". The
paper's sketch: the PCC recommends guest-virtual regions, the guest OS
promotes them, and a hypercall asks the hypervisor to promote the
corresponding host range.

:class:`Hypervisor` models the host side: per-VM guest-physical to
host-physical maps at 2MB-region granularity, host physical memory
(with its own fragmentation state), and the hypercall interface. The
effective page size seen by the (simulated) hardware for a guest region
is ``min(guest leaf, host leaf)`` — the nested-paging composition rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.os.physmem import OutOfMemoryError, PhysicalMemory
from repro.vm.address import PageSize


@dataclass
class HypervisorStats:
    """Hypercall and promotion accounting."""

    hypercalls: int = 0
    host_promotions: int = 0
    host_promotion_failures: int = 0


@dataclass
class GuestPromotionOutcome:
    """What one guest-initiated promotion achieved end to end."""

    guest_promoted: bool
    host_promoted: bool

    @property
    def effective_page_size(self) -> PageSize:
        """Page size the hardware can actually install."""
        if self.guest_promoted and self.host_promoted:
            return PageSize.HUGE
        return PageSize.BASE


@dataclass
class _VMState:
    """Host-side book-keeping for one virtual machine."""

    #: guest-physical 2MB regions backed by a host huge frame
    host_huge: dict[int, int] = field(default_factory=dict)
    #: guest-physical regions backed by scattered host base pages
    host_base: set[int] = field(default_factory=set)


class Hypervisor:
    """Host memory manager cooperating with guest promotions."""

    def __init__(self, host_memory: PhysicalMemory) -> None:
        self.host_memory = host_memory
        self.stats = HypervisorStats()
        self._vms: dict[int, _VMState] = {}

    def register_vm(self, vm_id: int) -> None:
        """Create host-side book-keeping for a new VM."""
        if vm_id in self._vms:
            raise ValueError(f"vm {vm_id} already registered")
        self._vms[vm_id] = _VMState()

    def back_region_base(self, vm_id: int, gpa_region: int) -> None:
        """Default backing: the guest region maps to host base pages."""
        state = self._vms[vm_id]
        if gpa_region in state.host_huge or gpa_region in state.host_base:
            return
        self.host_memory.allocate_base()
        state.host_base.add(gpa_region)

    def hypercall_promote(self, vm_id: int, gpa_region: int) -> bool:
        """Guest asks the host to back ``gpa_region`` with a huge frame.

        Returns True when the host side now uses a huge leaf. The host
        allocation competes with every other VM for host contiguity —
        the reason guest-only promotion is not enough.
        """
        self.stats.hypercalls += 1
        state = self._vms[vm_id]
        if gpa_region in state.host_huge:
            return True
        try:
            frame, _ = self.host_memory.allocate_huge(allow_compaction=True)
        except OutOfMemoryError:
            self.stats.host_promotion_failures += 1
            return False
        if gpa_region in state.host_base:
            state.host_base.discard(gpa_region)
            self.host_memory.release_base_pages(1)
        state.host_huge[gpa_region] = frame
        self.stats.host_promotions += 1
        return True

    def host_page_size(self, vm_id: int, gpa_region: int) -> PageSize:
        """Leaf size the host uses for a guest-physical region."""
        if gpa_region in self._vms[vm_id].host_huge:
            return PageSize.HUGE
        return PageSize.BASE

    def effective_page_size(
        self, vm_id: int, gpa_region: int, guest_size: PageSize
    ) -> PageSize:
        """Nested composition: min of the guest and host leaf sizes."""
        host_size = self.host_page_size(vm_id, gpa_region)
        return min(guest_size, host_size)

    def co_promote(
        self,
        vm_id: int,
        gpa_region: int,
        guest_promote,
    ) -> GuestPromotionOutcome:
        """Full §5.4.3 flow: guest promotes, then hypercalls the host.

        ``guest_promote()`` performs the guest-side page-table collapse
        and returns True on success; host promotion follows only if the
        guest side succeeded (the guest initiates).
        """
        guest_ok = bool(guest_promote())
        host_ok = False
        if guest_ok:
            host_ok = self.hypercall_promote(vm_id, gpa_region)
        return GuestPromotionOutcome(
            guest_promoted=guest_ok, host_promoted=host_ok
        )

    def vm_huge_regions(self, vm_id: int) -> list[int]:
        """Guest-physical regions the host backs with huge frames."""
        return sorted(self._vms[vm_id].host_huge)
