"""Virtualization extension (§5.4.3): guest/hypervisor co-promotion."""

from repro.virt.hypervisor import (
    GuestPromotionOutcome,
    Hypervisor,
    HypervisorStats,
)
from repro.virt.tagged_pcc import TaggedEntry, TaggedPCC, World

__all__ = [
    "World",
    "TaggedPCC",
    "TaggedEntry",
    "Hypervisor",
    "HypervisorStats",
    "GuestPromotionOutcome",
]
