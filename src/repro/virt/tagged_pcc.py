"""World-tagged PCC for virtualized environments (§5.4.3).

In a virtualized system a TLB miss triggers a two-dimensional walk:
guest-virtual to guest-physical (gVA→gPA, the guest's page tables) and
guest-physical to host-physical (gPA→hPA, the hypervisor's). A huge
mapping only pays off when *both* dimensions use huge leaves — if only
the guest promotes, the hardware still cannot install a 2MB TLB entry.

The paper suggests "using an additional bit to tag PCC entries as
corresponding to guest vs. host pages". :class:`TaggedPCC` implements
that: one physical structure whose entries carry a :class:`World` tag,
so the hypervisor can read host-page candidates while each guest reads
its own guest-page candidates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config import PCCConfig
from repro.core.pcc import PCCEntry, PromotionCandidateCache


class World(enum.Enum):
    """Which translation dimension a candidate belongs to."""

    GUEST = "guest"
    HOST = "host"


@dataclass(frozen=True)
class TaggedEntry:
    """One candidate with its world and owning VM."""

    world: World
    vm_id: int
    tag: int
    frequency: int


class TaggedPCC:
    """A PCC whose entries are tagged guest/host per VM.

    Internally the structure is one :class:`PromotionCandidateCache`
    whose tags are ``(world, vm, prefix)`` composites packed into an
    integer — exactly what one extra tag bit plus a VMID field buys in
    hardware. Capacity is shared across worlds, as it would be in the
    single physical structure the paper sketches.
    """

    #: bits reserved for the VM id inside the composite tag
    VM_BITS = 8

    def __init__(self, config: PCCConfig) -> None:
        self._pcc = PromotionCandidateCache(config)
        self.config = config

    def _pack(self, world: World, vm_id: int, tag: int) -> int:
        if not 0 <= vm_id < (1 << self.VM_BITS):
            raise ValueError(f"vm_id out of range: {vm_id}")
        world_bit = 1 if world is World.HOST else 0
        return (tag << (self.VM_BITS + 1)) | (vm_id << 1) | world_bit

    @staticmethod
    def _unpack(packed: int) -> tuple[World, int, int]:
        world = World.HOST if packed & 1 else World.GUEST
        vm_id = (packed >> 1) & ((1 << TaggedPCC.VM_BITS) - 1)
        return world, vm_id, packed >> (TaggedPCC.VM_BITS + 1)

    def access(self, world: World, vm_id: int, tag: int) -> None:
        """Record one admitted walk for a region in ``world``."""
        self._pcc.access(self._pack(world, vm_id, tag))

    def invalidate(self, world: World, vm_id: int, tag: int) -> bool:
        """Drop one tagged entry (shootdown in its world)."""
        return self._pcc.invalidate(self._pack(world, vm_id, tag))

    def ranked(self, world: World | None = None, vm_id: int | None = None
               ) -> list[TaggedEntry]:
        """Priority list, optionally filtered by world and/or VM."""
        out = []
        for entry in self._pcc.ranked():
            entry_world, entry_vm, tag = self._unpack(entry.tag)
            if world is not None and entry_world is not world:
                continue
            if vm_id is not None and entry_vm != vm_id:
                continue
            out.append(
                TaggedEntry(
                    world=entry_world,
                    vm_id=entry_vm,
                    tag=tag,
                    frequency=entry.frequency,
                )
            )
        return out

    def flush(self) -> list[TaggedEntry]:
        """Dump-and-clear, preserving priority order."""
        out = []
        for entry in self._pcc.flush():
            world, vm_id, tag = self._unpack(entry.tag)
            out.append(
                TaggedEntry(world=world, vm_id=vm_id, tag=tag,
                            frequency=entry.frequency)
            )
        return out

    def __len__(self) -> int:
        return len(self._pcc)

    @property
    def stats(self):
        """Operational counters of the backing structure."""
        return self._pcc.stats
