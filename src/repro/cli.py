"""Command-line interface: ``python -m repro <experiment> [options]``.

Runs one of the paper's experiments and prints the same rows/series the
corresponding figure or table reports. Example::

    python -m repro --scale quick fig7 --apps BFS,PR
    python -m repro --jobs 4 fig5 --budgets 0,4,100
    python -m repro table1
    python -m repro compare --app BFS --fragmentation 0.5

Observability: every experiment accepts ``--metrics-out`` (aggregate
``repro.metrics/v1`` JSON) and ``--trace-out`` (Perfetto-loadable
Chrome trace-event JSON). ``repro trace <experiment> ...`` is shorthand
that picks a default trace path, and ``repro inspect <file>`` reports
slowest spans, hottest regions, and latency percentiles from either
artifact.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.experiments import ablations, fig1, fig2, fig5, fig6, fig7, fig8, fig9, tables
from repro.experiments.common import FULL, QUICK, ExperimentScale


def _scale_of(name: str) -> ExperimentScale:
    scales = {"quick": QUICK, "full": FULL}
    if name not in scales:
        raise SystemExit(f"unknown scale {name!r}; choose from {sorted(scales)}")
    return scales[name]


def _split(value: str | None) -> list[str] | None:
    if not value:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def _int_tuple(value: str | None, default: tuple[int, ...]) -> tuple[int, ...]:
    if not value:
        return default
    return tuple(int(item) for item in value.split(","))


def _add_output_options(
    parser: argparse.ArgumentParser, subcommand: bool = False
) -> None:
    """The uniform artifact options every experiment accepts.

    Added to the root parser *and* to each experiment subparser so both
    ``repro --metrics-out m.json fig7`` and ``repro fig7 --metrics-out
    m.json`` work. A subparser parses into a fresh namespace and copies
    every attribute back over the root's, so the subcommand copies use
    ``SUPPRESS`` defaults — absent there, a value parsed before the
    subcommand survives; present, the later value wins.
    """
    default = argparse.SUPPRESS if subcommand else None
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=default,
        help="write a repro.metrics/v1 JSON aggregate of every "
        "simulation run performed by the command",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=default,
        help="enable span tracing and write a Perfetto-loadable Chrome "
        "trace-event JSON file (fan-out worker spans included)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the PCC paper's tables and figures.",
    )
    parser.add_argument(
        "--scale",
        default="quick",
        help="experiment scale: quick (default) or full",
    )
    _add_output_options(parser)
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="run independent configurations across N worker processes "
        "(0 = all cores; default: $REPRO_JOBS or serial). Workers share "
        "traces through the on-disk cache ($REPRO_TRACE_CACHE or "
        "~/.cache/repro-traces).",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep: load finished configurations "
        "from the run journal ($REPRO_JOURNAL or ~/.cache/repro-journal) "
        "and only recompute the rest",
    )
    sub = parser.add_subparsers(dest="experiment", required=True)
    experiment_parsers: list[argparse.ArgumentParser] = []

    def experiment(name: str, help: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help)
        experiment_parsers.append(p)
        return p

    p_fig1 = experiment("fig1", help="motivation: page sizes vs Linux THP")
    p_fig1.add_argument("--apps", help="comma-separated app subset")

    experiment("fig2", help="reuse-distance characterization")

    p_fig5 = experiment("fig5", help="utility curves PCC vs HawkEye")
    p_fig5.add_argument("--apps", help="comma-separated app subset")
    p_fig5.add_argument("--budgets", help="comma-separated budget percents")

    experiment("fig6", help="PCC size sensitivity")

    p_fig7 = experiment("fig7", help="90%-fragmented comparison")
    p_fig7.add_argument("--apps", help="comma-separated graph-app subset")
    p_fig7.add_argument(
        "--fragmentation", type=float, default=0.9, help="fraction fragmented"
    )
    p_fig7.add_argument(
        "--tlb-replacement",
        default="lru",
        choices=("lru", "plru"),
        help="TLB victim policy ablation axis: true LRU (default, the "
        "model's historical behaviour) or tree-PLRU (what real "
        "translation hardware implements)",
    )

    experiment("fig8", help="multithread policies")

    p_fig9 = experiment("fig9", help="multiprocess case study")
    p_fig9.add_argument("--pair", default="PR,mcf", help="two apps, comma-separated")

    experiment("table1", help="workload inventory + system parameters")
    experiment("ablations", help="replacement-policy and PWC ablations")

    p_sens = experiment(
        "sensitivity",
        help="sweeps of design constants the paper fixes: counter width, "
        "promotion interval, admission filter",
    )
    p_sens.add_argument("--app", default="BFS")
    p_sens.add_argument(
        "--study",
        default="all",
        choices=("counter-bits", "interval", "filter", "all"),
        help="which sensitivity study to run (default all)",
    )

    p_cmp = experiment("compare", help="one workload under all policies")
    p_cmp.add_argument("--app", default="BFS")
    p_cmp.add_argument("--fragmentation", type=float, default=0.0)

    p_stats = experiment("stats", help="trace statistics of one workload")
    p_stats.add_argument("--app", default="BFS")
    p_stats.add_argument("--dataset", default="kronecker")

    p_record = experiment(
        "record",
        help="step 1 of the paper's methodology: offline PCC simulation "
        "writing a promotion-candidate schedule",
    )
    p_record.add_argument("--app", default="BFS")
    p_record.add_argument("--out", required=True, help="schedule file path")

    p_replay = experiment(
        "replay",
        help="step 2: re-run the workload applying a recorded schedule",
    )
    p_replay.add_argument("--app", default="BFS")
    p_replay.add_argument("--schedule", required=True)
    p_replay.add_argument("--fragmentation", type=float, default=0.0)

    p_score = experiment(
        "scorecard",
        help="collate archived benchmark renderings into one report",
    )
    p_score.add_argument("--results", help="results directory override")

    p_val = experiment(
        "validate",
        help="differential oracle: fuzz engine tiers and OS policies "
        "against each other, or replay the regression corpus",
    )
    p_val.add_argument(
        "--fuzz",
        type=int,
        default=25,
        metavar="N",
        help="number of random cases to generate and check (default 25)",
    )
    p_val.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="first case seed; CI passes a per-run value so every build "
        "explores fresh cases (default 0, deterministic locally)",
    )
    p_val.add_argument(
        "--min-threads",
        type=int,
        default=1,
        metavar="T",
        help="raise every generated case's thread-count floor (2+ pins "
        "the multi-thread columnar epoch path; default 1)",
    )
    p_val.add_argument(
        "--replay",
        metavar="DIR",
        help="replay every corpus reproducer under DIR instead of "
        "fuzzing; all must pass on a healthy engine",
    )
    p_val.add_argument(
        "--corpus-dir",
        metavar="DIR",
        default=None,
        help="where failing cases are shrunk and persisted "
        "(default tests/corpus)",
    )
    p_val.add_argument(
        "--inject-defect",
        metavar="NAME",
        help="self-test: install a named deliberate defect first and "
        "require the harness to catch it (see repro.validation.defects)",
    )
    p_val.add_argument(
        "--shrink-budget",
        type=int,
        default=400,
        metavar="N",
        help="predicate-call budget for minimizing a failing case",
    )
    p_val.add_argument(
        "--tlb-replacement",
        default="lru",
        choices=("lru", "plru"),
        help="TLB victim policy every generated case runs under "
        "(default lru)",
    )

    p_cc = experiment(
        "crosscheck",
        help="reference oracle: drive the engine's TLB/PTW stack and an "
        "independent Ariane-semantics model with identical address "
        "streams and compare hit levels, victims, and walk traffic",
    )
    p_cc.add_argument(
        "--cases",
        type=int,
        default=25,
        metavar="N",
        help="number of fuzz cases per replacement policy (default 25)",
    )
    p_cc.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="first case seed; CI passes a per-run value so every build "
        "explores fresh cases (default 0, deterministic locally)",
    )
    p_cc.add_argument(
        "--tlb-replacement",
        default="both",
        choices=("both", "lru", "plru"),
        help="which victim policies to cross-check (default both)",
    )
    p_cc.add_argument(
        "--inject-defect",
        metavar="NAME",
        help="self-test: install a named deliberate defect first and "
        "require the cross-check to catch it",
    )
    p_cc.add_argument(
        "--corpus-dir",
        metavar="DIR",
        default=None,
        help="where failing cases are shrunk and persisted "
        "(default tests/corpus)",
    )
    p_cc.add_argument(
        "--shrink-budget",
        type=int,
        default=400,
        metavar="N",
        help="predicate-call budget for minimizing a failing case",
    )

    p_serve = experiment(
        "serve",
        help="run the crash-safe simulation service (HTTP/JSON on the "
        "resilient fan-out; jobs survive kill -9 via the run journal)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8023,
                         help="bind port; 0 picks a free port (default 8023)")
    p_serve.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="service state root (job + results journals; default "
        "$REPRO_SERVE_STATE or ~/.cache/repro-serve)",
    )
    p_serve.add_argument("--queue-limit", type=int, default=256,
                         help="total queued-job ceiling (default 256)")
    p_serve.add_argument("--tenant-quota", type=int, default=64,
                         help="queued-job ceiling per tenant (default 64)")
    p_serve.add_argument("--executors", type=int, default=2,
                         help="concurrent job executor slots (default 2)")
    p_serve.add_argument("--max-width", type=int, default=2,
                         help="cap on a job's requested fan-out width "
                         "(default 2)")
    p_serve.add_argument("--breaker-trip-after", type=int, default=3,
                         help="consecutive damaged fan-outs before the "
                         "circuit breaker forces serial execution "
                         "(default 3)")
    p_serve.add_argument("--breaker-cooldown", type=float, default=30.0,
                         help="seconds the tripped breaker stays open "
                         "before probing the pool again (default 30)")

    for experiment_parser in experiment_parsers:
        _add_output_options(experiment_parser, subcommand=True)

    p_trace = sub.add_parser(
        "trace",
        help="run any repro command with span tracing on, e.g. "
        "'repro trace fig7' (default output trace-<run_id>.json)",
    )
    p_trace.add_argument(
        "command",
        nargs=argparse.REMAINDER,
        help="the repro command line to trace",
    )

    p_inspect = sub.add_parser(
        "inspect",
        help="summarize a metrics or trace artifact: slowest spans, "
        "hottest regions, latency percentiles",
    )
    p_inspect.add_argument("file", help="metrics JSON or trace JSON path")
    p_inspect.add_argument(
        "--check",
        action="store_true",
        help="validate the document against its schema; exit 1 on any "
        "violation",
    )
    p_inspect.add_argument(
        "--top", type=int, default=10, help="rows per ranking (default 10)"
    )

    p_top = sub.add_parser(
        "top",
        help="live ANSI dashboard over a running serve daemon: per-job "
        "progress bars, tier occupancy, queue depth, breaker state",
    )
    p_top.add_argument(
        "url", nargs="?", default="127.0.0.1:8023",
        help="server address, host:port or http://host:port "
        "(default 127.0.0.1:8023)",
    )
    p_top.add_argument("--interval", type=float, default=1.0, metavar="S",
                       help="repaint interval in seconds (default 1.0)")
    p_top.add_argument("--once", action="store_true",
                       help="render one plain-text frame and exit "
                       "(no ANSI; for scripts and tests)")

    p_progress = sub.add_parser(
        "progress",
        help="tail one job's live SSE progress stream until it reaches "
        "a terminal state",
    )
    p_progress.add_argument("job_id", help="job id to follow")
    p_progress.add_argument(
        "--server", default="127.0.0.1:8023", metavar="URL",
        help="server address (default 127.0.0.1:8023)",
    )
    p_progress.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="give up after this many seconds (default 600)",
    )
    return parser


def _run_compare(args, scale: ExperimentScale) -> str:
    import copy

    from repro.analysis import report
    from repro.engine.simulation import Simulator
    from repro.experiments.common import config_for
    from repro.os.kernel import HugePagePolicy

    workload = scale.workload(args.app)
    config = config_for(workload)
    rows = []
    baseline_cycles = None
    for label, policy in (
        ("4KB baseline", HugePagePolicy.NONE),
        ("Linux THP", HugePagePolicy.LINUX_THP),
        ("HawkEye", HugePagePolicy.HAWKEYE),
        ("PCC", HugePagePolicy.PCC),
        ("All-huge ideal", HugePagePolicy.IDEAL),
    ):
        frag = 0.0 if policy is HugePagePolicy.IDEAL else args.fragmentation
        result = Simulator(config, policy=policy, fragmentation=frag).run(
            [copy.deepcopy(workload)]
        )
        if baseline_cycles is None:
            baseline_cycles = result.total_cycles
        rows.append(
            [
                label,
                report.speedup(baseline_cycles / result.total_cycles),
                report.percent(result.walk_rate),
                result.promotions,
            ]
        )
    return report.format_table(
        ["Policy", "Speedup", "TLB miss %", "Promotions"],
        rows,
        title=(
            f"{args.app} at {args.fragmentation:.0%} fragmentation "
            f"({scale.name} scale)"
        ),
    )


def _run_serve(args) -> int:
    from repro.serve.server import ServeConfig
    from repro.serve.server import run as run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        queue_limit=args.queue_limit,
        tenant_quota=args.tenant_quota,
        executors=args.executors,
        max_width=args.max_width,
        breaker_trip_after=args.breaker_trip_after,
        breaker_cooldown_s=args.breaker_cooldown,
    )
    return run_server(config)


def _run_validate(args) -> int:
    import contextlib

    from repro.validation import defects
    from repro.validation.generators import generate_case
    from repro.validation.oracle import ValidationFailure, check_case
    from repro.validation.reference import check_case_or_crosscheck
    from repro.validation.shrink import (
        DEFAULT_CORPUS_DIR,
        iter_corpus,
        load_reproducer,
        same_failure,
        shrink_case,
        write_reproducer,
    )

    corpus_dir = args.corpus_dir or DEFAULT_CORPUS_DIR
    injection = (
        defects.inject(args.inject_defect)
        if args.inject_defect
        else contextlib.nullcontext()
    )

    with injection:
        if args.replay:
            paths = list(iter_corpus(args.replay))
            if not paths:
                print(f"validate: no corpus files under {args.replay}")
                return 0
            failures = 0
            corrupt = 0
            for path in paths:
                try:
                    case, past = load_reproducer(path)
                except (OSError, ValueError) as error:
                    # a corrupt reproducer must not kill the replay of
                    # every other case; report it and keep going
                    corrupt += 1
                    print(f"BAD  {path.name}: unreadable reproducer "
                          f"({error})")
                    continue
                try:
                    # reference.* reproducers re-run through the
                    # cross-check harness that found them; everything
                    # else goes back through the tier oracle
                    check_case_or_crosscheck(case, past.get("domain"))
                except ValidationFailure as failure:
                    failures += 1
                    print(f"FAIL {path.name}: {failure}")
                    print(f"     first seen as: [{past.get('domain')}] "
                          f"{past.get('detail')}")
                else:
                    print(f"ok   {path.name} ({case.total_accesses} accesses, "
                          f"{case.policy})")
            print(f"validate: replayed {len(paths)} corpus cases, "
                  f"{failures} failing, {corrupt} unreadable")
            return 1 if failures or corrupt else 0

        notes = 0
        for seed in range(args.seed, args.seed + args.fuzz):
            case = generate_case(
                seed,
                min_threads=args.min_threads,
                tlb_replacement=(
                    args.tlb_replacement
                    if args.tlb_replacement != "lru"
                    else None
                ),
            )
            try:
                report = check_case(case)
            except ValidationFailure as failure:
                print(f"FAIL {case.describe()}")
                print(f"     {failure}")
                predicate = same_failure(check_case, failure.domain)
                small = shrink_case(
                    case, predicate, budget=args.shrink_budget
                )
                path = write_reproducer(small, failure, corpus_dir)
                print(
                    f"     shrunk {case.total_accesses} -> "
                    f"{small.total_accesses} accesses, reproducer: {path}"
                )
                if args.inject_defect:
                    # Self-test: catching the planted defect is success.
                    print(
                        f"validate: defect {args.inject_defect!r} caught "
                        f"and shrunk"
                    )
                    return 0
                return 1
            notes += len(report.notes)
        print(
            f"validate: {args.fuzz} cases ok (seeds {args.seed}.."
            f"{args.seed + args.fuzz - 1}), {notes} advisory notes"
        )
        if args.inject_defect:
            # Self-test mode *expects* the defect to be caught; silence
            # here means the harness has a blind spot.
            print(
                f"validate: defect {args.inject_defect!r} was NOT caught"
            )
            return 1
        return 0


#: Geometry overrides the cross-check rotates through, chosen to leave
#: the degenerate-equivalence regime: the tiny default config is all
#: 2-way (where tree-PLRU and true LRU coincide), so the sweep mixes in
#: wider and non-power-of-two set shapes where the policies genuinely
#: diverge. ``None`` keeps the case's default geometry.
CROSSCHECK_GEOMETRIES: tuple[dict | None, ...] = (
    None,
    {"l1_base": [6, 3], "l2": [12, 3]},
    {"l1_base": [8, 4], "l2": [16, 8]},
    {"l1_base": [8, 8], "l1_huge": [4, 4]},
)


def _run_crosscheck(args) -> int:
    import contextlib

    from repro.validation import defects
    from repro.validation.generators import generate_case
    from repro.validation.oracle import ValidationFailure
    from repro.validation.reference import check_crosscheck
    from repro.validation.shrink import (
        DEFAULT_CORPUS_DIR,
        same_failure,
        shrink_case,
        write_reproducer,
    )

    corpus_dir = args.corpus_dir or DEFAULT_CORPUS_DIR
    replacements = (
        ("lru", "plru")
        if args.tlb_replacement == "both"
        else (args.tlb_replacement,)
    )
    injection = (
        defects.inject(args.inject_defect)
        if args.inject_defect
        else contextlib.nullcontext()
    )

    with injection:
        checked = 0
        for seed in range(args.seed, args.seed + args.cases):
            geometry = CROSSCHECK_GEOMETRIES[
                seed % len(CROSSCHECK_GEOMETRIES)
            ]
            for replacement in replacements:
                case = generate_case(
                    seed,
                    tlb_replacement=(
                        replacement if replacement != "lru" else None
                    ),
                    tlb_geometry=geometry,
                )
                try:
                    check_crosscheck(case)
                    checked += 1
                except ValidationFailure as failure:
                    print(f"FAIL {case.describe()}")
                    print(f"     {failure}")
                    predicate = same_failure(
                        check_crosscheck, failure.domain
                    )
                    small = shrink_case(
                        case, predicate, budget=args.shrink_budget
                    )
                    path = write_reproducer(small, failure, corpus_dir)
                    print(
                        f"     shrunk {case.total_accesses} -> "
                        f"{small.total_accesses} accesses, "
                        f"reproducer: {path}"
                    )
                    if args.inject_defect:
                        print(
                            f"crosscheck: defect "
                            f"{args.inject_defect!r} caught and shrunk"
                        )
                        return 0
                    return 1
        print(
            f"crosscheck: {checked} machine-vs-reference runs agree "
            f"(seeds {args.seed}..{args.seed + args.cases - 1}, "
            f"policies {'/'.join(replacements)})"
        )
        if args.inject_defect:
            print(
                f"crosscheck: defect {args.inject_defect!r} was NOT "
                f"caught"
            )
            return 1
        return 0


def _run_inspect(args) -> int:
    from repro.obs import inspect as inspect_module

    try:
        doc = inspect_module.load_document(args.file)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"inspect: {exc}") from exc
    if args.check:
        errors = inspect_module.validate_document(doc)
        if errors:
            for error in errors:
                print(f"inspect: {error}", file=sys.stderr)
            print(
                f"inspect: {args.file}: {len(errors)} schema violation(s)",
                file=sys.stderr,
            )
            return 1
        print(f"inspect: {args.file}: schema OK")
    print(inspect_module.render(inspect_module.inspect_document(doc, top=args.top)))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    import os

    from repro.obs.log import configure as configure_logging
    from repro.obs.runid import set_run_id
    from repro.resilience.journal import JOURNAL_ENV, default_journal_dir

    args = build_parser().parse_args(argv)
    # client-side commands: no run id, journal, or logging setup
    if args.experiment == "inspect":
        return _run_inspect(args)
    if args.experiment == "top":
        from repro.serve.top import run_top

        try:
            return run_top(args.url, interval_s=args.interval, once=args.once)
        except KeyboardInterrupt:
            return 0
    if args.experiment == "progress":
        from repro.serve.top import run_progress

        try:
            return run_progress(
                args.job_id, args.server, timeout_s=args.timeout
            )
        except KeyboardInterrupt:
            return 0
    run_id = set_run_id()
    configure_logging(force=True)
    if args.experiment == "trace":
        inner = [token for token in (args.command or []) if token != "--"]
        if not inner:
            raise SystemExit("trace: give a command to run, e.g. repro trace fig7")
        args = build_parser().parse_args(inner)
        if args.experiment in ("trace", "inspect", "top", "progress"):
            raise SystemExit(f"trace: cannot wrap {args.experiment!r}")
        if not args.trace_out:
            args.trace_out = f"trace-{run_id}.json"
    scale = _scale_of(args.scale)
    # journal by default so an interrupted sweep can be picked up with
    # --resume; REPRO_JOURNAL=off opts out, an explicit path overrides
    os.environ.setdefault(JOURNAL_ENV, str(default_journal_dir()))
    if args.metrics_out:
        from pathlib import Path

        parent = Path(args.metrics_out).resolve().parent
        if not parent.is_dir():
            # fail before the runs, not after minutes of simulation
            raise SystemExit(
                f"--metrics-out: directory {parent} does not exist"
            )
    if args.trace_out:
        from pathlib import Path

        parent = Path(args.trace_out).resolve().parent
        if not parent.is_dir():
            raise SystemExit(
                f"--trace-out: directory {parent} does not exist"
            )
    return _run_with_artifacts(args, scale, run_id)


def _run_with_artifacts(args, scale: ExperimentScale, run_id: str) -> int:
    """Dispatch the experiment inside the requested artifact scopes."""
    import shutil
    import tempfile

    from repro.metrics import collecting
    from repro.obs import tracer as tracer_module

    tracer = None
    spool = None
    if args.trace_out:
        spool = tempfile.mkdtemp(prefix="repro-trace-spool-")
        tracer = tracer_module.enable(run_id, spool_dir=spool)
    try:
        if args.metrics_out:
            with collecting() as collector:
                status = _dispatch(args, scale)
            collector.write_json(args.metrics_out)
            print(f"metrics: {len(collector.runs)} runs -> {args.metrics_out}")
        else:
            status = _dispatch(args, scale)
    finally:
        if tracer is not None:
            doc = tracer.finalize(args.trace_out)
            tracer_module.disable()
            shutil.rmtree(spool, ignore_errors=True)
            print(
                f"trace: {len(doc['traceEvents'])} events (run {run_id}) "
                f"-> {args.trace_out}"
            )
    return status


def _dispatch(args, scale: ExperimentScale) -> int:
    jobs = getattr(args, "jobs", None)
    resume = getattr(args, "resume", False)
    if args.experiment == "fig1":
        print(
            fig1.render(
                fig1.run(scale, apps=_split(args.apps), jobs=jobs, resume=resume)
            )
        )
    elif args.experiment == "fig2":
        print(fig2.render(fig2.run(scale)))
    elif args.experiment == "fig5":
        from repro.analysis.utility import BUDGET_PERCENTS

        budgets = _int_tuple(args.budgets, BUDGET_PERCENTS)
        print(
            fig5.render(
                fig5.run(scale, apps=_split(args.apps), budgets=budgets,
                         jobs=jobs, resume=resume)
            )
        )
    elif args.experiment == "fig6":
        print(fig6.render(fig6.run(scale, jobs=jobs, resume=resume)))
    elif args.experiment == "fig7":
        apps = tuple(_split(args.apps) or ("BFS", "SSSP", "PR"))
        rows = fig7.run(
            scale, apps=apps, fragmentation=args.fragmentation, jobs=jobs,
            resume=resume, tlb_replacement=args.tlb_replacement,
        )
        print(fig7.render(rows, fragmentation=args.fragmentation,
                          tlb_replacement=args.tlb_replacement))
    elif args.experiment == "fig8":
        print(fig8.render(fig8.run(scale, jobs=jobs, resume=resume)))
    elif args.experiment == "fig9":
        pair = _split(args.pair)
        if not pair or len(pair) != 2:
            raise SystemExit("--pair needs exactly two apps, e.g. PR,mcf")
        print(
            fig9.render(
                fig9.run_case(pair[0], pair[1], scale, jobs=jobs, resume=resume)
            )
        )
    elif args.experiment == "table1":
        print(tables.render_table1(tables.run_table1(scale)))
        print()
        print(tables.render_table2())
    elif args.experiment == "ablations":
        print(
            ablations.render_replacement(
                ablations.run_replacement(scale, jobs=jobs, resume=resume)
            )
        )
        print()
        print(ablations.render_pwc(ablations.run_pwc(scale)))
    elif args.experiment == "sensitivity":
        from repro.experiments import sensitivity

        blocks = []
        if args.study in ("counter-bits", "all"):
            blocks.append(
                sensitivity.render_sweep(
                    sensitivity.counter_bits_sweep(
                        scale, app=args.app, jobs=jobs, resume=resume
                    )
                )
            )
        if args.study in ("interval", "all"):
            blocks.append(
                sensitivity.render_sweep(
                    sensitivity.interval_sweep(
                        scale, app=args.app, jobs=jobs, resume=resume
                    )
                )
            )
        if args.study in ("filter", "all"):
            speedups = sensitivity.admission_filter_study(scale, app=args.app)
            blocks.append(
                f"Admission filter ({args.app}): "
                f"with filter {speedups['with_filter']:.3f}x, "
                f"without {speedups['without_filter']:.3f}x"
            )
        print("\n\n".join(blocks))
    elif args.experiment == "compare":
        print(_run_compare(args, scale))
    elif args.experiment == "stats":
        import numpy as np

        from repro.analysis import tracestats
        from repro.trace.events import Trace

        workload = scale.workload(args.app, dataset=args.dataset)
        compressed = workload.threads[0].trace
        # expand the run-length records back to a page-accurate stream
        addresses = np.repeat(
            compressed.vpns.astype(np.uint64) << np.uint64(12),
            compressed.counts,
        )
        raw = Trace(
            workload.name, addresses, footprint_bytes=workload.footprint_bytes
        )
        print(tracestats.render(tracestats.analyze(raw, workload.layout)))
    elif args.experiment == "record":
        from repro.engine.offline import record_candidates
        from repro.engine.schedule_io import save_schedule
        from repro.experiments.common import config_for

        workload = scale.workload(args.app)
        schedule = record_candidates(workload, config_for(workload))
        path = save_schedule(schedule, args.out)
        print(
            f"recorded {len(schedule)} candidates over "
            f"{len(schedule.regions())} regions -> {path}"
        )
    elif args.experiment == "replay":
        from repro.analysis import report as report_module
        from repro.engine.offline import replay_with_schedule
        from repro.engine.simulation import Simulator
        from repro.engine.schedule_io import load_schedule
        from repro.experiments.common import config_for
        from repro.os.kernel import HugePagePolicy

        workload = scale.workload(args.app)
        config = config_for(workload)
        schedule = load_schedule(args.schedule)
        baseline = Simulator(
            config,
            policy=HugePagePolicy.NONE,
            fragmentation=args.fragmentation,
        ).run([scale.workload(args.app)])
        result = replay_with_schedule(
            workload, schedule, config, fragmentation=args.fragmentation
        )
        print(
            f"replayed {len(schedule)} scheduled candidates: "
            f"{result.promotions} promotions, speedup "
            f"{report_module.speedup(baseline.total_cycles / result.total_cycles)}, "
            f"TLB miss {report_module.percent(result.walk_rate)}"
        )
    elif args.experiment == "scorecard":
        from repro.experiments import summary

        scorecard = summary.build(args.results)
        print(scorecard.text)
    elif args.experiment == "serve":
        return _run_serve(args)
    elif args.experiment == "validate":
        return _run_validate(args)
    elif args.experiment == "crosscheck":
        return _run_crosscheck(args)
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(f"unknown experiment {args.experiment!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
