# Convenience targets for the PCC reproduction.

PYTHON ?= python

.PHONY: install test chaos fuzz fuzz-selftest bench bench-tests bench-full examples scorecard clean trace-smoke serve-smoke serve-telemetry serve-bench

# artifact `make bench` writes; bump per PR so perf history accumulates
BENCH_OUT ?= BENCH_6.json

# first seed for `make fuzz`; CI passes its run id for fresh coverage
FUZZ_SEED ?= 0
FUZZ_CASES ?= 50

install:
	$(PYTHON) -m pip install -e ".[test]" --no-build-isolation

test:
	$(PYTHON) -m pytest tests/ -q

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

# differential oracle: random cases through all engine tiers/policies,
# then replay the regression corpus; failures shrink into tests/corpus/
fuzz:
	$(PYTHON) -m repro validate --fuzz $(FUZZ_CASES) --seed $(FUZZ_SEED)
	$(PYTHON) -m repro validate --replay tests/corpus

# prove the harness catches planted bugs (each must fail + shrink).
# tlb-plru-drift goes through `crosscheck`, not `validate`: every
# engine tier shares the drifted policy, so only the independent
# reference model can see it.
fuzz-selftest:
	@for defect in stale-hints pcc-no-decay region-count-drift; do \
		echo "=== defect: $$defect ==="; \
		$(PYTHON) -m repro validate --fuzz 40 \
			--inject-defect $$defect \
			--corpus-dir $${TMPDIR:-/tmp}/repro-fuzz-selftest || exit 1; \
	done
	@echo "=== defect: tlb-plru-drift (reference cross-check) ==="
	@$(PYTHON) -m repro crosscheck --cases 8 --tlb-replacement plru \
		--inject-defect tlb-plru-drift \
		--corpus-dir $${TMPDIR:-/tmp}/repro-fuzz-selftest

# the fault matrix: crashes, hangs, cache corruption, kill+resume
chaos:
	$(PYTHON) -m pytest tests/resilience/ \
		tests/integration/test_resilience_pipeline.py \
		tests/trace/test_cache_resilience.py -q

# one-step perf trajectory: all four tiers timed interleaved, tier
# equivalence verified, steady-state + residue breakdown measured, and
# the $(BENCH_OUT) artifact written with the previous PR's numbers
# embedded as the before/after record
bench:
	$(PYTHON) scripts/perf_smoke.py --engines --verify-equivalence \
		--steady-state --bench-out $(BENCH_OUT)

bench-tests:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-full:
	REPRO_BENCH_SCALE=full $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

scorecard:
	$(PYTHON) -m repro scorecard

# chaos-under-load proof for the simulation service: drive a small job
# stream, kill -9 the server at ~30% completion, restart it with
# tracing on, and require zero lost/duplicated jobs plus a trace that
# passes `repro inspect --check` (what CI's serve-smoke job runs)
serve-smoke:
	$(PYTHON) scripts/serve_load.py --chaos --requests 60 \
		--concurrency 16 --distinct 24 --executors 2

# telemetry proof: an SSE stream opened during a live job must carry
# >=1 mid-run progress event before its terminal state, and /metrics
# must parse as Prometheus text exposition with native buckets
serve-telemetry:
	$(PYTHON) scripts/serve_load.py --requests 40 --concurrency 8 \
		--telemetry

# service throughput/latency trajectory: 1000 small jobs at fixed
# concurrency, merged into $(BENCH_OUT) as the `serve` and
# `telemetry` sections
serve-bench:
	$(PYTHON) scripts/serve_load.py --requests 1000 --concurrency 128 \
		--telemetry --bench-out $(BENCH_OUT)

# traced end-to-end slice: artifacts must pass their own validators,
# and disabled observability must stay free (what CI runs)
trace-smoke:
	$(PYTHON) -m repro --scale quick --jobs 2 fig7 --apps BFS \
		--trace-out trace.json --metrics-out metrics.json
	$(PYTHON) -m repro inspect trace.json --check
	$(PYTHON) -m repro inspect metrics.json --check
	$(PYTHON) scripts/perf_smoke.py --max-ratio 99 --obs-overhead

clean:
	rm -rf .pytest_cache benchmarks/results/*.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
