# Convenience targets for the PCC reproduction.

PYTHON ?= python

.PHONY: install test chaos bench bench-full examples scorecard clean

install:
	$(PYTHON) -m pip install -e ".[test]" --no-build-isolation

test:
	$(PYTHON) -m pytest tests/ -q

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

# the fault matrix: crashes, hangs, cache corruption, kill+resume
chaos:
	$(PYTHON) -m pytest tests/resilience/ \
		tests/integration/test_resilience_pipeline.py \
		tests/trace/test_cache_resilience.py -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-full:
	REPRO_BENCH_SCALE=full $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

scorecard:
	$(PYTHON) -m repro scorecard

clean:
	rm -rf .pytest_cache benchmarks/results/*.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
