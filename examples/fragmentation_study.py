#!/usr/bin/env python3
"""Fragmentation study: who still gets huge pages when memory is full?

Sweeps memory fragmentation from 0% to 90% (§5.1.1's model: one
non-movable page pinned per 2MB frame, free space splintered) and
compares all four promotion policies on PageRank — the workload where
the paper reports the PCC's biggest advantage over HawkEye.

Run:  python examples/fragmentation_study.py
"""

import copy

from repro import HugePagePolicy, Simulator
from repro.analysis import report
from repro.experiments.common import config_for
from repro.workloads import build_workload

FRAGMENTATION_LEVELS = (0.0, 0.5, 0.7, 0.9)
POLICIES = {
    "Linux THP": HugePagePolicy.LINUX_THP,
    "HawkEye": HugePagePolicy.HAWKEYE,
    "PCC": HugePagePolicy.PCC,
}


def main() -> None:
    workload = build_workload("PR", dataset="kronecker", scale=12)
    config = config_for(workload)
    print(
        f"PageRank, footprint {report.bytes_human(workload.footprint_bytes)} "
        f"({workload.footprint_huge_regions()} regions); memory "
        f"{report.bytes_human(config.memory_bytes)}"
    )

    baseline = Simulator(config, policy=HugePagePolicy.NONE).run(
        [copy.deepcopy(workload)]
    )

    rows = []
    for fragmentation in FRAGMENTATION_LEVELS:
        row = [f"{fragmentation:.0%}"]
        for label, policy in POLICIES.items():
            simulator = Simulator(
                config, policy=policy, fragmentation=fragmentation
            )
            result = simulator.run([copy.deepcopy(workload)])
            speedup = baseline.total_cycles / result.total_cycles
            row.append(
                f"{report.speedup(speedup)} ({result.promotions}p)"
            )
        rows.append(row)

    print()
    print(
        report.format_table(
            ["Fragmentation"] + [f"{name} (promos)" for name in POLICIES],
            rows,
            title="Speedup over the 4KB baseline as fragmentation grows",
        )
    )
    print(
        "\nAs contiguity disappears, greedy THP and scan-limited HawkEye"
        "\nlose their huge pages to the wrong data, while the PCC spends"
        "\nthe few remaining frames on the hottest regions (paper Fig. 7)."
    )


if __name__ == "__main__":
    main()
