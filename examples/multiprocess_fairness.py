#!/usr/bin/env python3
"""Multiprocess fairness: two applications compete for huge pages.

Reproduces the paper's Fig. 9 case study in miniature: TLB-sensitive
PageRank runs beside TLB-insensitive mcf, each on its own core with
its own PCC, while the OS merges their candidate lists under either
the highest-PCC-frequency policy or round-robin. The frequency policy
biases huge pages toward PageRank (which can use them) without hurting
mcf (which cannot).

Run:  python examples/multiprocess_fairness.py
"""

from repro.analysis import report
from repro.experiments import fig9
from repro.experiments.common import QUICK


def main() -> None:
    print("Running PR + mcf side by side (budgets sweep, 2 policies) ...")
    case = fig9.run_case("PR", "mcf", scale=QUICK, budgets=(2, 8, 32, 100))
    print()
    print(fig9.render(case))
    print()

    freq = case.frequency
    rr = case.round_robin
    pr_name = case.apps[0]
    final_freq = freq.speedups[pr_name][-1]
    final_rr = rr.speedups[pr_name][-1]
    print(
        f"{pr_name} final speedup: {report.speedup(final_freq)} under "
        f"highest-frequency vs {report.speedup(final_rr)} under round-robin."
    )
    print(
        "The frequency policy funnels huge pages to the TLB-sensitive\n"
        "process; with an insensitive co-runner this is free performance\n"
        "(the co-runner's PCC holds few hot candidates to starve)."
    )


if __name__ == "__main__":
    main()
