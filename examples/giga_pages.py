#!/usr/bin/env python3
"""1GB page support: the §3.2.3 extension.

Builds a synthetic workload whose hot set sprays across several
1GB-aligned arenas — so wide that even 2MB TLB entries thrash — and
runs it with the 1GB companion PCC enabled. The OS compares 2MB- and
1GB-granular walk frequencies and collectively promotes whole 1GB
regions when the 512x rule of §3.2.3 favors them.

Run:  python examples/giga_pages.py
"""

import copy

from repro import HugePagePolicy, Simulator
from repro.analysis import report
from repro.config import PCCConfig, scaled_config
from repro.experiments.ablations import giant_span_workload


def main() -> None:
    workload = giant_span_workload(giga_regions=2, accesses=150_000)
    print(
        f"Giant-span workload: {report.bytes_human(workload.footprint_bytes)} "
        f"virtual footprint across 2 x 1GB arenas, "
        f"{workload.total_accesses:,} accesses"
    )

    config = scaled_config(memory_bytes=4 << 30).with_(
        pcc=PCCConfig(entries=32, giga_entries=8, giga_enabled=True)
    )

    results = {}
    for label, policy in (
        ("4KB baseline", HugePagePolicy.NONE),
        ("PCC (2MB + 1GB)", HugePagePolicy.PCC),
    ):
        simulator = Simulator(config, policy=policy)
        results[label] = (simulator, simulator.run([copy.deepcopy(workload)]))
        print(f"  simulated: {label}")

    base = results["4KB baseline"][1]
    simulator, pcc = results["PCC (2MB + 1GB)"]
    table = simulator.kernel.processes[1].page_table
    giga_promoted = len(table.giga_promoted_regions())
    engine_stats = simulator.kernel._engine.stats

    print()
    print(
        report.format_table(
            ["Configuration", "TLB miss %", "Speedup"],
            [
                ["4KB baseline", report.percent(base.walk_rate), "1.00x"],
                [
                    "PCC (2MB + 1GB)",
                    report.percent(pcc.walk_rate),
                    report.speedup(base.total_cycles / pcc.total_cycles),
                ],
            ],
            title="1GB PCC extension on a multi-GB-span hot set",
        )
    )
    print(
        f"\n2MB promotions: {engine_stats.promotions}; "
        f"1GB collective promotions: {engine_stats.giga_promotions} "
        f"({giga_promoted} giga regions live)"
    )


if __name__ == "__main__":
    main()
