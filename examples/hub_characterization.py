#!/usr/bin/env python3
"""HUB characterization: the paper's Fig. 2 reuse-distance analysis.

Profiles every page a BFS traversal touches, measuring mean reuse
distance at 4KB and 2MB granularity, and classifies pages into the
paper's three categories. Renders an ASCII version of Fig. 2's scatter
plot (log-binned densities) plus the class summary, and shows that the
hardware PCC's ranking agrees with the offline oracle's HUB regions.

Run:  python examples/hub_characterization.py
"""

import math

from repro.analysis import report
from repro.analysis.reuse import AccessClass, profile_trace
from repro.config import scaled_config
from repro.core.pcc import PromotionCandidateCache
from repro.engine.cpu import Core
from repro.vm.address import BASE_PAGE_SHIFT
from repro.workloads.bfs import bfs_trace
from repro.workloads.registry import build_graph

CLASS_GLYPH = {
    AccessClass.TLB_FRIENDLY: ".",
    AccessClass.HUB: "#",
    AccessClass.LOW_REUSE: "x",
}


def ascii_scatter(profile, bins=24, rows=12) -> str:
    """Log-log density plot of (4KB distance, 2MB distance) pairs."""
    grid = [[" "] * bins for _ in range(rows)]

    def bucket(value, cells):
        if value == float("inf"):
            return cells - 1
        return min(cells - 1, int(math.log2(value + 1) * cells / 22))

    for x, y, cls in profile.scatter_points():
        column = bucket(x, bins)
        row = rows - 1 - bucket(y, rows and rows)
        row = max(0, min(rows - 1, row))
        glyph = CLASS_GLYPH[cls]
        # HUBs win ties so the phenomenon stays visible
        if grid[row][column] != "#":
            grid[row][column] = glyph
    lines = ["2MB reuse distance (log) ^"]
    lines += ["| " + "".join(row) for row in grid]
    lines.append("+" + "-" * bins + "> 4KB reuse distance (log)")
    lines.append("legend: . tlb-friendly   # HUB   x low-reuse")
    return "\n".join(lines)


def pcc_agreement(trace, oracle_regions, config) -> float:
    """Fraction of the PCC's top-ranked regions that are oracle HUBs."""
    from repro.vm.pagetable import PageTable

    table = PageTable()
    core = Core(config)
    vpns = (trace.addresses >> BASE_PAGE_SHIFT).tolist()
    for vpn in vpns:
        vaddr = vpn << BASE_PAGE_SHIFT
        if not table.is_mapped(vaddr):
            table.map_base(vaddr, frame=0)
        core.access_page(vpn, table)
    top = [entry.tag for entry in core.pcc.ranked()[: len(oracle_regions)]]
    if not top:
        return 0.0
    return len(set(top) & set(oracle_regions)) / len(top)


def main() -> None:
    graph = build_graph("kronecker", scale=12)
    trace, glayout = bfs_trace(graph)
    print(f"BFS on {graph.name}: {len(trace):,} accesses, "
          f"{trace.unique_pages():,} distinct 4KB pages")

    profile = profile_trace(trace)
    counts = profile.class_counts()
    total = sum(counts.values())
    print()
    print(ascii_scatter(profile))
    print()
    print(
        report.format_table(
            ["Class", "Pages", "Share"],
            [
                [cls.value, n, report.percent(n / total)]
                for cls, n in counts.items()
            ],
            title="Page classification (threshold = 1024, the L2 TLB size)",
        )
    )

    oracle = profile.hub_regions()
    agreement = pcc_agreement(trace, oracle, scaled_config())
    print(
        f"\nOracle HUB regions: {len(oracle)}; "
        f"PCC top-{len(oracle)} agreement with the oracle: {agreement:.0%}"
    )


if __name__ == "__main__":
    main()
