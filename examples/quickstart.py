#!/usr/bin/env python3
"""Quickstart: the PCC co-design loop on one graph workload.

Builds a BFS workload over a synthetic power-law graph, then runs it
under four huge-page policies on the simulated machine:

* 4KB base pages only (the paper's baseline),
* Linux's greedy THP with 50% fragmented memory,
* the PCC hardware/OS co-design, and
* the all-huge ideal upper bound.

Expected output: the PCC recovers most of the ideal speedup while
Linux's greedy policy, starved of contiguous memory, stays near the
baseline — Fig. 1 and Fig. 5 of the paper in miniature.

Run:  python examples/quickstart.py
"""

import copy

from repro import HugePagePolicy, Simulator
from repro.analysis import report
from repro.experiments.common import config_for
from repro.workloads import build_workload


def main() -> None:
    print("Building BFS over a Kronecker power-law graph ...")
    workload = build_workload("BFS", dataset="kronecker", scale=13)
    print(
        f"  footprint: {report.bytes_human(workload.footprint_bytes)} "
        f"({workload.footprint_huge_regions()} 2MB regions), "
        f"{workload.total_accesses:,} memory accesses"
    )

    config = config_for(workload)
    runs = {
        "4KB baseline": (HugePagePolicy.NONE, 0.0),
        "Linux THP (50% frag)": (HugePagePolicy.LINUX_THP, 0.5),
        "PCC (50% frag)": (HugePagePolicy.PCC, 0.5),
        "All-huge ideal": (HugePagePolicy.IDEAL, 0.0),
    }

    results = {}
    for label, (policy, fragmentation) in runs.items():
        simulator = Simulator(config, policy=policy, fragmentation=fragmentation)
        results[label] = simulator.run([copy.deepcopy(workload)])
        print(f"  simulated: {label}")

    baseline_cycles = results["4KB baseline"].total_cycles
    print()
    print(
        report.format_table(
            ["Configuration", "Speedup", "TLB miss %", "Huge pages"],
            [
                [
                    label,
                    report.speedup(baseline_cycles / r.total_cycles),
                    report.percent(r.walk_rate),
                    sum(p.huge_pages for p in r.processes),
                ]
                for label, r in results.items()
            ],
            title="PCC quickstart — BFS on kron13",
        )
    )
    pcc = results["PCC (50% frag)"]
    promoted = sum(p.huge_pages for p in pcc.processes)
    footprint = workload.footprint_huge_regions()
    print(
        f"\nThe PCC promoted {promoted}/{footprint} regions "
        f"({promoted / footprint:.0%} of the footprint) to recover "
        f"{(baseline_cycles / pcc.total_cycles - 1) * 100:.0f}% speedup."
    )


if __name__ == "__main__":
    main()
