#!/usr/bin/env python3
"""The paper's two-step methodology (§4): record, then replay.

Step one runs the TLB+PCC simulation offline with no promotions,
recording which candidates the PCC would hand the OS at each interval
into a schedule file — the paper's "trace file" of candidate addresses
and promotion times. Step two replays the workload while a background
promotion thread applies the recorded schedule, optionally under
memory fragmentation the offline step never saw.

Run:  python examples/offline_two_step.py
"""

import copy
import tempfile
from pathlib import Path

from repro.analysis import report
from repro.engine.offline import record_candidates, replay_with_schedule
from repro.engine.schedule_io import load_schedule, save_schedule
from repro.engine.simulation import Simulator
from repro.experiments.common import config_for
from repro.os.kernel import HugePagePolicy
from repro.workloads import build_workload


def main() -> None:
    workload = build_workload("PR", dataset="kronecker", scale=12)
    config = config_for(workload)

    print("Step 1 — offline PCC simulation (no promotions applied) ...")
    schedule = record_candidates(copy.deepcopy(workload), config)
    path = Path(tempfile.gettempdir()) / "pcc_schedule.jsonl"
    save_schedule(schedule, path)
    print(
        f"  recorded {len(schedule)} candidate events over "
        f"{len(schedule.regions())} distinct regions -> {path}"
    )

    print("Step 2 — replay with the recorded schedule ...")
    loaded = load_schedule(path)
    baseline = Simulator(config, policy=HugePagePolicy.NONE).run(
        [copy.deepcopy(workload)]
    )
    rows = []
    for label, fragmentation in (("no pressure", 0.0), ("70% fragmented", 0.7)):
        result = replay_with_schedule(
            copy.deepcopy(workload), loaded, config,
            fragmentation=fragmentation,
        )
        rows.append(
            [
                label,
                report.speedup(baseline.total_cycles / result.total_cycles),
                report.percent(result.walk_rate),
                result.promotions,
            ]
        )
    print()
    print(
        report.format_table(
            ["Replay condition", "Speedup", "TLB miss %", "Promotions"],
            rows,
            title="Replaying one offline schedule under different memory states",
        )
    )
    print(
        "\nThe same candidate trace drives both replays — exactly how the"
        "\npaper fed offline PCC output to its real-system evaluation."
    )


if __name__ == "__main__":
    main()
