#!/usr/bin/env python3
"""Utility curves with terminal plots: Fig. 5 for one workload.

Sweeps the huge-page budget for PageRank under the PCC and HawkEye
policies, renders the speedup curves as an ASCII chart against the
all-huge ideal, and prints the hardware diagnostics for the final PCC
run so the mechanism is visible (which TLB level served what, what the
PCC tracked, what the kernel promoted).

Run:  python examples/utility_curves.py
"""

import copy

from repro.analysis import diagnostics
from repro.analysis.plot import utility_plot
from repro.analysis.utility import utility_curve
from repro.engine.simulation import Simulator
from repro.experiments.common import config_for
from repro.os.kernel import HugePagePolicy
from repro.workloads import build_workload

BUDGETS = (0, 2, 8, 32, 100)


def main() -> None:
    workload = build_workload("PR", dataset="kronecker", scale=12)
    config = config_for(workload)
    print(
        f"PageRank: {workload.total_accesses:,} accesses over "
        f"{workload.footprint_huge_regions()} 2MB regions\n"
    )

    print("Sweeping budgets for the PCC ...")
    pcc = utility_curve(
        workload, config, HugePagePolicy.PCC, budgets=BUDGETS
    )
    print("Sweeping budgets for HawkEye ...")
    hawkeye = utility_curve(
        workload, config, HugePagePolicy.HAWKEYE, budgets=BUDGETS
    )
    ideal_run = Simulator(config, policy=HugePagePolicy.IDEAL).run(
        [copy.deepcopy(workload)]
    )
    ideal = pcc.points[0].cycles / ideal_run.total_cycles

    print()
    print(utility_plot([pcc, hawkeye], references={"ideal": ideal}))
    print()

    half_peak = pcc.budget_for_fraction_of_peak(0.75)
    print(
        f"The PCC reaches 75% of its peak speedup with just "
        f"{half_peak}% of the footprint promoted."
    )

    print("\nHardware diagnostics of the final (100% budget) PCC run:")
    simulator = Simulator(config, policy=HugePagePolicy.PCC)
    result = simulator.run([copy.deepcopy(workload)])
    print(diagnostics.render_run(result))
    print(diagnostics.render_kernel(simulator.kernel))


if __name__ == "__main__":
    main()
